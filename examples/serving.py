"""Request-level serving in a dozen lines: Poisson traffic on the dataflow engine.

Generates an open-loop Poisson arrival trace, serves it with the
continuous-batching scheduler under the paper's dynamic schedule, and prints
the latency percentiles plus the queue-depth timeline.  Everything is
deterministic: rerunning this script reproduces every number bit-for-bit.

Run with:  PYTHONPATH=src python examples/serving.py
"""

from dataclasses import replace

from repro.api import serve
from repro.serve import poisson_trace
from repro.serve.library import SMOKE_LENGTHS
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config

# a small model configuration so the example runs in seconds
model = replace(scaled_config(QWEN3_30B_A3B, scale=32), name="serving-demo",
                num_experts=8, experts_per_token=2)

# ~160 requests per million cycles: near this configuration's saturation
trace = poisson_trace(rate=160.0, num_requests=12, seed=0, **SMOKE_LENGTHS)
print(f"trace {trace.name}: {len(trace)} requests, "
      f"observed rate {trace.mean_rate:.1f} req/Mcycle")

report = serve(model, trace, batch_cap=4, num_layers=2, kv_tile_rows=128, seed=0)

ttft, tpot, e2e = report.ttft(), report.tpot(), report.e2e()
print(f"served {report.num_requests} requests in {report.total_cycles:,.0f} cycles "
      f"({len(report.steps)} steps, {report.distinct_steps} simulated)")
print(f"TTFT  p50 {ttft['p50']:8.0f}  p95 {ttft['p95']:8.0f} cycles")
print(f"TPOT  p50 {tpot['p50']:8.0f}  p95 {tpot['p95']:8.0f} cycles/token")
print(f"e2e   p50 {e2e['p50']:8.0f}  p95 {e2e['p95']:8.0f} cycles")
print(f"goodput {report.goodput:.1f} req/Mcycle, "
      f"{report.token_throughput:.2f} tokens/kcycle")

print("\nqueue-depth timeline (first 10 steps):")
for step in report.steps[:10]:
    bar = "#" * step.running + "." * step.queued
    print(f"  t={step.start:9.0f}  running={step.running} queued={step.queued} "
          f"tokens={step.tokens:3d}  {bar}")
