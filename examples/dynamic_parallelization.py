#!/usr/bin/env python
"""Attention parallelization strategies under skewed KV-cache lengths (Section 5.4).

Builds the decode-attention layer with the three work-distribution strategies
(static coarse-grained, static interleaved, dynamic) and compares their
latency on a synthetic AzureLLMInference-like batch for each variance class.

Run with::

    python examples/dynamic_parallelization.py [batch]
"""

import sys

from repro.data.kv_traces import VarianceClass, make_batches_by_variance
from repro.sim import simulate
from repro.workloads.attention import AttentionConfig, build_attention_layer
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware


def main():
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    model = scaled_config(QWEN3_30B_A3B, scale=32)
    hardware = sda_hardware()
    batches = make_batches_by_variance(batch_size=batch, samples_per_class=1, seed=0)

    print(f"decode attention, batch={batch}, 4 parallel regions "
          f"(KV width {model.kv_dim})\n")
    header = f"{'variance':<10}{'KV std':>8}" + "".join(
        f"{s:>14}" for s in ("coarse", "interleave", "dynamic")) + f"{'dyn speedup':>13}"
    print(header)
    for variance in (VarianceClass.LOW, VarianceClass.MEDIUM, VarianceClass.HIGH):
        trace = batches[variance][0]
        cycles = {}
        for strategy in ("coarse", "interleave", "dynamic"):
            config = AttentionConfig(model=model, batch=batch, strategy=strategy,
                                     kv_tile_rows=64, coarse_chunk=16)
            built = build_attention_layer(config)
            cycles[strategy] = simulate(built.program, built.inputs(list(trace)),
                                        hardware=hardware).cycles
        speedup = cycles["interleave"] / cycles["dynamic"]
        print(f"{variance.value:<10}{trace.std:>8.0f}"
              + "".join(f"{cycles[s]:>14,.0f}" for s in ("coarse", "interleave", "dynamic"))
              + f"{speedup:>13.2f}")

    print("\nDynamic parallelization dispatches each request to whichever region "
          "frees up first (Figure 16), so its advantage grows with the KV-length "
          "variance of the batch.")


if __name__ == "__main__":
    main()
