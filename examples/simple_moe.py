#!/usr/bin/env python
"""The paper's simplified MoE walk-through (Section 3.3, Listing 1, Figure 7).

Ten activation rows are routed to two single-matmul experts, packed into tiles
(statically padded or dynamically sized), multiplied against weights streamed
from off-chip memory, and gathered back in the original order.  The example
prints the stream shapes of the main regions, verifies the result against
numpy, and contrasts the static- and dynamic-tiling schedules.

Run with::

    python examples/simple_moe.py
"""

import numpy as np

from repro.core.builder import tokens_to_matrix
from repro.sim import simulate
from repro.workloads.configs import sda_hardware
from repro.workloads.simple_moe import SimpleMoEConfig, build_simple_moe


def run_variant(tile_rows, activations, routing):
    config = SimpleMoEConfig(num_rows=10, hidden_dim=64, out_dim=256, num_experts=2,
                             tile_rows=tile_rows)
    built = build_simple_moe(config, seed=1)
    report = simulate(built.program, built.inputs(activations, routing),
                      hardware=sda_hardware())
    produced = tokens_to_matrix(report.output_tokens(built.output_name))
    error = float(np.abs(produced - built.reference(activations, routing)).max())
    return report, error


def main():
    rng = np.random.default_rng(7)
    activations = rng.standard_normal((10, 64)).astype(np.float32)
    routing = [0, 1, 0, 0, 1, 1, 0, 1, 0, 0]
    print("routing decisions:", routing)
    print(f"tokens per expert: expert0={routing.count(0)}, expert1={routing.count(1)}\n")

    # show the graph structure once (static tiling, like Listing 1)
    built = build_simple_moe(SimpleMoEConfig(), seed=1)
    print(built.program.describe()[:1200], "...\n")

    print(f"{'schedule':<18}{'cycles':>10}{'off-chip bytes':>16}{'on-chip bytes':>15}"
          f"{'max |err|':>12}")
    for label, tile_rows in (("static tile=4", 4), ("dynamic tiling", None)):
        report, error = run_variant(tile_rows, activations, routing)
        print(f"{label:<18}{report.cycles:>10,.0f}{report.offchip_traffic:>16,}"
              f"{report.onchip_memory:>15,}{error:>12.2e}")

    print("\nDynamic tiling loads each expert's weights once (no padded groups), "
          "which is the Section 5.2 optimization in miniature.")


if __name__ == "__main__":
    main()
