#!/usr/bin/env python
"""The paper's simplified MoE walk-through (Section 3.3, Listing 1, Figure 7).

Part 1 states the experiment in the public scenario API: one MoE workload, a
static-tiling schedule and a dynamic-tiling schedule, one ``run`` call — the
Section 5.2 optimization in miniature.

Part 2 (advanced) is the original low-level walk-through on the ten-row,
two-expert toy program: it prints the graph structure, carries real numpy
payloads through the simulator and verifies the result against numpy —
the machinery the workload adapters build on.

Run with::

    python examples/simple_moe.py
"""

import numpy as np

# --------------------------------------------------------------------------
# Part 1 — static vs dynamic tiling through the scenario API
# --------------------------------------------------------------------------

from repro.api import MoEWorkload, Scenario, Schedule, run
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config


def scenario_demo():
    model = scaled_config(QWEN3_30B_A3B, scale=32)
    routing = representative_iteration(
        generate_routing_trace(model, batch_size=10, seed=1))
    result = run(Scenario(
        name="simple-moe",
        workloads=MoEWorkload(model=model, batch=10, assignments=routing),
        schedules={"static tile=4": Schedule.static("static tile=4", 4),
                   "dynamic": Schedule.dynamic()}))

    print("scenario API: the Section 5.2 comparison in one declaration")
    print(f"{'schedule':<18}{'cycles':>10}{'off-chip bytes':>16}{'on-chip bytes':>15}")
    for row in result.rows:
        print(f"{row.schedule:<18}{row['cycles']:>10,.0f}"
              f"{row['offchip_traffic_bytes']:>16,.0f}"
              f"{row['onchip_memory_bytes']:>15,.0f}")
    print("\nDynamic tiling loads each expert's weights once (no padded groups).\n")


# --------------------------------------------------------------------------
# Part 2 (advanced) — the low-level Listing 1 walk-through with real payloads
# --------------------------------------------------------------------------

from repro.core.builder import tokens_to_matrix
from repro.sim import simulate
from repro.workloads.configs import sda_hardware
from repro.workloads.simple_moe import SimpleMoEConfig, build_simple_moe


def run_variant(tile_rows, activations, routing):
    config = SimpleMoEConfig(num_rows=10, hidden_dim=64, out_dim=256, num_experts=2,
                             tile_rows=tile_rows)
    built = build_simple_moe(config, seed=1)
    report = simulate(built.program, built.inputs(activations, routing),
                      hardware=sda_hardware())
    produced = tokens_to_matrix(report.output_tokens(built.output_name))
    error = float(np.abs(produced - built.reference(activations, routing)).max())
    return report, error


def low_level_demo():
    print("advanced: the Listing 1 toy program, functionally verified")
    rng = np.random.default_rng(7)
    activations = rng.standard_normal((10, 64)).astype(np.float32)
    routing = [0, 1, 0, 0, 1, 1, 0, 1, 0, 0]
    print("routing decisions:", routing)
    print(f"tokens per expert: expert0={routing.count(0)}, expert1={routing.count(1)}\n")

    # show the graph structure once (static tiling, like Listing 1)
    built = build_simple_moe(SimpleMoEConfig(), seed=1)
    print(built.program.describe()[:1200], "...\n")

    print(f"{'schedule':<18}{'cycles':>10}{'off-chip bytes':>16}{'on-chip bytes':>15}"
          f"{'max |err|':>12}")
    for label, tile_rows in (("static tile=4", 4), ("dynamic tiling", None)):
        report, error = run_variant(tile_rows, activations, routing)
        print(f"{label:<18}{report.cycles:>10,.0f}{report.offchip_traffic:>16,}"
              f"{report.onchip_memory:>15,}{error:>12.2e}")


def main():
    scenario_demo()
    print("=" * 70, "\n")
    low_level_demo()


if __name__ == "__main__":
    main()
