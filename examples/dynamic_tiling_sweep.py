#!/usr/bin/env python
"""Dynamic tiling versus the static-tiling Pareto frontier (Figure 9 in miniature).

Sweeps static batch-tile sizes for a scaled Qwen3-30B-A3B MoE layer with a
synthetic expert-routing trace, adds the dynamic-tiling point, and reports the
Pareto Improvement Distance — the paper's headline metric for Section 5.2.

Run with::

    python examples/dynamic_tiling_sweep.py [batch]
"""

import sys

from repro.analysis.pareto import ParetoPoint, pareto_improvement_distance
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.sim import simulate
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config, sda_hardware
from repro.workloads.moe import MoELayerConfig, build_moe_layer


def main():
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    model = scaled_config(QWEN3_30B_A3B, scale=32)
    trace = generate_routing_trace(model, batch_size=batch, num_iterations=8, seed=0)
    assignments = representative_iteration(trace)
    counts = trace.bin_counts(0)
    print(f"model: {model.name} ({model.num_experts} experts, top-{model.experts_per_token})")
    print(f"batch: {batch}; busiest expert receives {counts.max()} tokens, "
          f"{int((counts == 0).sum())} experts are idle\n")

    hardware = sda_hardware()
    rows = []
    for tile in (4, 8, 16, 32, None):
        if tile is not None and tile > batch:
            continue
        config = MoELayerConfig(model=model, batch=batch, tile_rows=tile)
        built = build_moe_layer(config)
        report = simulate(built.program, built.inputs(assignments), hardware=hardware)
        rows.append((("dynamic" if tile is None else f"tile={tile}"), tile, report))

    print(f"{'schedule':<12}{'cycles':>12}{'on-chip KB':>12}{'off-chip KB':>13}{'GFLOP':>9}")
    for label, _, report in rows:
        print(f"{label:<12}{report.cycles:>12,.0f}{report.onchip_memory / 1024:>12,.0f}"
              f"{report.offchip_traffic / 1024:>13,.0f}{report.total_flops / 1e9:>9.3f}")

    static = [ParetoPoint(r.cycles, r.onchip_memory, label)
              for label, tile, r in rows if tile is not None]
    dynamic_report = next(r for label, tile, r in rows if tile is None)
    pid = pareto_improvement_distance(
        ParetoPoint(dynamic_report.cycles, dynamic_report.onchip_memory, "dynamic"), static)
    print(f"\nPareto Improvement Distance of dynamic tiling: {pid:.2f} "
          f"(> 1 means beyond the static frontier)")


if __name__ == "__main__":
    main()
