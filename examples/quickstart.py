#!/usr/bin/env python
"""Quickstart: declare a scenario, run it, read the metrics.

Part 1 uses the public scenario API (``repro.api``): a workload (what to
compute), a grid of unified schedules (how to schedule it), and ``run`` —
which simulates every cell, in parallel if asked, with on-disk result caching.

Part 2 (advanced) drops to the low-level graph builder the adapters wrap:
symbolic stream shapes, functional execution against numpy, and the raw
cycle-approximate simulation of Section 4.

Run with::

    python examples/quickstart.py
"""

import numpy as np

# --------------------------------------------------------------------------
# Part 1 — the scenario API (the 10-line experiment)
# --------------------------------------------------------------------------

from repro.api import MoEWorkload, Scenario, Schedule, run
from repro.data.expert_routing import generate_routing_trace, representative_iteration
from repro.workloads.configs import QWEN3_30B_A3B, scaled_config


def scenario_api_demo():
    model = scaled_config(QWEN3_30B_A3B, scale=32)
    routing = representative_iteration(
        generate_routing_trace(model, batch_size=16, seed=0))
    result = run(Scenario(
        name="quickstart-tiling",
        workloads=MoEWorkload(model=model, batch=16, assignments=routing),
        schedules={"tile=4": Schedule.static("tile=4", 4),
                   "tile=8": Schedule.static("tile=8", 8),
                   "dynamic": Schedule.dynamic()}))

    print("scenario API: MoE layer, static tiles vs dynamic tiling")
    print(f"{'schedule':<10}{'cycles':>10}{'off-chip bytes':>16}{'on-chip bytes':>15}")
    for row in result.rows:
        print(f"{row.schedule:<10}{row['cycles']:>10,.0f}"
              f"{row['offchip_traffic_bytes']:>16,.0f}"
              f"{row['onchip_memory_bytes']:>15,.0f}")
    print("\nSame API, registered scenarios:  run('dense-ffn'),"
          " run('prefill-decode-mix'), ...")
    print("Parallel + cached:               run(sc, jobs=4, cache='/tmp/sweeps')\n")


# --------------------------------------------------------------------------
# Part 2 (advanced) — the low-level graph builder behind the adapters
# --------------------------------------------------------------------------

from repro.analysis import program_offchip_traffic, program_onchip_memory
from repro.core import Program, Tile
from repro.core.builder import tile_input, tiles_to_tokens, tokens_to_matrix
from repro.ops import Flatten, LinearOffChipLoadRef, LinearOffChipStore, Map
from repro.ops.functions import Matmul
from repro.sim import run_functional, simulate
from repro.workloads.configs import sda_hardware


def build_program(batch_tiles: int, rows: int, hidden: int, out_dim: int,
                  weight: np.ndarray):
    """``y_i = x_i @ W`` for a stream of input tiles, W re-loaded per tile."""
    x = tile_input("x", batch_tiles, rows, hidden)
    weights = LinearOffChipLoadRef(
        ref=x, in_mem_shape=(hidden, out_dim), tile_shape=(hidden, out_dim),
        shape_tiled=(1, 1), stride_tiled=(1, 1), underlying=weight, name="load_w")
    # each read emits a [1, 1] grid of tiles; flatten it so the weight stream
    # pairs one-to-one with the input tiles
    w_flat = Flatten(Flatten(weights.output, 0, 1, name="w_flat1").output, 0, 1,
                     name="w_flat2")
    product = Map((x, w_flat.output), Matmul(), compute_bw=4096, name="matmul")
    store = LinearOffChipStore(product.output, name="store_y")

    print("stream shapes:")
    print(f"  x        : {x.shape} of {x.dtype}")
    print(f"  weights  : {weights.output.shape} of {weights.output.dtype}")
    print(f"  product  : {product.output.shape} of {product.output.dtype}")
    return Program([store, product.output], name="quickstart"), product.output.name


def low_level_demo():
    print("advanced: the low-level builder the workload adapters wrap")
    rng = np.random.default_rng(0)
    batch_tiles, rows, hidden, out_dim = 8, 4, 64, 128
    weight = rng.standard_normal((hidden, out_dim)).astype(np.float32) * 0.1
    inputs_np = [rng.standard_normal((rows, hidden)).astype(np.float32)
                 for _ in range(batch_tiles)]

    program, output_name = build_program(batch_tiles, rows, hidden, out_dim, weight)
    tokens = {"x": tiles_to_tokens([Tile.from_array(x) for x in inputs_np])}

    # 1. the symbolic frontend's analytical metrics (Section 4.2)
    print("\nsymbolic off-chip traffic :", program_offchip_traffic(program), "bytes")
    print("symbolic on-chip memory   :", program_onchip_memory(program), "bytes")

    # 2. functional execution against numpy
    functional = run_functional(program, tokens)
    produced = tokens_to_matrix(functional.output_tokens(output_name))
    expected = np.vstack([x @ weight for x in inputs_np])
    print("\nfunctional check: max |error| =", float(np.abs(produced - expected).max()))

    # 3. cycle-approximate simulation (Section 4.3)
    report = simulate(program, tokens, hardware=sda_hardware())
    print("\ncycle-approximate simulation:")
    for key, value in report.summary().items():
        print(f"  {key:24s}: {value:,.2f}")


def main():
    scenario_api_demo()
    print("=" * 70, "\n")
    low_level_demo()


if __name__ == "__main__":
    main()
