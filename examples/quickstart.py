#!/usr/bin/env python
"""Quickstart: build, inspect and simulate a small STeP program.

The program loads a weight matrix from off-chip memory once per input tile,
multiplies, and stores the result — a miniature version of the streaming
pipelines used throughout the paper.  It shows the three things the frontend
gives you:

1. symbolic stream shapes you can inspect while building the graph,
2. a functional execution mode to check results against numpy,
3. the cycle-approximate simulation with the performance metrics of Section 4
   (cycles, off-chip traffic, on-chip memory, operational intensity).

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.analysis import program_offchip_traffic, program_onchip_memory
from repro.core import Program, Tile
from repro.core.builder import tile_input, tiles_to_tokens, tokens_to_matrix
from repro.ops import Flatten, LinearOffChipLoadRef, LinearOffChipStore, Map
from repro.ops.functions import Matmul
from repro.sim import run_functional, simulate
from repro.workloads.configs import sda_hardware


def build_program(batch_tiles: int, rows: int, hidden: int, out_dim: int,
                  weight: np.ndarray):
    """``y_i = x_i @ W`` for a stream of input tiles, W re-loaded per tile."""
    x = tile_input("x", batch_tiles, rows, hidden)
    weights = LinearOffChipLoadRef(
        ref=x, in_mem_shape=(hidden, out_dim), tile_shape=(hidden, out_dim),
        shape_tiled=(1, 1), stride_tiled=(1, 1), underlying=weight, name="load_w")
    # each read emits a [1, 1] grid of tiles; flatten it so the weight stream
    # pairs one-to-one with the input tiles
    w_flat = Flatten(Flatten(weights.output, 0, 1, name="w_flat1").output, 0, 1,
                     name="w_flat2")
    product = Map((x, w_flat.output), Matmul(), compute_bw=4096, name="matmul")
    store = LinearOffChipStore(product.output, name="store_y")

    print("stream shapes:")
    print(f"  x        : {x.shape} of {x.dtype}")
    print(f"  weights  : {weights.output.shape} of {weights.output.dtype}")
    print(f"  product  : {product.output.shape} of {product.output.dtype}")
    return Program([store, product.output], name="quickstart"), product.output.name


def main():
    rng = np.random.default_rng(0)
    batch_tiles, rows, hidden, out_dim = 8, 4, 64, 128
    weight = rng.standard_normal((hidden, out_dim)).astype(np.float32) * 0.1
    inputs_np = [rng.standard_normal((rows, hidden)).astype(np.float32)
                 for _ in range(batch_tiles)]

    program, output_name = build_program(batch_tiles, rows, hidden, out_dim, weight)
    tokens = {"x": tiles_to_tokens([Tile.from_array(x) for x in inputs_np])}

    # 1. the symbolic frontend's analytical metrics (Section 4.2)
    print("\nsymbolic off-chip traffic :", program_offchip_traffic(program), "bytes")
    print("symbolic on-chip memory   :", program_onchip_memory(program), "bytes")

    # 2. functional execution against numpy
    functional = run_functional(program, tokens)
    produced = tokens_to_matrix(functional.output_tokens(output_name))
    expected = np.vstack([x @ weight for x in inputs_np])
    print("\nfunctional check: max |error| =", float(np.abs(produced - expected).max()))

    # 3. cycle-approximate simulation (Section 4.3)
    report = simulate(program, tokens, hardware=sda_hardware())
    print("\ncycle-approximate simulation:")
    for key, value in report.summary().items():
        print(f"  {key:24s}: {value:,.2f}")


if __name__ == "__main__":
    main()
