"""Figure 12 — configuration time-multiplexing: compute utilization vs regions."""

from repro.experiments import figure12_13

from repro.experiments.report import print_rows


def test_fig12_utilization_improves(run_once, scale):
    result = run_once(figure12_13.run, scale)
    for tiling in ("static", "dynamic"):
        payload = result[tiling]
        print_rows(f"Figure 12: {tiling} tiling", payload["rows"], payload["summary"])
        summary = payload["summary"]
        # time-multiplexing raises compute utilization substantially (the
        # paper reports 2.51x-2.64x; the exact factor depends on scale) ...
        assert summary["utilization_gain"] > 2.0
        # ... and a moderate region count keeps the overhead bounded
        assert summary["saving_point_overhead"] < 0.15

    # static tiling shows higher utilization than dynamic at the same region
    # count because padding inflates its FLOPs (Figure 12 caption)
    static_rows = {r["parallel_regions"]: r for r in result["static"]["rows"]}
    dynamic_rows = {r["parallel_regions"]: r for r in result["dynamic"]["rows"]}
    shared = set(static_rows) & set(dynamic_rows)
    assert any(static_rows[k]["total_flops"] > dynamic_rows[k]["total_flops"]
               for k in shared)
