"""Benchmark harness configuration.

Every benchmark regenerates one figure of the paper's evaluation at
``DEFAULT_SCALE`` (scaled model dimensions, full structural parameters — see
EXPERIMENTS.md), prints the regenerated rows/series, and asserts the figure's
qualitative claim (who wins, in which direction, roughly by how much).
Experiments are long-running sweeps, so each benchmark executes a single
measured round.

Everything collected under this directory is marked ``benchmark`` and excluded
from the default (tier-1) pytest run — see ``[tool.pytest.ini_options]`` in
``pyproject.toml``.  Run the benchmarks explicitly with::

    python -m pytest -m benchmark benchmarks
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import DEFAULT_SCALE

_BENCHMARK_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    # this hook sees every collected item, not just this directory's, so
    # restrict the marker to items that actually live under benchmarks/
    for item in items:
        if _BENCHMARK_DIR in Path(item.fspath).parents:
            item.add_marker(pytest.mark.benchmark)


@pytest.fixture(scope="session")
def scale():
    return DEFAULT_SCALE


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
