"""Benchmark harness configuration.

Every benchmark regenerates one figure of the paper's evaluation at
``DEFAULT_SCALE`` (scaled model dimensions, full structural parameters — see
EXPERIMENTS.md), prints the regenerated rows/series, and asserts the figure's
qualitative claim (who wins, in which direction, roughly by how much).
Experiments are long-running sweeps, so each benchmark executes a single
measured round.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import DEFAULT_SCALE
from repro.experiments.report import format_summary, format_table


@pytest.fixture(scope="session")
def scale():
    return DEFAULT_SCALE


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def print_rows(title: str, rows, summary=None) -> None:
    print(f"\n=== {title} ===")
    print(format_table(rows))
    if summary:
        print(format_summary(summary, title="summary"))
