"""Figure 10 — dynamic tiling vs static tiling at a large batch size."""

from repro.experiments import figure9_10

from repro.experiments.report import print_rows


def test_fig10_dynamic_tiling_large_batch(run_once, scale):
    result = run_once(figure9_10.run, scale, large_batch=True)
    for model, payload in result["per_model"].items():
        print_rows(f"Figure 10: {model}", payload["rows"], payload["summary"])
        rows = payload["rows"]
        dynamic = next(r for r in rows if r["tile_rows"] is None)
        static_rows = [r for r in rows if r["tile_rows"] is not None]
        best_static_cycles = min(r["cycles"] for r in static_rows)
        largest_tile = max(static_rows, key=lambda r: r["tile_rows"])
        # dynamic tiling matches the best static performance within 10% ...
        assert dynamic["cycles"] <= best_static_cycles * 1.10
        # ... while using no more on-chip memory than the largest static tile
        assert dynamic["onchip_memory_bytes"] <= largest_tile["onchip_memory_bytes"]
        # at the scaled Mixtral configuration the dynamic point sits essentially
        # on the static frontier rather than strictly beyond it (EXPERIMENTS.md)
        assert payload["summary"]["pid"] >= 0.9
