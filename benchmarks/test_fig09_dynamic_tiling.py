"""Figure 9 — dynamic tiling vs the static-tiling Pareto frontier (batch 64)."""

from repro.experiments import figure9_10

from repro.experiments.report import print_rows


def test_fig09_dynamic_tiling_small_batch(run_once, scale):
    result = run_once(figure9_10.run, scale, large_batch=False)
    for model, payload in result["per_model"].items():
        print_rows(f"Figure 9: {model}", payload["rows"], payload["summary"])
        summary = payload["summary"]
        rows = payload["rows"]
        dynamic = next(r for r in rows if r["tile_rows"] is None)
        static_rows = [r for r in rows if r["tile_rows"] is not None]
        # dynamic tiling reaches (or beats) the static Pareto frontier ...
        assert summary["pid"] >= 1.0
        # ... is at least as fast as every static point at matched memory ...
        assert summary["speedup_at_matched_memory"] >= 1.0
        # ... never moves more data than the best static configuration ...
        assert dynamic["offchip_traffic_bytes"] <= min(r["offchip_traffic_bytes"]
                                                       for r in static_rows)
        # ... and avoids the padding FLOPs of static tiling.
        assert dynamic["total_flops"] <= min(r["total_flops"] for r in static_rows)
