"""Figure 1 — effective-bandwidth comparison (GPU vs SDA), reproduced analytically."""

from repro.experiments import figure1

from repro.experiments.report import print_rows


def test_fig01_roofline(run_once, scale):
    result = run_once(figure1.run, scale)
    print_rows("Figure 1: effective HBM bandwidth (TB/s)", result["rows"])
    # Section 2.2: GPUs utilize less than half of peak HBM bandwidth on
    # Llama-3.1 decode; the SDA achieves a higher fraction on every point.
    assert result["gpu_max_fraction"] < 0.5
    assert result["sda_min_fraction"] > 0.5
    for row in result["rows"]:
        assert row["effective_bandwidth_tbs"] <= row["peak_bandwidth_tbs"]
