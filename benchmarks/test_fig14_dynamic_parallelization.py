"""Figure 14 — dynamic vs static interleaved parallelization across KV variance."""

from repro.experiments import figure14

from repro.experiments.report import print_rows


def test_fig14_dynamic_vs_interleaved(run_once, scale):
    result = run_once(figure14.run, scale)
    print_rows("Figure 14: speedup of dynamic over static interleaved", result["rows"],
               result["speedup_by_variance"])
    speedups = result["speedup_by_variance"]
    # dynamic parallelization wins on average and the advantage grows with the
    # KV-length variance (paper: 1.14-1.26x at low, 1.47-1.57x at high)
    assert speedups["high"] > 1.1
    assert speedups["medium"] > 1.0
    assert speedups["high"] >= speedups["low"] - 0.02
