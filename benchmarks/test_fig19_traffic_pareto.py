"""Figure 19 — off-chip traffic vs on-chip memory Pareto (batch 64, Appendix B.4)."""

from repro.experiments import figure19_20

from repro.experiments.report import print_rows


def test_fig19_traffic_vs_memory(run_once, scale):
    result = run_once(figure19_20.run, scale, large_batch=False)
    for model, payload in result["per_model"].items():
        print_rows(f"Figure 19: {model}", payload["rows"], payload["summary"])
        rows = payload["rows"]
        static_rows = sorted((r for r in rows if r["tile_rows"] is not None),
                             key=lambda r: r["tile_rows"])
        dynamic = next(r for r in rows if r["tile_rows"] is None)
        # the static curve trades on-chip memory against off-chip traffic:
        # the smallest tile moves the most data, the largest the least
        assert static_rows[0]["offchip_traffic_bytes"] >= \
            static_rows[-1]["offchip_traffic_bytes"]
        assert static_rows[0]["onchip_memory_bytes"] <= \
            static_rows[-1]["onchip_memory_bytes"]
        # dynamic tiling removes the trade-off: minimal traffic at low memory
        assert dynamic["offchip_traffic_bytes"] <= static_rows[-1]["offchip_traffic_bytes"]
        assert dynamic["onchip_memory_bytes"] <= static_rows[-1]["onchip_memory_bytes"]
