"""Figure 20 — off-chip traffic vs on-chip memory Pareto at a large batch size."""

from repro.experiments import figure19_20

from repro.experiments.report import print_rows


def test_fig20_traffic_vs_memory_large_batch(run_once, scale):
    result = run_once(figure19_20.run, scale, large_batch=True)
    for model, payload in result["per_model"].items():
        print_rows(f"Figure 20: {model}", payload["rows"], payload["summary"])
        rows = payload["rows"]
        static_rows = sorted((r for r in rows if r["tile_rows"] is not None),
                             key=lambda r: r["tile_rows"])
        dynamic = next(r for r in rows if r["tile_rows"] is None)
        assert dynamic["offchip_traffic_bytes"] <= static_rows[0]["offchip_traffic_bytes"]
        assert dynamic["onchip_memory_bytes"] <= static_rows[-1]["onchip_memory_bytes"]
        # the traffic-vs-memory PID of the dynamic point stays close to (or
        # beyond) the static frontier
        assert payload["summary"]["pid"] >= 0.85
