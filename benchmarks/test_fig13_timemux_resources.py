"""Figure 13 — configuration time-multiplexing: resource usage and performance."""


from repro.experiments import figure12_13

from repro.experiments.report import print_rows


def test_fig13_resource_savings(run_once, scale):
    result = run_once(figure12_13.run, scale)
    payload = result["static"]
    print_rows("Figure 13: static tiling (tile=32) region sweep", payload["rows"],
               payload["summary"])
    rows = sorted(payload["rows"], key=lambda r: r["parallel_regions"])
    spatial = rows[-1]          # one region per expert
    shared = rows[0]            # fewest regions
    # allocated compute and on-chip memory shrink with the region count
    assert shared["allocated_compute_flops_per_cycle"] < \
        0.25 * spatial["allocated_compute_flops_per_cycle"]
    assert shared["onchip_memory_bytes"] < spatial["onchip_memory_bytes"]
    # the paper's headline: ~62% compute and ~46% memory freed at comparable
    # performance; require at least a 30% compute saving at <= 15% overhead
    summary = payload["summary"]
    assert summary["compute_saving_fraction"] > 0.3
    assert summary["saving_point_overhead"] < 0.15
    # off-chip bandwidth utilization drops as fewer regions issue loads
    assert shared["offchip_bw_utilization"] <= spatial["offchip_bw_utilization"] + 1e-9
