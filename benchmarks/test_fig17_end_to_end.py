"""Figure 17 — end-to-end Qwen3-30B-A3B and Mixtral-8x7B comparison."""

from repro.experiments import figure17

from repro.experiments.report import print_rows


def test_fig17_end_to_end(run_once, scale):
    result = run_once(figure17.run, scale)
    for model, payload in result["per_model"].items():
        print_rows(f"Figure 17: {model}", payload["rows"], payload["summary"])
        summary = payload["summary"]
        rows = {r["schedule"]: r for r in payload["rows"]}
        # the dynamic schedule is at least as fast as the memory-matched static
        # schedule (paper: 1.27x / 1.15x faster)
        assert summary["speedup_vs_static_mem"] >= 1.0
        # and no slower than the performance-matched static schedule by >10%
        assert summary["speedup_vs_static_perf"] >= 0.9
        if "Qwen" in model:
            # configuration time-multiplexing frees compute on the many-expert
            # model (paper: 54% fewer compute resources, 69% less memory)
            assert summary["compute_saving_vs_static"] > 0.3
            assert rows["dynamic"]["onchip_memory_bytes"] < \
                rows["static_perf"]["onchip_memory_bytes"]
