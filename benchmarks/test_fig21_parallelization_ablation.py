"""Figure 21 — parallelization-strategy ablation across variance and batch classes."""

from repro.experiments import figure21

from repro.experiments.report import print_rows


def test_fig21_ablation(run_once, scale):
    result = run_once(figure21.run, scale)
    print_rows("Figure 21: normalized cycles (relative to dynamic)", result["rows"],
               result["geomean_normalized"])
    norm = result["geomean_normalized"]
    # dynamic parallelization is the reference (1.0) and wins on geometric mean
    # (the paper reports 1.36x for interleave and 1.85x for coarse)
    assert abs(norm["dynamic"] - 1.0) < 1e-6
    assert norm["interleave"] > 1.0
    assert norm["coarse"] > norm["interleave"]
    # the coarse-grained penalty is largest for the small-batch class
    coarse_small = [r["normalized_to_dynamic"] for r in result["rows"]
                    if r["strategy"] == "coarse" and r["batch_class"].startswith("B=16")]
    coarse_big = [r["normalized_to_dynamic"] for r in result["rows"]
                  if r["strategy"] == "coarse" and r["batch_class"] == "B=64"]
    if coarse_small and coarse_big:
        assert max(coarse_small) >= max(coarse_big) - 0.05
