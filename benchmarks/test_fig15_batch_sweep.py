"""Figure 15 — dynamic vs static coarse-grained parallelization across batch sizes."""

from repro.experiments import figure15

from repro.experiments.report import print_rows


def test_fig15_coarse_vs_dynamic(run_once, scale):
    result = run_once(figure15.run, scale)
    print_rows("Figure 15: coarse-grained vs dynamic parallelization", result["rows"])
    # the paper reports a 2.72x speedup at batch 16 because static
    # coarse-grained parallelization leaves most regions idle
    batch16 = [row for row in result["rows"] if row["batch"] == 16][0]
    assert batch16["speedup"] > 2.0
    assert result["smallest_batch_speedup"] > 2.0
    # the advantage shrinks with batch size but persists (1.43x at batch 64)
    assert result["largest_batch_speedup"] > 1.0
    assert result["smallest_batch_speedup"] > result["largest_batch_speedup"]
