"""Figure 8 — SwiGLU tile-size sweep: STeP simulator vs the detailed reference.

The paper reports a Pearson correlation of 0.99 between its cycle-approximate
simulator and a cycle-accurate Bluespec model; our substitute reference is a
physical-tile-granularity Python model (see DESIGN.md), against which we
require a strong positive correlation and identical off-chip traffic.
"""

from repro.experiments import figure8

from repro.experiments.report import print_rows


def test_fig08_simulator_validation(run_once, scale):
    result = run_once(figure8.run, scale)
    print_rows("Figure 8: cycle counts and off-chip traffic per tiling",
               result["rows"],
               {"pearson_correlation": result["pearson_correlation"]})
    assert result["traffic_identical"], "both simulators must observe the same traffic"
    assert result["pearson_correlation"] > 0.85
    # memory-bound behaviour: larger batch tiles reduce both traffic and cycles
    by_tile = {(r["batch_tile"], r["intermediate_tile"]): r for r in result["rows"]}
    small = by_tile[(16, 64)]
    large = by_tile[(64, 64)]
    assert large["step_traffic_bytes"] < small["step_traffic_bytes"]
    assert large["step_cycles"] < small["step_cycles"]
    assert large["hdl_cycles"] < small["hdl_cycles"]
