"""SwiGLU building blocks and the Figure 8 validation workload.

The SwiGLU feed-forward layer (``(silu(x W1) * (x W3)) W2``) contains the
representative computations of modern LLM layers — matrix multiplication, an
activation function and a row-wise combination — which is why the paper uses
it both to validate the simulator against a cycle-accurate HDL model
(Section 4.5, Figure 8) and as the expert computation inside the MoE layers
(Section 5.1).

Two entry points:

* :func:`build_swiglu_layer` — the standalone tiled SwiGLU layer swept over
  tile sizes for Figure 8 (activations and weights stream from off-chip
  memory, results stream back out).
* :func:`swiglu_expert_block` — the per-expert SwiGLU pipeline used by
  :mod:`repro.workloads.moe`, operating on an already-packed stream of input
  tiles and loading this expert's weights from off-chip per packed tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.dtypes import Tile
from ..core.errors import ConfigError
from ..core.graph import Program, StreamHandle
from ..ops import (Accum,
    Flatten,
    LinearOffChipLoad,
    LinearOffChipLoadRef,
    LinearOffChipStore,
    Map,
    Repeat,
    Zip)
from ..ops.functions import Matmul, MatmulAccum, SwiGLUGate


@dataclass(frozen=True)
class SwiGLUTiling:
    """Tile sizes for the SwiGLU layer sweep of Figure 8.

    The figure sweeps (batch tile, hidden tile, intermediate tile); the hidden
    dimension is never tiled in the evaluated configurations, so ``hidden_tile``
    must equal the full hidden dimension.
    """

    batch_tile: int
    hidden_tile: int
    intermediate_tile: int

    def label(self) -> str:
        return f"({self.batch_tile},{self.hidden_tile},{self.intermediate_tile})"


@dataclass(frozen=True)
class SwiGLUConfig:
    """Full problem dimensions of the SwiGLU validation layer (Figure 8)."""

    batch: int = 64
    hidden: int = 256
    intermediate: int = 512
    #: allocated compute bandwidth per matmul operator (FLOPs/cycle).  The
    #: validation configuration provisions enough compute units per node that
    #: the layer is memory-bound (Section 4.5), so cycle counts track off-chip
    #: traffic across the tile sweep.
    compute_bw: int = 16384
    dtype_bytes: int = 2

    def validate_tiling(self, tiling: SwiGLUTiling) -> None:
        if self.batch % tiling.batch_tile != 0:
            raise ConfigError(f"batch {self.batch} not divisible by tile {tiling.batch_tile}")
        if tiling.hidden_tile != self.hidden:
            raise ConfigError("the Figure 8 sweep keeps the hidden dimension untiled")
        if self.intermediate % tiling.intermediate_tile != 0:
            raise ConfigError(
                f"intermediate {self.intermediate} not divisible by "
                f"tile {tiling.intermediate_tile}")


def default_figure8_tilings(config: SwiGLUConfig) -> List[SwiGLUTiling]:
    """The 15 tile-size points of Figure 8."""
    points = []
    for batch_tile in (16, 32, 64):
        for inter_tile in (16, 32, 64, 128, 256):
            points.append(SwiGLUTiling(batch_tile, config.hidden, inter_tile))
    return points


def build_swiglu_layer(config: SwiGLUConfig, tiling: SwiGLUTiling,
                       weights: Optional[Dict[str, np.ndarray]] = None,
                       activations: Optional[np.ndarray] = None,
                       seed: int = 0) -> Program:
    """Build the tiled SwiGLU layer program used for simulator validation.

    The layer streams activation tiles from off-chip memory; for every batch
    tile it re-loads the W1/W3 column tiles and the W2 row tiles, computes
    ``(silu(x W1) * (x W3)) W2`` with the reduction over intermediate tiles
    done by a Zip + Accum(MatmulAccum) pair, and stores the result off chip.
    """
    config.validate_tiling(tiling)
    if weights is None and activations is None and seed is not None:
        weights, activations = random_swiglu_data(config, seed=seed, with_payload=False)
    weights = weights or {}

    b, h, i = tiling.batch_tile, config.hidden, tiling.intermediate_tile
    n_batch = config.batch // b
    n_inter = config.intermediate // i

    # -- activations: [n_batch] stream of [b, hidden] tiles ---------------------------
    x_load = LinearOffChipLoad(
        count=1, in_mem_shape=(config.batch, h), tile_shape=(b, h),
        shape_tiled=(n_batch, 1), stride_tiled=(1, 1),
        underlying=activations, name="load_x")
    x_tiles = Flatten(Flatten(x_load.output, 0, 1, name="flatten_x1").output, 0, 1,
                      name="flatten_x2")

    # -- W1 / W3 column tiles per batch tile --------------------------------------------
    def column_weight(name: str) -> StreamHandle:
        load = LinearOffChipLoadRef(
            ref=x_tiles.output, in_mem_shape=(h, config.intermediate),
            tile_shape=(h, i), shape_tiled=(1, n_inter), stride_tiled=(n_inter, 1),
            underlying=weights.get(name), name=f"load_{name}")
        return Flatten(load.output, 0, 1, name=f"flatten_{name}").output

    w1 = column_weight("w1")
    w3 = column_weight("w3")

    # broadcast each activation tile across the intermediate tiles
    x_rep = Repeat(x_tiles.output, count=n_inter, name="broadcast_x")

    gate = Map((x_rep.output, w1), Matmul(), compute_bw=config.compute_bw, name="gate_matmul")
    up = Map((x_rep.output, w3), Matmul(), compute_bw=config.compute_bw, name="up_matmul")
    hidden_act = Map((gate.output, up.output), SwiGLUGate(),
                     compute_bw=config.compute_bw, name="swiglu_gate")

    # -- W2 row tiles per batch tile, reduced over the intermediate dimension ------------
    w2_load = LinearOffChipLoadRef(
        ref=x_tiles.output, in_mem_shape=(config.intermediate, h),
        tile_shape=(i, h), shape_tiled=(1, n_inter), stride_tiled=(n_inter, 1),
        underlying=weights.get("w2"), name="load_w2")
    w2 = Flatten(w2_load.output, 0, 1, name="flatten_w2")

    pairs = Zip(hidden_act.output, w2.output, name="zip_down")
    out_tiles = Accum(pairs.output, MatmulAccum(), rank=1,
                      compute_bw=config.compute_bw, name="down_matmul")

    store = LinearOffChipStore(out_tiles.output, name="store_out")
    return Program([store], name=f"swiglu_{tiling.label()}")


def random_swiglu_data(config: SwiGLUConfig, seed: int = 0,
                       with_payload: bool = True) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """Random weights/activations for functional checking (or ``None``s for sweeps)."""
    if not with_payload:
        return {}, None
    rng = np.random.default_rng(seed)
    weights = {
        "w1": rng.standard_normal((config.hidden, config.intermediate)).astype(np.float32) * 0.05,
        "w3": rng.standard_normal((config.hidden, config.intermediate)).astype(np.float32) * 0.05,
        "w2": rng.standard_normal((config.intermediate, config.hidden)).astype(np.float32) * 0.05,
    }
    activations = rng.standard_normal((config.batch, config.hidden)).astype(np.float32)
    return weights, activations


def swiglu_reference(activations: np.ndarray, weights: Dict[str, np.ndarray]) -> np.ndarray:
    """Plain numpy SwiGLU layer for functional verification."""
    gate = activations @ weights["w1"]
    up = activations @ weights["w3"]
    hidden = (gate / (1.0 + np.exp(-gate.astype(np.float64)))) * up
    return (hidden @ weights["w2"]).astype(np.float32)


# ---------------------------------------------------------------------------
# SwiGLU expert block (used inside the MoE workloads)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExpertDims:
    """Dimensions of one SwiGLU expert."""

    hidden: int
    intermediate: int
    #: number of column tiles the gate/up weights are split into
    weight_col_tiles: int = 1
    compute_bw: int = 1024
    dtype_bytes: int = 2

    @property
    def gate_tile_cols(self) -> int:
        return self.intermediate // self.weight_col_tiles

    @property
    def down_tile_cols(self) -> int:
        return self.hidden // self.weight_col_tiles

    @property
    def weight_bytes(self) -> int:
        return 3 * self.hidden * self.intermediate * self.dtype_bytes


def swiglu_expert_block(packed: StreamHandle, dims: ExpertDims, prefix: str,
                        weights: Optional[Dict[str, np.ndarray]] = None) -> StreamHandle:
    """The per-expert SwiGLU pipeline of the MoE workloads.

    ``packed`` is a rank-0 stream of packed input tiles (``[rows, hidden]``,
    possibly dynamically sized rows).  For every packed tile the expert's
    gate/up/down weights are re-loaded from off-chip memory (this is exactly
    the reload-versus-padding trade-off that static/dynamic tiling explores),
    and the result is a rank-0 stream of ``[rows, hidden]`` output tiles.
    """
    if dims.intermediate % dims.weight_col_tiles or dims.hidden % dims.weight_col_tiles:
        raise ConfigError("weight_col_tiles must divide both intermediate and hidden dims")
    weights = weights or {}
    c = dims.weight_col_tiles

    def load_columns(name: str, rows: int, cols: int) -> StreamHandle:
        load = LinearOffChipLoadRef(
            ref=packed, in_mem_shape=(rows, cols), tile_shape=(rows, cols // c),
            shape_tiled=(1, c), stride_tiled=(c, 1), underlying=weights.get(name),
            name=f"{prefix}_{name}")
        return Flatten(load.output, 0, 1, name=f"{prefix}_{name}_flat").output

    w1 = load_columns("w1", dims.hidden, dims.intermediate)
    w3 = load_columns("w3", dims.hidden, dims.intermediate)
    x_rep = Repeat(packed, count=c, name=f"{prefix}_broadcast")

    gate = Map((x_rep.output, w1), Matmul(), compute_bw=dims.compute_bw,
               name=f"{prefix}_gate")
    up = Map((x_rep.output, w3), Matmul(), compute_bw=dims.compute_bw,
             name=f"{prefix}_up")
    hidden_act = Map((gate.output, up.output), SwiGLUGate(), compute_bw=dims.compute_bw,
                     name=f"{prefix}_act")

    # Down projection: W2 row tiles zipped against the activation column tiles
    # and reduced with an inner-product matmul accumulation.
    w2_load = LinearOffChipLoadRef(
        ref=packed, in_mem_shape=(dims.intermediate, dims.hidden),
        tile_shape=(dims.intermediate // c, dims.hidden), shape_tiled=(c, 1),
        stride_tiled=(1, 1), underlying=weights.get("w2"), name=f"{prefix}_w2")
    w2 = Flatten(w2_load.output, 0, 1, name=f"{prefix}_w2_flat")

    pairs = Zip(hidden_act.output, w2.output, name=f"{prefix}_zip")
    out = Accum(pairs.output, MatmulAccum(), rank=1, compute_bw=dims.compute_bw,
                name=f"{prefix}_down")
    return out.output


def swiglu_expert_reference(rows: np.ndarray, weights: Dict[str, np.ndarray]) -> np.ndarray:
    """Numpy reference for one expert applied to a block of rows."""
    return swiglu_reference(rows, weights)
