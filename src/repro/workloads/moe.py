"""Mixture-of-Experts layers with SwiGLU experts (Sections 5.2 and 5.3).

This module builds the MoE-layer programs evaluated in Figures 9, 10, 12, 13,
19 and 20:

* **static tiling** — each expert pads its routed tokens into fixed
  ``tile_rows``-row tiles; every tile re-loads the expert's weights from
  off-chip memory (the Revet-expressible baseline schedule),
* **dynamic tiling** — each expert packs its tokens into a single dynamically
  sized tile (Promote + Accum of a dynamically shaped accumulator), loading the
  weights once per active expert,
* **configuration time-multiplexing** — instead of one spatial region per
  expert, ``num_regions`` regions each time-multiplex a group of experts:
  EagerMerge forwards whichever expert's packed tile is ready, and
  RandomOffChipLoad fetches that expert's weights on demand (Figure 11).

The spatial variants (static/dynamic tiling) optionally combine the top-k
expert outputs per token (Reassemble + Accum) and can be checked functionally
against numpy.  The time-multiplexed variant measures the expert-computation
pipeline (the paper's Figure 11 likewise omits the surrounding operators "for
simplicity"); its baseline for Figures 12/13 is built with the same
``combine_output=False`` setting so the comparison is apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.builder import matrix_to_row_tokens, row_stream_input, selector_input, \
    selectors_to_tokens
from ..core.dtypes import Tile
from ..core.errors import ConfigError
from ..core.graph import Program, StreamHandle
from ..core.stream import Token
from ..ops import (Accum,
    EagerMerge,
    FlatMap,
    Flatten,
    LinearOffChipStore,
    Map,
    Partition,
    Promote,
    RandomOffChipLoad,
    Reassemble,
    Reshape)
from ..ops.functions import Matmul, RetileRow, RetileStreamify, SumAccum, SwiGLUGate
from .configs import ModelConfig
from .swiglu import ExpertDims, swiglu_expert_block, swiglu_expert_reference


@dataclass
class MoELayerConfig:
    """Configuration of one MoE layer experiment."""

    model: ModelConfig
    batch: int
    #: static batch-tile size per expert, or ``None`` for dynamic tiling
    tile_rows: Optional[int] = 32
    #: number of column tiles for the expert weight matrices
    weight_col_tiles: int = 4
    #: allocated compute bandwidth (FLOPs/cycle) per expert matmul operator.
    #: The evaluation provisions enough compute per expert that the layer is
    #: memory-bound (Section 5.2), matching the paper's hardware configuration.
    compute_bw: int = 8192
    #: ``None`` → one spatial region per expert; otherwise configuration
    #: time-multiplexing with this many shared regions
    num_regions: Optional[int] = None
    #: combine the top-k expert outputs per token (Reassemble + Accum)
    combine_output: bool = True
    #: attach a collector to the final output for functional checks
    collect_output: bool = False
    #: carry real numpy payloads (small functional tests only)
    with_payload: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tile_rows is not None and self.tile_rows <= 0:
            raise ConfigError("tile_rows must be positive or None (dynamic tiling)")
        if self.num_regions is not None:
            if self.model.num_experts % self.num_regions != 0:
                raise ConfigError("num_regions must divide the number of experts")
            if self.combine_output:
                raise ConfigError(
                    "the time-multiplexed variant measures the expert pipeline; "
                    "set combine_output=False (see module docstring)")

    @property
    def dynamic_tiling(self) -> bool:
        return self.tile_rows is None

    @property
    def expert_dims(self) -> ExpertDims:
        return ExpertDims(hidden=self.model.hidden_dim,
                          intermediate=self.model.moe_intermediate_dim,
                          weight_col_tiles=self.weight_col_tiles,
                          compute_bw=self.compute_bw)

    def label(self) -> str:
        tiling = "dynamic" if self.dynamic_tiling else f"tile{self.tile_rows}"
        regions = "" if self.num_regions is None else f"_regions{self.num_regions}"
        return f"moe_{self.model.name}_b{self.batch}_{tiling}{regions}"


@dataclass
class MoEProgram:
    """A built MoE-layer program plus input builders and a numpy reference."""

    program: Program
    config: MoELayerConfig
    weights: List[Dict[str, np.ndarray]]
    output_name: Optional[str] = None

    def inputs(self, assignments: Sequence[Sequence[int]],
               activations: Optional[np.ndarray] = None) -> Dict[str, List[Token]]:
        """Runtime token streams from per-token expert assignments."""
        config = self.config
        if len(assignments) != config.batch:
            raise ConfigError(
                f"assignments must cover the batch ({config.batch}), got {len(assignments)}")
        if activations is None:
            tokens_x = matrix_to_row_tokens(None, num_rows=config.batch,
                                            row_width=config.model.hidden_dim)
        else:
            tokens_x = matrix_to_row_tokens(activations)
        return {
            "x": tokens_x,
            "router": selectors_to_tokens(list(assignments), config.model.num_experts),
        }

    def reference(self, assignments: Sequence[Sequence[int]],
                  activations: np.ndarray) -> np.ndarray:
        """Numpy reference: sum of the selected experts' SwiGLU outputs per token."""
        activations = np.asarray(activations, dtype=np.float32)
        out = np.zeros((self.config.batch, self.config.model.hidden_dim), dtype=np.float32)
        for token, experts in enumerate(assignments):
            row = activations[token:token + 1]
            for expert in experts:
                out[token] += swiglu_expert_reference(row, self.weights[expert])[0]
        return out


def _expert_weights(config: MoELayerConfig) -> List[Dict[str, np.ndarray]]:
    if not config.with_payload:
        return [{} for _ in range(config.model.num_experts)]
    rng = np.random.default_rng(config.seed)
    weights = []
    for _ in range(config.model.num_experts):
        weights.append({
            "w1": rng.standard_normal(
                (config.model.hidden_dim, config.model.moe_intermediate_dim)
            ).astype(np.float32) * 0.05,
            "w3": rng.standard_normal(
                (config.model.hidden_dim, config.model.moe_intermediate_dim)
            ).astype(np.float32) * 0.05,
            "w2": rng.standard_normal(
                (config.model.moe_intermediate_dim, config.model.hidden_dim)
            ).astype(np.float32) * 0.05,
        })
    return weights


def _pack_rows(branch: StreamHandle, config: MoELayerConfig, prefix: str) -> StreamHandle:
    """Pack an expert's routed rows into tiles (static padding or dynamic)."""
    flat = Flatten(branch, 0, 1, name=f"{prefix}_flat_rows")
    if config.dynamic_tiling:
        grouped = Promote(flat.output, name=f"{prefix}_promote")
    else:
        pad = Tile.zeros(1, config.model.hidden_dim) if config.with_payload \
            else Tile.meta(1, config.model.hidden_dim)
        grouped = Reshape(flat.output, chunk_size=config.tile_rows, level=0, pad=pad,
                          name=f"{prefix}_chunk")
    source = grouped.output if config.dynamic_tiling else grouped.data
    packed = Accum(source, RetileRow(), rank=1, compute_bw=0, name=f"{prefix}_pack")
    return packed.output


def _unpack_rows(tiles: StreamHandle, config: MoELayerConfig, prefix: str) -> StreamHandle:
    """Split expert output tiles back into single-row chunks for Reassemble."""
    rows = FlatMap(tiles, RetileStreamify(1), rank=1, compute_bw=0,
                   name=f"{prefix}_unpack")
    flat = Flatten(rows.output, 0, 1, name=f"{prefix}_flat_out")
    pad = Tile.meta(1, config.model.hidden_dim)
    chunks = Reshape(flat.output, chunk_size=1, level=0, pad=pad, name=f"{prefix}_rechunk")
    return chunks.data


def build_moe_layer(config: MoELayerConfig) -> MoEProgram:
    """Build the MoE-layer program selected by ``config``."""
    weights = _expert_weights(config)
    model = config.model

    x = row_stream_input("x", config.batch, model.hidden_dim)
    router = selector_input("router", config.batch, model.num_experts)
    partition = Partition(x, router, rank=1, num_consumers=model.num_experts, name="route")

    packed_streams = [
        _pack_rows(partition.outputs[e], config, f"expert{e}")
        for e in range(model.num_experts)
    ]

    if config.num_regions is None:
        expert_outputs = [
            swiglu_expert_block(packed_streams[e], config.expert_dims, f"expert{e}",
                                weights=weights[e] if config.with_payload else None)
            for e in range(model.num_experts)
        ]
        final = _finalize_spatial(expert_outputs, router, x, config)
    else:
        final = _finalize_time_multiplexed(packed_streams, config)

    sinks: List = [final["store"]]
    output_name = None
    if config.collect_output and final["output"] is not None:
        sinks.append(final["output"])
        output_name = final["output"].name
    program = Program(sinks, name=config.label())
    return MoEProgram(program=program, config=config, weights=weights,
                      output_name=output_name)


def _finalize_spatial(expert_outputs: Sequence[StreamHandle], router: StreamHandle,
                      x: StreamHandle, config: MoELayerConfig) -> dict:
    """Gather per-expert outputs; optionally combine the top-k contributions."""
    row_streams = [
        _unpack_rows(expert_outputs[e], config, f"expert{e}")
        for e in range(config.model.num_experts)
    ]
    if config.combine_output:
        gathered = Reassemble(row_streams, router, rank=1, name="gather")
        combined = Accum(gathered.output, SumAccum(), rank=2, compute_bw=0, name="combine")
        combined.output.override_shape(x.shape)
        out_handle = combined.output
    else:
        merged = EagerMerge(row_streams, rank=1, name="gather_eager")
        out_handle = merged.data
    store = LinearOffChipStore(out_handle, name="store_out")
    return {"store": store, "output": out_handle}


def _finalize_time_multiplexed(packed_streams: Sequence[StreamHandle],
                               config: MoELayerConfig) -> dict:
    """Configuration time-multiplexing (Figure 11): R regions share the expert pipeline."""
    model = config.model
    experts_per_region = model.num_experts // config.num_regions
    region_outputs: List[StreamHandle] = []

    for region in range(config.num_regions):
        prefix = f"region{region}"
        members = list(range(region * experts_per_region, (region + 1) * experts_per_region))
        merged = EagerMerge([packed_streams[e] for e in members], rank=0,
                            name=f"{prefix}_merge")

        def load(name: str, rows: int, cols: int) -> StreamHandle:
            return RandomOffChipLoad(
                merged.selector, tile_shape=(rows, cols),
                base_addr=region * experts_per_region * rows * cols * 2,
                name=f"{prefix}_{name}").output

        w1 = load("w1", model.hidden_dim, model.moe_intermediate_dim)
        w3 = load("w3", model.hidden_dim, model.moe_intermediate_dim)
        w2 = load("w2", model.moe_intermediate_dim, model.hidden_dim)

        gate = Map((merged.data, w1), Matmul(), compute_bw=config.compute_bw,
                   name=f"{prefix}_gate")
        up = Map((merged.data, w3), Matmul(), compute_bw=config.compute_bw,
                 name=f"{prefix}_up")
        act = Map((gate.output, up.output), SwiGLUGate(), compute_bw=config.compute_bw,
                  name=f"{prefix}_act")
        down = Map((act.output, w2), Matmul(), compute_bw=config.compute_bw,
                   name=f"{prefix}_down")
        region_outputs.append(down.output)

    merged_out = EagerMerge(region_outputs, rank=0, name="gather_regions")
    store = LinearOffChipStore(merged_out.data, name="store_out")
    return {"store": store, "output": merged_out.data}


# ---------------------------------------------------------------------------
# Convenience entry points used by the experiments
# ---------------------------------------------------------------------------

def static_tiling_config(model: ModelConfig, batch: int, tile_rows: int,
                         **kwargs) -> MoELayerConfig:
    """The Revet-expressible baseline schedule: static tiles, spatial experts."""
    return MoELayerConfig(model=model, batch=batch, tile_rows=tile_rows, **kwargs)


def dynamic_tiling_config(model: ModelConfig, batch: int, **kwargs) -> MoELayerConfig:
    """Dynamic tiling (Section 5.2)."""
    return MoELayerConfig(model=model, batch=batch, tile_rows=None, **kwargs)


def time_multiplexed_config(model: ModelConfig, batch: int, num_regions: int,
                            tile_rows: Optional[int] = 32, **kwargs) -> MoELayerConfig:
    """Configuration time-multiplexing (Section 5.3)."""
    kwargs.setdefault("combine_output", False)
    return MoELayerConfig(model=model, batch=batch, tile_rows=tile_rows,
                          num_regions=num_regions, **kwargs)
