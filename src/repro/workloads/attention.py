"""Decode attention with static and dynamic parallelization (Section 5.4).

During token generation, attention is memory-bound and its per-request cost is
proportional to the request's KV-cache length, which varies widely across a
batch.  The paper parallelizes the batch dimension across four spatial regions
and compares three work-distribution strategies (Figures 14, 15, 21):

* **static coarse-grained** — a fixed block of requests per region (16),
* **static interleaved** — round-robin assignment,
* **dynamic parallelization** — dispatch each request to whichever region
  becomes available next, using the Figure 16 feedback graph: a FlatMap seeds
  one initial assignment per region, an EagerMerge over the region outputs
  signals availability, and their merge drives the Partition selector.

Each region's pipeline streams the request's KV tiles from off-chip memory
(RandomOffChipLoad over a per-request address list), broadcasts the query row
over them (Expand), applies a fused score-and-weight attention tile function
and reduces over the request (Accum).  Softmax normalization is folded into
the fused tile function's FLOP count; the performance behaviour (bytes moved
and FLOPs per KV tile) matches the real computation, which is what the
parallelization study measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.builder import matrix_to_row_tokens, row_stream_input, selector_input
from ..core.dims import Dim
from ..core.dtypes import Address, AddressType, Selector, SelectorType, Tile, TileType
from ..core.errors import ConfigError
from ..core.graph import InputStream, Program, StreamHandle
from ..core.shape import StreamShape
from ..core.stream import Token, tokens_from_nested
from ..ops import (Accum, EagerMerge, Expand, FlatMap, Flatten, LinearOffChipStore,
                   Map, Partition, RandomOffChipLoad, Reassemble, Reshape)
from ..ops.functions import FlatMapFunction, MapFunction, SumAccum
from .configs import ModelConfig


class DecodeAttendTile(MapFunction):
    """Fused attention over one KV tile: ``softmax-weight(q · K_tile^T) · V_tile``.

    The function charges the FLOPs of both the score computation and the value
    weighting (4 * kv_rows * width per tile, plus the exponentials), and
    produces the request's partial output row.
    """

    name = "decode_attend_tile"

    def __call__(self, q: Tile, kv: Tile) -> Tile:
        if q.cols != kv.cols:
            raise ConfigError(f"query width {q.cols} must match the KV width {kv.cols}")
        if q.has_data and kv.has_data:
            scores = q.to_array() @ kv.to_array().T
            weights = np.exp(scores - scores.max())
            return Tile.from_array(weights @ kv.to_array(), q.dtype)
        return Tile.meta(1, kv.cols, q.dtype)

    def flops(self, q: Tile, kv: Tile) -> int:
        return 4 * kv.rows * kv.cols + 4 * kv.rows


class RoundRobinSeed(FlatMapFunction):
    """FlatMap function producing the initial round-robin region assignment (Fig. 16).

    ``rounds`` > 1 seeds several requests per region so that a region can load
    its next request while finishing the previous one (the availability signal
    then maintains that occupancy).
    """

    name = "round_robin_seed"

    def __init__(self, num_regions: int, rounds: int = 1):
        self.num_regions = int(num_regions)
        self.rounds = int(rounds)

    def __call__(self, _value) -> List[Selector]:
        return [Selector(region, self.num_regions)
                for _ in range(self.rounds)
                for region in range(self.num_regions)]


@dataclass
class AttentionConfig:
    """Configuration of the decode-attention parallelization experiment."""

    model: ModelConfig
    batch: int
    #: "coarse", "interleave" or "dynamic"
    strategy: str = "interleave"
    num_regions: int = 4
    #: rows per KV tile streamed from off-chip memory
    kv_tile_rows: int = 128
    #: requests per region under the static coarse-grained strategy
    coarse_chunk: int = 16
    #: outstanding requests initially seeded per region under dynamic
    #: parallelization (keeps the pipeline busy across dispatch latency)
    initial_per_region: int = 2
    compute_bw: int = 256
    collect_output: bool = False

    def __post_init__(self) -> None:
        if self.strategy not in ("coarse", "interleave", "dynamic"):
            raise ConfigError(f"unknown parallelization strategy {self.strategy!r}")
        if self.num_regions <= 0:
            raise ConfigError("num_regions must be positive")
        if self.kv_tile_rows <= 0:
            raise ConfigError("kv_tile_rows must be positive")

    @property
    def width(self) -> int:
        """Attention width: the KV head dimension the pipeline operates on."""
        return self.model.kv_dim

    def label(self) -> str:
        return f"attention_{self.model.name}_b{self.batch}_{self.strategy}"


@dataclass
class AttentionProgram:
    """A built attention program plus its runtime input builders."""

    program: Program
    config: AttentionConfig
    output_name: Optional[str] = None

    def inputs(self, kv_lengths: Sequence[int],
               queries: Optional[np.ndarray] = None) -> Dict[str, List[Token]]:
        """Runtime token streams from per-request KV-cache lengths."""
        config = self.config
        if len(kv_lengths) != config.batch:
            raise ConfigError(
                f"kv_lengths must cover the batch ({config.batch}), got {len(kv_lengths)}")
        tokens: Dict[str, List[Token]] = {
            "q": matrix_to_row_tokens(queries, num_rows=config.batch, row_width=config.width),
            "kv_addr": _address_tokens(kv_lengths, config.kv_tile_rows),
        }
        if config.strategy == "dynamic":
            tokens["start"] = tokens_from_nested([Tile.meta(1, 1, "i32")], rank=0)
        else:
            tokens["assign"] = _static_assignment_tokens(config)
        return tokens

    def static_assignment(self) -> List[int]:
        """The per-request region assignment of the static strategies."""
        return _static_assignment(self.config)


def _address_tokens(kv_lengths: Sequence[int], kv_tile_rows: int) -> List[Token]:
    """Rank-1 stream: one group of KV-tile addresses per request."""
    groups: List[List[Address]] = []
    next_tile = 0
    for length in kv_lengths:
        tiles = max(1, -(-int(length) // kv_tile_rows))
        groups.append([Address(next_tile + t) for t in range(tiles)])
        next_tile += tiles
    return tokens_from_nested(groups, rank=1)


def _static_assignment(config: AttentionConfig) -> List[int]:
    if config.strategy == "coarse":
        return [min(i // config.coarse_chunk, config.num_regions - 1)
                for i in range(config.batch)]
    return [i % config.num_regions for i in range(config.batch)]


def _static_assignment_tokens(config: AttentionConfig) -> List[Token]:
    values = [Selector(region, config.num_regions) for region in _static_assignment(config)]
    return tokens_from_nested(values, rank=0)


def _region_pipeline(q_branch: StreamHandle, addr_branch: StreamHandle,
                     config: AttentionConfig, prefix: str) -> StreamHandle:
    """One parallel region: stream KV tiles, attend, reduce per request."""
    kv = RandomOffChipLoad(addr_branch, tile_shape=(config.kv_tile_rows, config.width),
                           name=f"{prefix}_kv_load")
    q_flat = Flatten(q_branch, 0, 1, name=f"{prefix}_q_flat")
    q_rep = Expand(q_flat.output, kv.output, rank=1, name=f"{prefix}_q_expand")
    attend = Map((q_rep.output, kv.output), DecodeAttendTile(),
                 compute_bw=config.compute_bw, name=f"{prefix}_attend")
    reduced = Accum(attend.output, SumAccum(), rank=1, compute_bw=0,
                    name=f"{prefix}_reduce")
    return reduced.output


def build_attention_layer(config: AttentionConfig) -> AttentionProgram:
    """Build the decode-attention program for the selected parallelization strategy."""
    q = row_stream_input("q", config.batch, config.width)
    addr_shape = StreamShape([config.batch, Dim.ragged(name="L")])
    kv_addr = InputStream(addr_shape, AddressType(), name="kv_addr").stream

    if config.strategy == "dynamic":
        # Figure 16: seed one assignment per region, then dispatch on availability.
        start = InputStream(StreamShape([1]), TileType(1, 1, "i32"), name="start").stream
        seed_rounds = max(1, config.initial_per_region)
        seed = FlatMap(start, RoundRobinSeed(config.num_regions, rounds=seed_rounds),
                       rank=1, compute_bw=0,
                       expansion=[config.num_regions * seed_rounds], name="seed",
                       out_dtype=SelectorType(config.num_regions))
        selector = Flatten(seed.output, 0, 1, name="seed_flat").output
    else:
        selector = selector_input("assign", config.batch, config.num_regions)

    q_part = Partition(q, selector, rank=1, num_consumers=config.num_regions,
                       name="route_q")
    addr_part = Partition(kv_addr, selector, rank=1, num_consumers=config.num_regions,
                          name="route_addr")

    region_outputs = [
        _region_pipeline(q_part.outputs[r], addr_part.outputs[r], config, f"region{r}")
        for r in range(config.num_regions)
    ]

    if config.strategy == "dynamic":
        gather = EagerMerge(region_outputs, rank=0, name="gather_dynamic")
        # Availability feedback: the gather's selector output says which region
        # just finished a request; merged with the seed it drives the Partitions.
        availability = EagerMerge([selector, gather.selector], rank=0,
                                  name="dispatch_selector")
        q_part.inputs[1] = availability.data
        addr_part.inputs[1] = availability.data
        out_handle = gather.data
    else:
        row_chunks = []
        for r, handle in enumerate(region_outputs):
            chunks = Reshape(handle, chunk_size=1, level=0, pad=Tile.meta(1, config.width),
                             name=f"region{r}_chunks")
            row_chunks.append(chunks.data)
        gather = Reassemble(row_chunks, selector, rank=1, name="gather")
        out_handle = gather.output

    store = LinearOffChipStore(out_handle, name="store_out")
    sinks: List = [store]
    output_name = None
    if config.collect_output:
        sinks.append(out_handle)
        output_name = out_handle.name
    program = Program(sinks, name=config.label())
    return AttentionProgram(program=program, config=config, output_name=output_name)
