"""QKV generation layer (used by the end-to-end models, Section 5.5).

Query/key/value generation is a dense matrix multiplication of the batch's
activation rows with the fused QKV weight matrix.  The end-to-end evaluation
parallelizes the batch dimension by four; each parallel region packs its rows
into a single dynamically sized tile, loads the QKV weights once and performs
the projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.builder import matrix_to_row_tokens, row_stream_input, selector_input, \
    selectors_to_tokens
from ..core.errors import ConfigError
from ..core.graph import Program
from ..core.stream import Token
from ..ops import (Accum, EagerMerge, Flatten, LinearOffChipLoadRef, LinearOffChipStore,
                   Map, Partition, Promote, Repeat)
from ..ops.functions import Matmul, RetileRow
from .configs import ModelConfig


@dataclass
class QKVConfig:
    """Configuration of the QKV-generation layer."""

    model: ModelConfig
    batch: int
    num_regions: int = 4
    weight_col_tiles: int = 4
    compute_bw: int = 8192

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ConfigError("batch must be positive")
        if self.num_regions <= 0:
            raise ConfigError("num_regions must be positive")

    @property
    def qkv_dim(self) -> int:
        return self.model.q_dim + 2 * self.model.kv_dim

    def label(self) -> str:
        return f"qkv_{self.model.name}_b{self.batch}"


@dataclass
class QKVProgram:
    program: Program
    config: QKVConfig

    def inputs(self, activations: Optional[np.ndarray] = None) -> Dict[str, List[Token]]:
        config = self.config
        assignment = [i % config.num_regions for i in range(config.batch)]
        return {
            "x": matrix_to_row_tokens(activations, num_rows=config.batch,
                                      row_width=config.model.hidden_dim),
            "assign": selectors_to_tokens(assignment, config.num_regions),
        }


def build_qkv_layer(config: QKVConfig) -> QKVProgram:
    """Build the batch-parallel QKV-generation program."""
    model = config.model
    c = config.weight_col_tiles
    if config.qkv_dim % c != 0:
        raise ConfigError("weight_col_tiles must divide the fused QKV dimension")

    x = row_stream_input("x", config.batch, model.hidden_dim)
    assign = selector_input("assign", config.batch, config.num_regions)
    partition = Partition(x, assign, rank=1, num_consumers=config.num_regions, name="route")

    region_outputs = []
    for region in range(config.num_regions):
        prefix = f"region{region}"
        flat = Flatten(partition.outputs[region], 0, 1, name=f"{prefix}_flat")
        grouped = Promote(flat.output, name=f"{prefix}_promote")
        packed = Accum(grouped.output, RetileRow(), rank=1, compute_bw=0,
                       name=f"{prefix}_pack")
        weights = LinearOffChipLoadRef(
            ref=packed.output, in_mem_shape=(model.hidden_dim, config.qkv_dim),
            tile_shape=(model.hidden_dim, config.qkv_dim // c),
            shape_tiled=(1, c), stride_tiled=(c, 1), name=f"{prefix}_w")
        w_flat = Flatten(weights.output, 0, 1, name=f"{prefix}_w_flat")
        x_rep = Repeat(packed.output, count=c, name=f"{prefix}_broadcast")
        proj = Map((x_rep.output, w_flat.output), Matmul(), compute_bw=config.compute_bw,
                   name=f"{prefix}_proj")
        region_outputs.append(proj.output)

    merged = EagerMerge(region_outputs, rank=0, name="gather")
    store = LinearOffChipStore(merged.data, name="store_out")
    return QKVProgram(program=Program([store], name=config.label()), config=config)
