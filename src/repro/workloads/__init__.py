"""STeP workloads used by the paper's evaluation.

* :mod:`repro.workloads.configs` — model / hardware configurations,
* :mod:`repro.workloads.simple_moe` — the simplified two-expert MoE of
  Section 3.3 (Listing 1 / Figures 6-7),
* :mod:`repro.workloads.swiglu` — the SwiGLU layer used for validation (Fig. 8),
* :mod:`repro.workloads.moe` — MoE layers with SwiGLU experts and the
  static/dynamic tiling and time-multiplexing schedules (Figs. 9-13, 19-20),
* :mod:`repro.workloads.attention` — decode attention with the three
  parallelization schedules (Figs. 14, 15, 21),
* :mod:`repro.workloads.qkv` — QKV generation,
* :mod:`repro.workloads.model` — end-to-end decoder models (Fig. 17).
"""

from .configs import (
    HardwareConfig,
    ModelConfig,
    MIXTRAL_8X7B,
    QWEN3_30B_A3B,
    scaled_config,
    sda_hardware,
)

__all__ = [
    "HardwareConfig",
    "ModelConfig",
    "MIXTRAL_8X7B",
    "QWEN3_30B_A3B",
    "scaled_config",
    "sda_hardware",
]
