"""Model and hardware configurations used throughout the evaluation.

The paper evaluates on Qwen3-30B-A3B and Mixtral-8x7B (Section 5.1).  Full-size
configurations are provided below; most benchmarks run *scaled* variants
(see :func:`scaled_config`) that keep the structural parameters that drive the
paper's results (expert count, top-k, routing skew, tiling structure) while
shrinking the hidden/intermediate dimensions so the pure-Python simulator runs
quickly.  EXPERIMENTS.md records the scale factor used for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.errors import ConfigError
from ..sim.executors.common import HardwareConfig


@dataclass(frozen=True)
class ModelConfig:
    """Transformer decoder configuration (MoE models)."""

    name: str
    hidden_dim: int
    #: per-expert FFN intermediate dimension (SwiGLU width)
    moe_intermediate_dim: int
    num_experts: int
    experts_per_token: int
    num_layers: int
    num_attention_heads: int
    num_kv_heads: int
    head_dim: int
    #: expert-popularity skew used by the synthetic routing-trace generator
    #: (larger values concentrate tokens on fewer experts)
    routing_skew: float = 1.0

    def __post_init__(self) -> None:
        if self.experts_per_token > self.num_experts:
            raise ConfigError(
                f"{self.name}: experts_per_token ({self.experts_per_token}) exceeds "
                f"num_experts ({self.num_experts})")
        if self.hidden_dim <= 0 or self.moe_intermediate_dim <= 0:
            raise ConfigError(f"{self.name}: dimensions must be positive")

    @property
    def kv_dim(self) -> int:
        return self.num_kv_heads * self.head_dim

    @property
    def q_dim(self) -> int:
        return self.num_attention_heads * self.head_dim

    @property
    def expert_ffn_params(self) -> int:
        """Parameters of one expert (gate + up + down projections)."""
        return 3 * self.hidden_dim * self.moe_intermediate_dim


#: Qwen3-30B-A3B: 128 routed experts, 8 active per token (Qwen3 technical report).
QWEN3_30B_A3B = ModelConfig(
    name="Qwen3-30B-A3B",
    hidden_dim=2048,
    moe_intermediate_dim=768,
    num_experts=128,
    experts_per_token=8,
    num_layers=48,
    num_attention_heads=32,
    num_kv_heads=4,
    head_dim=128,
    routing_skew=1.2,
)

#: Mixtral-8x7B: 8 experts, 2 active per token.
MIXTRAL_8X7B = ModelConfig(
    name="Mixtral-8x7B",
    hidden_dim=4096,
    moe_intermediate_dim=14336,
    num_experts=8,
    experts_per_token=2,
    num_layers=32,
    num_attention_heads=32,
    num_kv_heads=8,
    head_dim=128,
    routing_skew=0.6,
)

#: Llama-3.1 dense configurations (used by the Figure 1 roofline reproduction).
LLAMA_3_1_8B = ModelConfig(
    name="Llama-3.1-8B",
    hidden_dim=4096,
    moe_intermediate_dim=14336,
    num_experts=1,
    experts_per_token=1,
    num_layers=32,
    num_attention_heads=32,
    num_kv_heads=8,
    head_dim=128,
)

LLAMA_3_1_70B = ModelConfig(
    name="Llama-3.1-70B",
    hidden_dim=8192,
    moe_intermediate_dim=28672,
    num_experts=1,
    experts_per_token=1,
    num_layers=80,
    num_attention_heads=64,
    num_kv_heads=8,
    head_dim=128,
)


def scaled_config(config: ModelConfig, scale: int = 8,
                  num_layers: Optional[int] = None) -> ModelConfig:
    """Shrink a model's hidden/intermediate dimensions by ``scale``.

    Expert count, top-k and routing skew — the parameters the paper's dynamic
    optimizations actually exploit — are preserved.  Dimensions are floored at
    the 16-element hardware tile and rounded to a multiple of it.
    """
    if scale < 1:
        raise ConfigError(f"scale must be >= 1, got {scale}")

    def shrink(value: int) -> int:
        scaled = max(16, value // scale)
        return max(16, (scaled // 16) * 16)

    return replace(
        config,
        name=f"{config.name}-scaled{scale}x",
        hidden_dim=shrink(config.hidden_dim),
        moe_intermediate_dim=shrink(config.moe_intermediate_dim),
        head_dim=shrink(config.head_dim),
        num_layers=num_layers if num_layers is not None else config.num_layers,
    )


def cap_experts(config: ModelConfig, max_experts: Optional[int]) -> ModelConfig:
    """Shrink a model's expert pool to at most ``max_experts`` (None = keep).

    Top-k is reduced alongside (half the capped pool at most) so routing stays
    meaningful.  This is the one capping rule shared by the experiment scales
    and the serving scenarios — subsystems must not diverge on how a scaled
    model is derived.
    """
    if max_experts is None or config.num_experts <= max_experts:
        return config
    return replace(config, name=f"{config.name}-{max_experts}e",
                   num_experts=max_experts,
                   experts_per_token=min(config.experts_per_token, max_experts // 2))


def sda_hardware(onchip_bandwidth: float = 64.0, offchip_bandwidth: float = 1024.0,
                 offchip_latency: float = 100.0, compute_tile: int = 16) -> HardwareConfig:
    """The hardware configuration of Section 5.1.

    64 bytes/cycle per on-chip memory unit, 1024 bytes/cycle off-chip bandwidth,
    matching recent reconfigurable dataflow accelerators.
    """
    return HardwareConfig(
        onchip_bandwidth=onchip_bandwidth,
        offchip_bandwidth=offchip_bandwidth,
        offchip_latency=offchip_latency,
        compute_tile=compute_tile,
    )
