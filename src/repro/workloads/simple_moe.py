"""The simplified MoE of Section 3.3 (Listing 1, Figures 6-7).

A two-expert (or N-expert) MoE layer where each expert is a single matrix
multiplication.  Input rows are dynamically routed to one of the experts with
Partition, each expert packs its rows into statically sized tiles (padding the
last one), multiplies by its weight matrix loaded from off-chip memory, unpacks
the result back to rows, and Reassemble gathers the rows in the original
order.

This module exists both as the paper's worked example (used by
``examples/simple_moe.py``) and as the integration-test anchor for the whole
operator/simulator stack: its functional output is checked against a plain
numpy reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.builder import matrix_to_row_tokens, row_stream_input, selector_input, \
    selectors_to_tokens
from ..core.dtypes import Tile
from ..core.errors import ConfigError
from ..core.graph import Program, StreamHandle
from ..core.stream import Token
from ..ops import (Accum, FlatMap, Flatten, LinearOffChipLoadRef, Map, Partition,
                   Promote, Reassemble, Repeat, Reshape)
from ..ops.functions import Matmul, RetileCol, RetileRow, RetileStreamify


@dataclass
class SimpleMoEConfig:
    """Parameters of the simplified MoE example."""

    num_rows: int = 10
    hidden_dim: int = 64
    out_dim: int = 256
    num_experts: int = 2
    #: static tile size for the batch dimension; ``None`` selects dynamic tiling
    tile_rows: Optional[int] = 4
    #: weight column-tile width (the [64, 64] tiles of Figure 2)
    weight_tile_cols: int = 64
    compute_bw: int = 1024

    def __post_init__(self) -> None:
        if self.out_dim % self.weight_tile_cols != 0:
            raise ConfigError("out_dim must be a multiple of weight_tile_cols")
        if self.tile_rows is not None and self.tile_rows <= 0:
            raise ConfigError("tile_rows must be positive (or None for dynamic tiling)")

    @property
    def weight_col_tiles(self) -> int:
        return self.out_dim // self.weight_tile_cols

    @property
    def dynamic_tiling(self) -> bool:
        return self.tile_rows is None


@dataclass
class SimpleMoEProgram:
    """A built program plus everything needed to run and check it."""

    program: Program
    config: SimpleMoEConfig
    weights: List[np.ndarray]
    output_name: str = "moe_out"

    def inputs(self, activations: np.ndarray, routing: Sequence[int]) -> Dict[str, List[Token]]:
        """Build the runtime token streams for the program's input nodes."""
        activations = np.asarray(activations, dtype=np.float32)
        if activations.shape != (self.config.num_rows, self.config.hidden_dim):
            raise ConfigError(
                f"activations must be ({self.config.num_rows}, {self.config.hidden_dim}), "
                f"got {activations.shape}")
        if len(routing) != self.config.num_rows:
            raise ConfigError("routing must assign every row to an expert")
        return {
            "x": matrix_to_row_tokens(activations),
            "router": selectors_to_tokens(list(routing), self.config.num_experts),
        }

    def reference(self, activations: np.ndarray, routing: Sequence[int]) -> np.ndarray:
        """Plain numpy reference: each row multiplied by its expert's weights."""
        activations = np.asarray(activations, dtype=np.float32)
        out = np.zeros((self.config.num_rows, self.config.out_dim), dtype=np.float32)
        for row, expert in enumerate(routing):
            out[row] = activations[row] @ self.weights[expert]
        return out


def build_simple_moe(config: Optional[SimpleMoEConfig] = None,
                     weights: Optional[Sequence[np.ndarray]] = None,
                     seed: int = 0) -> SimpleMoEProgram:
    """Build the simplified MoE program of Figure 7.

    ``weights`` optionally supplies per-expert ``[hidden_dim, out_dim]``
    matrices (random matrices are generated otherwise); they are the
    ``underlying`` tensors of the weight-load operators so the program can be
    checked end to end against numpy.
    """
    config = config or SimpleMoEConfig()
    rng = np.random.default_rng(seed)
    if weights is None:
        weights = [rng.standard_normal((config.hidden_dim, config.out_dim)).astype(np.float32)
                   for _ in range(config.num_experts)]
    weights = [np.asarray(w, dtype=np.float32) for w in weights]
    for w in weights:
        if w.shape != (config.hidden_dim, config.out_dim):
            raise ConfigError(
                f"expert weights must be ({config.hidden_dim}, {config.out_dim}), got {w.shape}")

    # -- Route ------------------------------------------------------------------------
    x = row_stream_input("x", config.num_rows, config.hidden_dim)
    router = selector_input("router", config.num_rows, config.num_experts)
    partition = Partition(x, router, rank=1, num_consumers=config.num_experts,
                          name="route")

    expert_streams: List[StreamHandle] = []
    for expert in range(config.num_experts):
        prefix = f"expert{expert}"
        branch = partition.outputs[expert]

        # -- Pack to tile: group rows into [tile_rows, hidden] tiles -------------------
        flat_rows = Flatten(branch, 0, 1, name=f"{prefix}_flatten_rows")
        if config.dynamic_tiling:
            # Dynamic tiling (Section 5.2): a single dynamically sized tile per
            # expert — Promote adds the grouping dimension without padding.
            grouped = Promote(flat_rows.output, name=f"{prefix}_promote")
            packed = Accum(grouped.output, RetileRow(), rank=1,
                           compute_bw=config.compute_bw, name=f"{prefix}_pack_rows")
        else:
            pad_tile = Tile.zeros(1, config.hidden_dim)
            chunked = Reshape(flat_rows.output, chunk_size=config.tile_rows, level=0,
                              pad=pad_tile, name=f"{prefix}_reshape")
            packed = Accum(chunked.data, RetileRow(), rank=1,
                           compute_bw=config.compute_bw, name=f"{prefix}_pack_rows")

        # -- Load weight: one full read of the expert's weight per packed tile ----------
        weight_load = LinearOffChipLoadRef(
            ref=packed.output,
            in_mem_shape=(config.hidden_dim, config.out_dim),
            tile_shape=(config.hidden_dim, config.weight_tile_cols),
            stride_tiled=(config.weight_col_tiles, 1),
            shape_tiled=(1, config.weight_col_tiles),
            underlying=weights[expert],
            name=f"{prefix}_weights")
        flat_w = Flatten(weight_load.output, 0, 1, name=f"{prefix}_flatten_w")

        # -- Broadcast the packed input tile across the weight column tiles -------------
        x_rep = Repeat(packed.output, count=config.weight_col_tiles,
                       name=f"{prefix}_broadcast")

        # -- Compute ---------------------------------------------------------------------
        matmul = Map((x_rep.output, flat_w.output), Matmul(),
                     compute_bw=config.compute_bw, name=f"{prefix}_matmul")

        # -- Pack tile (column-wise), then unpack back into single rows -------------------
        packed_out = Accum(matmul.output, RetileCol(), rank=1,
                           compute_bw=config.compute_bw, name=f"{prefix}_pack_cols")
        rows_out = FlatMap(packed_out.output, RetileStreamify(1), rank=1,
                           compute_bw=config.compute_bw, name=f"{prefix}_unpack")
        flat_out = Flatten(rows_out.output, 0, 1, name=f"{prefix}_flatten_out")
        row_chunks = Reshape(flat_out.output, chunk_size=1, level=0,
                             pad=Tile.zeros(1, config.out_dim),
                             name=f"{prefix}_rechunk")
        expert_streams.append(row_chunks.data)

    # -- Merge -----------------------------------------------------------------------------
    output = Reassemble(expert_streams, router, rank=1, name="merge")
    # The programmer knows the output has the routed input's shape (Listing 1, line 26).
    output.output.override_shape(x.shape)

    program = Program([output.output], name="simple_moe")
    return SimpleMoEProgram(program=program, config=config, weights=list(weights),
                            output_name=output.output.name)
