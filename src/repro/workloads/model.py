"""End-to-end decoder models (Figure 17, Section 5.5).

A decoder layer comprises QKV generation, attention and the MoE block; the
paper fuses each layer into one STeP graph and executes it repeatedly with
layer-specific weights, parallelizing the batch dimension by four for QKV and
attention and using expert parallelism for the MoE.

This module evaluates the end-to-end models by composing the three sub-layer
programs: the sub-layers of one decoder layer execute back to back (they are
data dependent), so layer latency is the sum of the sub-layer latencies and
the layer's spatial resources (on-chip memory, allocated compute) are the sum
of the sub-graphs' resources; the model repeats the layer configuration with
layer-specific weights, so end-to-end latency and traffic scale with the layer
count while the resource footprint stays that of one layer.  This mirrors the
paper's "single fused layer graph executed repeatedly" setup while keeping the
pure-Python simulation tractable; the (small) pipelining overlap between
adjacent sub-layers inside one fused graph is the only effect lost, and it is
identical across the compared schedules.

Three schedules are compared, as in Figure 17:

* ``dynamic`` — dynamic tiling for the MoE, dynamic parallelization for
  attention, and (for models with many experts) configuration
  time-multiplexing,
* ``static_mem`` — the static schedule whose MoE tile size is closest in
  on-chip memory to the dynamic one (memory-matched baseline),
* ``static_perf`` — the static schedule whose MoE tile size is closest in
  performance (performance-matched baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


from ..core.errors import ConfigError
from ..platforms import resolve_platform
from ..schedules import (Schedule, dynamic_tiling, parallelization, static_tiling,
                         time_multiplexing)
from ..sim import simulate
from ..sim.executors.common import HardwareConfig
from .attention import AttentionConfig, build_attention_layer
from .configs import ModelConfig
from .moe import MoELayerConfig, build_moe_layer
from .qkv import QKVConfig, build_qkv_layer


@dataclass
class LayerBreakdown:
    """Per-sub-layer metrics of one decoder layer under one schedule."""

    cycles: Dict[str, float] = field(default_factory=dict)
    offchip_traffic: Dict[str, int] = field(default_factory=dict)
    onchip_memory: Dict[str, int] = field(default_factory=dict)
    allocated_compute: Dict[str, int] = field(default_factory=dict)

    @property
    def layer_cycles(self) -> float:
        return sum(self.cycles.values())

    @property
    def layer_traffic(self) -> int:
        return sum(self.offchip_traffic.values())

    @property
    def layer_memory(self) -> int:
        return sum(self.onchip_memory.values())

    @property
    def layer_compute(self) -> int:
        return sum(self.allocated_compute.values())


@dataclass
class EndToEndResult:
    """End-to-end metrics for one model + schedule."""

    model: ModelConfig
    schedule: Schedule
    batch: int
    num_layers: int
    breakdown: LayerBreakdown

    @property
    def total_cycles(self) -> float:
        return self.breakdown.layer_cycles * self.num_layers

    @property
    def total_traffic(self) -> int:
        return self.breakdown.layer_traffic * self.num_layers

    @property
    def onchip_memory(self) -> int:
        return self.breakdown.layer_memory

    @property
    def allocated_compute(self) -> int:
        return self.breakdown.layer_compute


def default_schedules(model: ModelConfig, static_mem_tile: int = 8,
                      static_perf_tile: int = 32,
                      timemux_regions: Optional[int] = None) -> Dict[str, Schedule]:
    """The three Figure 17 schedule variants as unified :class:`Schedule` objects.

    Configuration time-multiplexing is only applied to models with a large
    expert pool (the paper skips it for Mixtral-8x7B because all eight experts
    are active at batch 64).
    """
    if timemux_regions is None and model.num_experts >= 32:
        timemux_regions = max(4, model.num_experts // 8)
    if model.num_experts < 32:
        timemux_regions = None
    timemux = None if timemux_regions is None else \
        time_multiplexing(model.num_experts, timemux_regions)
    return {
        "static_mem": Schedule(name="static_mem", tiling=static_tiling(static_mem_tile),
                               parallelization=parallelization("interleave")),
        "static_perf": Schedule(name="static_perf", tiling=static_tiling(static_perf_tile),
                                parallelization=parallelization("interleave")),
        "dynamic": Schedule(name="dynamic", tiling=dynamic_tiling(), timemux=timemux,
                            parallelization=parallelization("dynamic")),
    }


def evaluate_layer(model: ModelConfig, schedule: Schedule, batch: int,
                   kv_lengths: Sequence[int],
                   moe_assignments: Sequence[Sequence[int]],
                   hardware: Optional[HardwareConfig] = None,
                   moe_compute_bw: int = 8192,
                   attention_compute_bw: int = 256,
                   kv_tile_rows: int = 128) -> LayerBreakdown:
    """Simulate one decoder layer's three sub-layers under ``schedule``."""
    hardware = resolve_platform(hardware).hardware
    breakdown = LayerBreakdown()

    qkv_cfg = QKVConfig(model=model, batch=batch, compute_bw=moe_compute_bw)
    qkv_prog = build_qkv_layer(qkv_cfg)
    _record(breakdown, "qkv", simulate(qkv_prog.program, qkv_prog.inputs(), hardware=hardware))

    attn_cfg = AttentionConfig(model=model, batch=batch,
                               strategy=schedule.attention_strategy,
                               num_regions=schedule.parallelization.num_regions,
                               coarse_chunk=schedule.parallelization.coarse_chunk,
                               kv_tile_rows=kv_tile_rows,
                               compute_bw=attention_compute_bw)
    attn_prog = build_attention_layer(attn_cfg)
    _record(breakdown, "attention",
            simulate(attn_prog.program, attn_prog.inputs(list(kv_lengths)), hardware=hardware))

    moe_cfg = MoELayerConfig(model=model, batch=batch,
                             tile_rows=schedule.moe_tile_rows,
                             num_regions=schedule.moe_num_regions,
                             combine_output=schedule.moe_num_regions is None,
                             compute_bw=moe_compute_bw)
    moe_prog = build_moe_layer(moe_cfg)
    _record(breakdown, "moe",
            simulate(moe_prog.program, moe_prog.inputs(list(moe_assignments)),
                     hardware=hardware))
    return breakdown


def _record(breakdown: LayerBreakdown, name: str, report) -> None:
    breakdown.cycles[name] = report.cycles
    breakdown.offchip_traffic[name] = report.offchip_traffic
    breakdown.onchip_memory[name] = report.onchip_memory
    breakdown.allocated_compute[name] = report.allocated_compute


def evaluate_end_to_end(model: ModelConfig, schedule: Schedule, batch: int,
                        kv_lengths: Sequence[int],
                        moe_assignments: Sequence[Sequence[int]],
                        num_layers: Optional[int] = None,
                        hardware: Optional[HardwareConfig] = None,
                        **layer_kwargs) -> EndToEndResult:
    """End-to-end metrics: one layer simulated, scaled by the layer count."""
    if len(kv_lengths) != batch or len(moe_assignments) != batch:
        raise ConfigError("kv_lengths and moe_assignments must cover the batch")
    breakdown = evaluate_layer(model, schedule, batch, kv_lengths, moe_assignments,
                               hardware=hardware, **layer_kwargs)
    return EndToEndResult(model=model, schedule=schedule, batch=batch,
                          num_layers=num_layers or model.num_layers,
                          breakdown=breakdown)
