"""Generic JSON round-trips for the declarative experiment records.

The sweep cache already *canonicalizes* arbitrary config graphs for hashing
(:func:`repro.sweep.cache.canonicalize`), but hashing is one-way.  This module
provides the symmetric pair the declarative API needs:

* :func:`to_jsonable` — convert any experiment value object (nested
  dataclasses, enums, mappings, sequences, numpy scalars) into plain JSON
  data, tagging dataclasses and enums with their module-qualified type so
  they can be rebuilt,
* :func:`from_jsonable` — rebuild the tagged structure.  Reconstruction is
  restricted to dataclasses and enums defined inside the ``repro`` package —
  a serialized spec is data, not a pickle, and must never instantiate
  arbitrary types.

Sequences deliberately come back as lists (JSON has no tuple); every config
dataclass that requires tuples normalizes in ``__post_init__``, and the cache
canonicalization treats lists and tuples identically, so a round-tripped spec
hashes — and therefore caches — exactly like the original.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
from typing import Any

from .core.errors import ConfigError

#: tag keys marking reconstructible payloads
DATACLASS_TAG = "__dataclass__"
ENUM_TAG = "__enum__"

#: the only package reconstruction may import from
TRUSTED_PACKAGE = "repro"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into tagged, JSON-serializable data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tag = f"{type(obj).__module__}:{type(obj).__qualname__}"
        payload = {DATACLASS_TAG: tag}
        for field in dataclasses.fields(obj):
            payload[field.name] = to_jsonable(getattr(obj, field.name))
        return payload
    if isinstance(obj, enum.Enum):
        return {ENUM_TAG: f"{type(obj).__module__}:{type(obj).__qualname__}",
                "value": to_jsonable(obj.value)}
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise ConfigError(f"cannot serialize mapping with non-string key "
                                  f"{key!r} (JSON objects need string keys)")
        return {key: to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if hasattr(obj, "tolist") and callable(obj.tolist):
        return to_jsonable(obj.tolist())  # numpy scalars / arrays
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ConfigError(f"cannot serialize {type(obj).__name__!r} to JSON data")


def _resolve_type(tag: str) -> type:
    """Import the tagged type, restricted to the ``repro`` package."""
    try:
        module_name, qualname = tag.split(":", 1)
    except ValueError:
        raise ConfigError(f"malformed type tag {tag!r}") from None
    if module_name != TRUSTED_PACKAGE and \
            not module_name.startswith(TRUSTED_PACKAGE + "."):
        raise ConfigError(f"refusing to reconstruct non-{TRUSTED_PACKAGE} type {tag!r}")
    try:
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError):
        raise ConfigError(f"cannot resolve serialized type {tag!r}") from None
    if not isinstance(target, type):
        raise ConfigError(f"serialized tag {tag!r} is not a type")
    return target


def from_jsonable(data: Any) -> Any:
    """Rebuild a structure produced by :func:`to_jsonable`."""
    if isinstance(data, dict):
        if DATACLASS_TAG in data:
            cls = _resolve_type(data[DATACLASS_TAG])
            if not dataclasses.is_dataclass(cls):
                raise ConfigError(f"serialized tag {data[DATACLASS_TAG]!r} is not "
                                  f"a dataclass")
            names = {field.name for field in dataclasses.fields(cls) if field.init}
            kwargs = {key: from_jsonable(value) for key, value in data.items()
                      if key != DATACLASS_TAG and key in names}
            return cls(**kwargs)
        if ENUM_TAG in data:
            cls = _resolve_type(data[ENUM_TAG])
            if not issubclass(cls, enum.Enum):
                raise ConfigError(f"serialized tag {data[ENUM_TAG]!r} is not an enum")
            return cls(from_jsonable(data["value"]))
        return {key: from_jsonable(value) for key, value in data.items()}
    if isinstance(data, list):
        return [from_jsonable(value) for value in data]
    return data
