"""One resolution path for every serve-side policy registry.

The serve subsystem grew several registries — eviction policies
(:mod:`repro.serve.memory`), fleet routing policies
(:mod:`repro.serve.fleet`) and, with the :class:`~repro.serve.policy.
ServePolicy` redesign, admission / batching / priority-assignment policies
plus the named policy presets.  They all share one failure mode: an unknown
name must raise a :class:`~repro.core.errors.ConfigError` that *lists the
registered names*, never an opaque ``KeyError``.  This module centralizes
that error path:

* each registry module hands its ``name -> factory`` dict to
  :func:`attach_registry` under a short *kind* (``"eviction"``,
  ``"routing"``, ``"admission"``, ``"batching"``, ``"priority"``,
  ``"policy"``),
* every getter resolves through :func:`resolve_registered`, so the
  "unknown X" message is worded identically everywhere,
* :func:`seal_builtins` snapshots the names registered at import time.
  Anything registered later (a user's custom policy) is *not builtin* —
  :meth:`ServePolicy.to_dict` uses :func:`is_builtin` to refuse serializing
  specs that a fresh process could not reconstruct.

The registries themselves stay ordinary module-level dicts in their home
modules (so ``EVICTION_POLICIES`` et al. keep their public identity); this
module only indexes them by kind.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from ..core.errors import ConfigError

#: kind -> the registry dict living in the kind's home module
_REGISTRIES: Dict[str, Dict[str, Any]] = {}
#: kind -> names present when the home module finished importing
_BUILTINS: Dict[str, Set[str]] = {}


def attach_registry(kind: str, registry: Dict[str, Any]) -> Dict[str, Any]:
    """Index ``registry`` (a live ``name -> factory`` dict) under ``kind``."""
    if kind in _REGISTRIES:
        raise ConfigError(f"policy registry kind {kind!r} is already attached")
    _REGISTRIES[kind] = registry
    _BUILTINS[kind] = set()
    return registry


def registry_kinds() -> List[str]:
    """The attached registry kinds, sorted."""
    return sorted(_REGISTRIES)


def resolve_registered(kind: str, name: str) -> Any:
    """Look up ``name`` in the ``kind`` registry or raise a listing ConfigError.

    Returns whatever the registry stores (a policy class, a factory, or a
    value object for the ``"policy"`` preset registry) — instantiation is the
    caller's business.
    """
    try:
        registry = _REGISTRIES[kind]
    except KeyError:
        raise ConfigError(f"unknown policy registry kind {kind!r}; "
                          f"attached: {registry_kinds()}") from None
    try:
        return registry[name]
    except KeyError:
        raise ConfigError(f"unknown {kind} policy {name!r}; "
                          f"registered: {sorted(registry)}") from None


def registered_names(kind: str) -> List[str]:
    """The names registered under ``kind``, sorted."""
    if kind not in _REGISTRIES:
        raise ConfigError(f"unknown policy registry kind {kind!r}; "
                          f"attached: {registry_kinds()}")
    return sorted(_REGISTRIES[kind])


def seal_builtins(kind: str) -> None:
    """Snapshot the currently registered names as the builtin set for ``kind``.

    Called once at the bottom of the kind's home module; later registrations
    are custom and :func:`is_builtin` reports them as such.
    """
    if kind not in _REGISTRIES:
        raise ConfigError(f"unknown policy registry kind {kind!r}; "
                          f"attached: {registry_kinds()}")
    _BUILTINS[kind] = set(_REGISTRIES[kind])


def is_builtin(kind: str, name: str) -> bool:
    """Whether ``name`` was registered at import time (ships with repro)."""
    return name in _BUILTINS.get(kind, ())


def builtin_names(kind: str) -> List[str]:
    """The builtin (import-time) names for ``kind``, sorted."""
    if kind not in _REGISTRIES:
        raise ConfigError(f"unknown policy registry kind {kind!r}; "
                          f"attached: {registry_kinds()}")
    return sorted(_BUILTINS[kind])
