"""Registered ``serve-*`` scenarios — serving runs addressable by name.

Importing :mod:`repro.serve` (or :mod:`repro.api`) registers:

* ``"serve-poisson"`` — Poisson traffic at a ladder of arrival rates, served
  under a static and the dynamic schedule: the latency-vs-load picture, as a
  plain scenario grid,
* ``"serve-batch-cap"`` — one arrival rate, swept over continuous-batching
  caps under the dynamic schedule: how much batching headroom the engine
  needs before queueing collapses,
* ``"serve-burst"`` — bursty versus steady arrivals at the same marginal
  rate: the tail-latency cost of synchronized traffic,
* ``"serve-overload"`` — the same load ladder on unbounded (``sda``) versus
  capacity-bounded (``sda-hbm-small``) HBM: where the finite KV pool starts
  costing goodput (admission stalls, preemptions, recompute),
* ``"serve-paged-vs-contiguous"`` — the two KV allocation disciplines under
  one tight HBM budget: paged preempts-and-recomputes, contiguous
  stalls-and-fragments (see :mod:`repro.serve.memory`),
* ``"serve-policies"`` — one traffic trace under every registered scheduling
  policy preset, using the scenario ``policies`` axis (the
  :class:`~repro.serve.policy.ServePolicy` registries: admission × batching ×
  priority, see :mod:`repro.serve.policy`),
* ``"serve-diurnal"`` — the sinusoidal-rate trace (time-varying Poisson via
  thinning, :mod:`repro.serve.generators`) against steady traffic at the same
  mean rate: what rate swings cost a fixed-capacity engine,
* ``"serve-multitenant"`` — the default three-tenant blend (interactive /
  batch / analytics length profiles on priority classes 0/1/2) under the
  default and the priority scheduling policies,
* ``"serve-streaming"`` — one trace served twice, ``report_mode="full"`` vs
  ``"streaming"``: the O(1)-memory report path side by side with the exact
  one (cycle counts and means identical; percentiles sketch-bounded),
* ``"fleet-grid"`` — the fleet-scale picture: replica counts × routing
  policies × arrival rates, every cell a full multi-replica dispatch run
  (:mod:`repro.serve.fleet`),
* ``"fleet-autoscale"`` — reactive autoscaling against fixed fleets under
  the same bursty traffic: what scale-up cold starts cost and what
  over-provisioning wastes,
* ``"fleet-surrogate"`` — a production-sized heavy-tailed trace on a fleet
  under the two-tier engine (``engine="surrogate"``, streaming reports): the
  cost-model fast path for fleet-scale sweeps (:mod:`repro.costmodel`) —
  only the first ``calibration_budget`` distinct step signatures are
  simulated exactly, everything after is predicted.

All factories take keyword overrides; the defaults are smoke-sized (a few
dozen requests, two decoder layers) so the scenarios run in seconds — pass
``num_requests`` / ``rates`` / ``model_scale`` overrides for bigger studies.

Workload imports are deferred into the factories: scenario registration must
not import the serving adapters while :mod:`repro.api` is still initializing.
"""

from __future__ import annotations

from typing import Sequence

from ..api.scenario import Scenario, register_scenario
from ..core.errors import ConfigError
from ..schedules import Schedule
from ..workloads.configs import QWEN3_30B_A3B, scaled_config

#: default arrival-rate ladder (requests per million cycles): light load,
#: near-saturation and overload for the smoke-sized serving model (whose
#: service capacity at batch cap 4 measures ~200 requests per Mcycle)
DEFAULT_RATES = (40.0, 160.0, 640.0)

#: the smoke-sized request-length profile shared by the serve-* scenarios,
#: the serve-latency experiment and examples/serving.py — one definition so
#: the advertised surfaces always describe the same traffic
SMOKE_LENGTHS = {"prompt_mean": 48.0, "prompt_max": 192,
                 "output_mean": 6.0, "output_max": 24}

#: the decode-heavy profile the memory-pressure surfaces share (serve-overload,
#: serve-paged-vs-contiguous and the memory-pressure experiment).  Longer
#: outputs make running requests *grow* across KV-page boundaries — which is
#: what triggers preemption — while ``prompt_max + output_max`` (208 rows)
#: still fits the 4-page ``sda-hbm-small`` pool, so every request is servable
#: and pressure shows up as stalls/evictions rather than rejected traffic
OVERLOAD_LENGTHS = {"prompt_mean": 48.0, "prompt_max": 160,
                    "output_mean": 24.0, "output_max": 48}


def _serve_model(model_scale: int, max_experts=16):
    from ..workloads.configs import cap_experts

    return cap_experts(scaled_config(QWEN3_30B_A3B, scale=model_scale),
                       max_experts)


def serve_schedules(tile_rows: int = 4):
    """The static-vs-dynamic schedule pair the serving scenarios compare."""
    return {
        "static": Schedule.static("static", tile_rows=tile_rows),
        "dynamic": Schedule.dynamic(),
    }


@register_scenario("serve-poisson")
def serve_poisson(model_scale: int = 32, rates: Sequence[float] = DEFAULT_RATES,
                  num_requests: int = 16, batch_cap: int = 4, num_layers: int = 2,
                  prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                  prompt_max: int = SMOKE_LENGTHS["prompt_max"],
                  output_mean: float = SMOKE_LENGTHS["output_mean"],
                  output_max: int = SMOKE_LENGTHS["output_max"],
                  kv_tile_rows: int = 128, seed: int = 0) -> Scenario:
    """Poisson arrival-rate ladder × (static, dynamic) schedules."""
    from .arrivals import poisson_trace
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    workloads = {
        f"rate={rate:g}": ServeWorkload(
            model=model,
            trace=poisson_trace(rate=rate, num_requests=num_requests, seed=seed,
                                prompt_mean=prompt_mean, prompt_max=prompt_max,
                                output_mean=output_mean, output_max=output_max),
            batch_cap=batch_cap, num_layers=num_layers,
            kv_tile_rows=kv_tile_rows, seed=seed)
        for rate in rates
    }
    return Scenario(
        name="serve-poisson",
        workloads=workloads,
        schedules=serve_schedules(),
        seed=seed,
        description="open-loop Poisson serving at a ladder of arrival rates",
    )


@register_scenario("serve-batch-cap")
def serve_batch_cap(model_scale: int = 32, arrival_rate: float = 300.0,
                    batch_caps: Sequence[int] = (2, 4, 8), num_requests: int = 16,
                    num_layers: int = 2,
                    prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                    prompt_max: int = SMOKE_LENGTHS["prompt_max"],
                    output_mean: float = SMOKE_LENGTHS["output_mean"],
                    output_max: int = SMOKE_LENGTHS["output_max"],
                    kv_tile_rows: int = 128,
                    seed: int = 0) -> Scenario:
    """One arrival rate, swept over continuous-batching caps (dynamic schedule)."""
    from .arrivals import poisson_trace
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    trace = poisson_trace(rate=arrival_rate, num_requests=num_requests, seed=seed,
                          prompt_mean=prompt_mean, prompt_max=prompt_max,
                          output_mean=output_mean, output_max=output_max)
    workloads = {
        f"cap={cap}": ServeWorkload(model=model, trace=trace, batch_cap=cap,
                                    num_layers=num_layers,
                                    kv_tile_rows=kv_tile_rows, seed=seed)
        for cap in batch_caps
    }
    return Scenario(
        name="serve-batch-cap",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        seed=seed,
        description="continuous-batching cap sweep at one arrival rate",
    )


@register_scenario("serve-burst")
def serve_burst(model_scale: int = 32, arrival_rate: float = 150.0,
                burst_size: int = 4, num_requests: int = 16, batch_cap: int = 4,
                num_layers: int = 2,
                prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                prompt_max: int = SMOKE_LENGTHS["prompt_max"],
                output_mean: float = SMOKE_LENGTHS["output_mean"],
                output_max: int = SMOKE_LENGTHS["output_max"],
                kv_tile_rows: int = 128,
                seed: int = 0) -> Scenario:
    """Bursty vs steady arrivals at the same marginal rate (dynamic schedule)."""
    from .arrivals import burst_trace, poisson_trace
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    length_kwargs = dict(prompt_mean=prompt_mean, prompt_max=prompt_max,
                         output_mean=output_mean, output_max=output_max)
    workloads = {
        "steady": ServeWorkload(
            model=model,
            trace=poisson_trace(rate=arrival_rate, num_requests=num_requests,
                                seed=seed, **length_kwargs),
            batch_cap=batch_cap, num_layers=num_layers,
            kv_tile_rows=kv_tile_rows, seed=seed),
        "burst": ServeWorkload(
            model=model,
            trace=burst_trace(rate=arrival_rate, num_requests=num_requests,
                              burst_size=burst_size, seed=seed, **length_kwargs),
            batch_cap=batch_cap, num_layers=num_layers,
            kv_tile_rows=kv_tile_rows, seed=seed),
    }
    return Scenario(
        name="serve-burst",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        seed=seed,
        description="bursty vs steady arrivals at equal offered load",
    )


@register_scenario("serve-overload")
def serve_overload(model_scale: int = 32, rates: Sequence[float] = DEFAULT_RATES,
                   num_requests: int = 16, batch_cap: int = 4,
                   num_layers: int = 2,
                   prompt_mean: float = OVERLOAD_LENGTHS["prompt_mean"],
                   prompt_max: int = OVERLOAD_LENGTHS["prompt_max"],
                   output_mean: float = OVERLOAD_LENGTHS["output_mean"],
                   output_max: int = OVERLOAD_LENGTHS["output_max"],
                   kv_tile_rows: int = 64, eviction_policy: str = "evict-lru",
                   seed: int = 0) -> Scenario:
    """The same load ladder on unbounded vs capacity-bounded HBM.

    Every cell pair isolates pure capacity effects: ``sda`` and
    ``sda-hbm-small`` share bandwidths and timing, so the goodput gap and the
    nonzero ``preemptions`` / ``admission_stalls`` columns are entirely the
    finite KV pool.  Decode-heavy traffic (:data:`OVERLOAD_LENGTHS`) keeps
    preemption reachable at smoke size.
    """
    from ..platforms import get_platform
    from .arrivals import poisson_trace
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    workloads = {
        f"rate={rate:g}": ServeWorkload(
            model=model,
            trace=poisson_trace(rate=rate, num_requests=num_requests, seed=seed,
                                prompt_mean=prompt_mean, prompt_max=prompt_max,
                                output_mean=output_mean, output_max=output_max),
            batch_cap=batch_cap, num_layers=num_layers,
            kv_tile_rows=kv_tile_rows, eviction_policy=eviction_policy,
            seed=seed)
        for rate in rates
    }
    return Scenario(
        name="serve-overload",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        platforms={name: get_platform(name)
                   for name in ("sda", "sda-hbm-small")},
        seed=seed,
        description="overload ladder on unbounded vs capacity-bounded HBM",
    )


@register_scenario("serve-paged-vs-contiguous")
def serve_paged_vs_contiguous(model_scale: int = 32, arrival_rate: float = 300.0,
                              num_requests: int = 16, batch_cap: int = 4,
                              num_layers: int = 2,
                              prompt_mean: float = OVERLOAD_LENGTHS["prompt_mean"],
                              prompt_max: int = OVERLOAD_LENGTHS["prompt_max"],
                              output_mean: float = OVERLOAD_LENGTHS["output_mean"],
                              output_max: int = OVERLOAD_LENGTHS["output_max"],
                              kv_tile_rows: int = 64,
                              eviction_policy: str = "evict-lru",
                              seed: int = 0) -> Scenario:
    """Paged vs contiguous KV allocation on the capacity-bounded platform.

    Identical traffic, identical pool — only the allocation discipline
    differs.  Paged admits on *current* demand and pays for it with
    preemptions/recompute under pressure; contiguous reserves each request's
    lifetime maximum up front, never preempts, and pays instead with
    admission stalls and reserved-but-unused fragmentation.
    """
    from ..platforms import get_platform
    from .arrivals import poisson_trace
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    trace = poisson_trace(rate=arrival_rate, num_requests=num_requests,
                          seed=seed, prompt_mean=prompt_mean,
                          prompt_max=prompt_max, output_mean=output_mean,
                          output_max=output_max)
    workloads = {
        mode: ServeWorkload(model=model, trace=trace, batch_cap=batch_cap,
                            num_layers=num_layers, kv_tile_rows=kv_tile_rows,
                            kv_mode=mode, eviction_policy=eviction_policy,
                            seed=seed)
        for mode in ("paged", "contiguous")
    }
    return Scenario(
        name="serve-paged-vs-contiguous",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        platforms={"sda-hbm-small": get_platform("sda-hbm-small")},
        seed=seed,
        description="paged vs contiguous KV allocation under a tight HBM budget",
    )


@register_scenario("serve-policies")
def serve_policies(model_scale: int = 32, arrival_rate: float = 300.0,
                   num_requests: int = 16, batch_cap: int = 2,
                   num_layers: int = 2,
                   policies: Sequence[object] = (),
                   prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                   prompt_max: int = SMOKE_LENGTHS["prompt_max"],
                   output_mean: float = SMOKE_LENGTHS["output_mean"],
                   output_max: int = SMOKE_LENGTHS["output_max"],
                   kv_tile_rows: int = 128, seed: int = 0) -> Scenario:
    """One traffic trace under every registered scheduling-policy preset.

    Identical traffic, identical engine — only the scheduling discipline
    (admission × batching × priority) differs, via the scenario ``policies``
    axis.  The tight ``batch_cap`` keeps the waiting queue non-empty so
    admission order and preemption actually matter at smoke size.
    """
    from .arrivals import poisson_trace
    from .policy import policy_grid
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    trace = poisson_trace(rate=arrival_rate, num_requests=num_requests,
                          seed=seed, prompt_mean=prompt_mean,
                          prompt_max=prompt_max, output_mean=output_mean,
                          output_max=output_max)
    workload = ServeWorkload(model=model, trace=trace, batch_cap=batch_cap,
                             num_layers=num_layers, kv_tile_rows=kv_tile_rows,
                             seed=seed)
    return Scenario(
        name="serve-policies",
        workloads={"serve": workload},
        schedules=Schedule.dynamic(),
        policies=policy_grid(*policies),
        seed=seed,
        description="one trace under every scheduling-policy preset",
    )


@register_scenario("serve-diurnal")
def serve_diurnal(model_scale: int = 32, arrival_rate: float = 150.0,
                  amplitude: float = 0.8, period_mcycles: float = 0.25,
                  num_requests: int = 16, batch_cap: int = 4,
                  num_layers: int = 2,
                  prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                  prompt_max: int = SMOKE_LENGTHS["prompt_max"],
                  output_mean: float = SMOKE_LENGTHS["output_mean"],
                  output_max: int = SMOKE_LENGTHS["output_max"],
                  kv_tile_rows: int = 128, seed: int = 0) -> Scenario:
    """Diurnal (sinusoidal-rate) vs steady traffic at the same mean rate.

    The diurnal trace comes from the registered ``"diurnal"`` generator —
    a time-varying Poisson process realized by thinning — so peaks hit
    ``(1 + amplitude) x`` the mean rate.  The steady twin serves the same
    request budget at the flat mean, isolating what the swing itself costs.
    """
    from .generators import generate_trace
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    length_kwargs = dict(prompt_mean=prompt_mean, prompt_max=prompt_max,
                         output_mean=output_mean, output_max=output_max)
    workloads = {
        "steady": ServeWorkload(
            model=model,
            trace=generate_trace("poisson", rate=arrival_rate,
                                 num_requests=num_requests, seed=seed,
                                 **length_kwargs),
            batch_cap=batch_cap, num_layers=num_layers,
            kv_tile_rows=kv_tile_rows, seed=seed),
        "diurnal": ServeWorkload(
            model=model,
            trace=generate_trace("diurnal", rate=arrival_rate,
                                 num_requests=num_requests, seed=seed,
                                 amplitude=amplitude,
                                 period_mcycles=period_mcycles,
                                 **length_kwargs),
            batch_cap=batch_cap, num_layers=num_layers,
            kv_tile_rows=kv_tile_rows, seed=seed),
    }
    return Scenario(
        name="serve-diurnal",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        seed=seed,
        description="sinusoidal-rate vs steady traffic at equal mean load",
    )


@register_scenario("serve-multitenant")
def serve_multitenant(model_scale: int = 32, arrival_rate: float = 200.0,
                      num_requests: int = 18, batch_cap: int = 2,
                      num_layers: int = 2, kv_tile_rows: int = 128,
                      seed: int = 0) -> Scenario:
    """The default tenant blend under FIFO vs priority-class scheduling.

    The ``"multitenant"`` generator superposes interactive / batch /
    analytics Poisson processes (priority classes 0/1/2, each with its own
    length profile); the scenario's ``policies`` axis contrasts the default
    FIFO discipline with the priority-class policy, and the per-class report
    breakdowns (``per_priority``) show who pays the queueing.
    """
    from .generators import generate_trace
    from .policy import policy_grid
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    trace = generate_trace("multitenant", rate=arrival_rate,
                           num_requests=num_requests, seed=seed)
    workload = ServeWorkload(model=model, trace=trace, batch_cap=batch_cap,
                             num_layers=num_layers, kv_tile_rows=kv_tile_rows,
                             seed=seed)
    return Scenario(
        name="serve-multitenant",
        workloads={"blend": workload},
        schedules=Schedule.dynamic(),
        policies=policy_grid("default", "priority"),
        seed=seed,
        description="three-tenant blend under FIFO vs priority scheduling",
    )


@register_scenario("serve-streaming")
def serve_streaming(model_scale: int = 32, arrival_rate: float = 300.0,
                    num_requests: int = 48, batch_cap: int = 4,
                    num_layers: int = 2,
                    sketch_accuracy: float = 0.01,
                    window_cycles: float = 100_000.0,
                    prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                    prompt_max: int = SMOKE_LENGTHS["prompt_max"],
                    output_mean: float = SMOKE_LENGTHS["output_mean"],
                    output_max: int = SMOKE_LENGTHS["output_max"],
                    kv_tile_rows: int = 128, seed: int = 0,
                    modes: Sequence[str] = ("full", "streaming")) -> Scenario:
    """One heavy-tailed trace reported in full vs streaming mode.

    Both cells serve the identical trace; the only difference is the report
    representation.  Counts, cycle totals, queue-depth means and goodput
    match exactly; percentiles differ by at most the sketch's relative
    error.  ``modes`` picks the report cells — the bench suite's large-trace
    case (``serve-streaming-large``) keeps only ``"streaming"`` so its much
    bigger ``num_requests`` never materializes per-request records.
    """
    from .generators import generate_trace
    from .workload import ServeWorkload

    model = _serve_model(model_scale)
    trace = generate_trace("heavy-tail", rate=arrival_rate,
                           num_requests=num_requests, seed=seed,
                           prompt_mean=prompt_mean, prompt_max=prompt_max,
                           output_mean=output_mean, output_max=output_max)
    common = dict(model=model, trace=trace, batch_cap=batch_cap,
                  num_layers=num_layers, kv_tile_rows=kv_tile_rows, seed=seed)
    cells = {
        "full": lambda: ServeWorkload(report_mode="full", **common),
        "streaming": lambda: ServeWorkload(report_mode="streaming",
                                           sketch_accuracy=sketch_accuracy,
                                           window_cycles=window_cycles,
                                           **common),
    }
    unknown = [m for m in modes if m not in cells]
    if unknown or not modes:
        raise ConfigError(f"serve-streaming: modes must be a non-empty subset "
                          f"of {sorted(cells)}, got {tuple(modes)}")
    workloads = {mode: cells[mode]() for mode in modes}
    return Scenario(
        name="serve-streaming",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        seed=seed,
        description="full vs O(1)-memory streaming report on one trace",
    )


@register_scenario("fleet-grid")
def fleet_grid(model_scale: int = 32, rates: Sequence[float] = (160.0, 640.0),
               replicas: Sequence[int] = (1, 2),
               routings: Sequence[str] = ("round-robin", "least-loaded"),
               num_requests: int = 12, batch_cap: int = 2, num_layers: int = 2,
               warmup_cycles: float = 0.0,
               prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
               prompt_max: int = SMOKE_LENGTHS["prompt_max"],
               output_mean: float = SMOKE_LENGTHS["output_mean"],
               output_max: int = SMOKE_LENGTHS["output_max"],
               kv_tile_rows: int = 128, seed: int = 0) -> Scenario:
    """Fleet serving grid: replica counts × routing policies × arrival rates."""
    from .arrivals import poisson_trace
    from .fleet import FleetWorkload

    model = _serve_model(model_scale)
    workloads = {
        f"r{n}:{policy}:rate={rate:g}": FleetWorkload(
            model=model,
            trace=poisson_trace(rate=rate, num_requests=num_requests, seed=seed,
                                prompt_mean=prompt_mean, prompt_max=prompt_max,
                                output_mean=output_mean, output_max=output_max),
            num_replicas=n, routing=policy, warmup_cycles=warmup_cycles,
            batch_cap=batch_cap, num_layers=num_layers,
            kv_tile_rows=kv_tile_rows, seed=seed)
        for n in replicas for policy in routings for rate in rates
    }
    return Scenario(
        name="fleet-grid",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        seed=seed,
        description="multi-replica dispatch: replicas x routing x arrival rates",
    )


@register_scenario("fleet-autoscale")
def fleet_autoscale(model_scale: int = 32, arrival_rate: float = 640.0,
                    burst_size: int = 4, num_requests: int = 16,
                    batch_cap: int = 2, num_layers: int = 2,
                    max_replicas: int = 3, warmup_cycles: float = 50_000.0,
                    scale_up_depth: float = 3.0, scale_down_depth: float = 0.5,
                    cooldown_cycles: float = 50_000.0,
                    prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                    prompt_max: int = SMOKE_LENGTHS["prompt_max"],
                    output_mean: float = SMOKE_LENGTHS["output_mean"],
                    output_max: int = SMOKE_LENGTHS["output_max"],
                    kv_tile_rows: int = 128, seed: int = 0) -> Scenario:
    """Reactive autoscaling vs fixed fleets under the same bursty traffic."""
    from .arrivals import burst_trace
    from .fleet import AutoscalerConfig, FleetWorkload

    model = _serve_model(model_scale)
    trace = burst_trace(rate=arrival_rate, num_requests=num_requests,
                        burst_size=burst_size, seed=seed,
                        prompt_mean=prompt_mean, prompt_max=prompt_max,
                        output_mean=output_mean, output_max=output_max)
    common = dict(model=model, trace=trace, routing="least-loaded",
                  batch_cap=batch_cap, num_layers=num_layers,
                  kv_tile_rows=kv_tile_rows, seed=seed)
    autoscaler = AutoscalerConfig(
        min_replicas=1, max_replicas=max_replicas,
        scale_up_depth=scale_up_depth, scale_down_depth=scale_down_depth,
        cooldown_cycles=cooldown_cycles)
    workloads = {
        "fixed-min": FleetWorkload(num_replicas=1, warmup_cycles=warmup_cycles,
                                   **common),
        "fixed-max": FleetWorkload(num_replicas=max_replicas,
                                   warmup_cycles=warmup_cycles, **common),
        "autoscaled": FleetWorkload(num_replicas=1, warmup_cycles=warmup_cycles,
                                    autoscaler=autoscaler, **common),
    }
    return Scenario(
        name="fleet-autoscale",
        workloads=workloads,
        schedules=Schedule.dynamic(),
        seed=seed,
        description="reactive autoscaling vs fixed fleets under bursty load",
    )


@register_scenario("fleet-surrogate")
def fleet_surrogate(model_scale: int = 32, arrival_rate: float = 2000.0,
                    num_requests: int = 2000, num_replicas: int = 2,
                    routing: str = "least-loaded", batch_cap: int = 8,
                    num_layers: int = 2, engine: str = "surrogate",
                    cost_model: object = None, calibration_budget: int = 24,
                    window_cycles: float = 100_000.0,
                    prompt_mean: float = SMOKE_LENGTHS["prompt_mean"],
                    prompt_max: int = 384, output_mean: float = 8.0,
                    output_max: int = 24, kv_tile_rows: int = 64,
                    seed: int = 0) -> Scenario:
    """A fleet-scale heavy-tailed trace under the surrogate engine.

    The fast tier of the two-tier engine end to end: every replica costs its
    steps through the adaptive calibrated cost model (the first
    ``calibration_budget`` distinct signatures are simulated exactly, the
    rest predicted — see :mod:`repro.costmodel`) and reports through the
    O(1)-memory streaming path, so the trace size is bounded by neither
    per-request records nor per-signature simulation.  The length profile is
    deliberately *wide* (long prompt tail, fine KV tiling) — hundreds of
    distinct step signatures, the regime where the exact engine pays one
    full simulation per signature and the surrogate pays only its fixed
    probe budget.  Pass ``engine="exact"`` (and ``cost_model=None``) for
    the slow-tier twin of the same trace.
    """
    from .fleet import FleetWorkload
    from .generators import generate_trace

    model = _serve_model(model_scale)
    trace = generate_trace("heavy-tail", rate=arrival_rate,
                           num_requests=num_requests, seed=seed,
                           prompt_mean=prompt_mean, prompt_max=prompt_max,
                           output_mean=output_mean, output_max=output_max)
    workload = FleetWorkload(
        model=model, trace=trace, num_replicas=num_replicas, routing=routing,
        batch_cap=batch_cap, num_layers=num_layers, kv_tile_rows=kv_tile_rows,
        seed=seed, report_mode="streaming", window_cycles=window_cycles,
        engine=engine, cost_model=cost_model,
        calibration_budget=calibration_budget)
    return Scenario(
        name="fleet-surrogate",
        workloads={"fleet": workload},
        schedules=Schedule.dynamic(),
        seed=seed,
        description="fleet-scale heavy-tailed trace on the surrogate engine",
    )
