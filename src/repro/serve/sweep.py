"""Serving sweeps: the ``"serve"`` task and arrival-rate × batch-cap grids.

The scenario path (:class:`~repro.serve.workload.ServeWorkload` under the
generic ``"workload"`` task) covers grids whose points are pre-built workload
objects.  Load studies instead sweep *generator parameters* — the arrival rate
and the batch cap — so this module registers a dedicated ``"serve"`` sweep
task taking plain parameters and building the trace inside the worker, which
makes ``SweepSpec`` axes as simple as ``{"arrival_rate": [...],
"batch_cap": [...]}`` (cartesian load grids, cached and pool-parallel like
every other sweep).

:func:`latency_load_spec` is the canonical grid: one spec per
(schedule, model) pair, swept over arrival rates and batch caps.  The
``seed`` lives in ``base`` so every grid point serves the *same-seed* traffic
(rate changes the inter-arrival scale, not the random stream), which is what
makes a latency-vs-load curve comparable across its points.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.errors import ConfigError
from ..schedules import Schedule
from ..sim.executors.common import HardwareConfig
from ..sweep import SweepSpec, register_task
from ..workloads.configs import ModelConfig
from .arrivals import (DEFAULT_OUTPUT_MAX, DEFAULT_OUTPUT_MEAN,
                       DEFAULT_OUTPUT_SIGMA, DEFAULT_PROMPT_MAX,
                       DEFAULT_PROMPT_MEAN, DEFAULT_PROMPT_QUANTUM,
                       DEFAULT_PROMPT_SIGMA, poisson_trace)
from .scheduler import ServeConfig, simulate_serving

#: the per-point knobs ``latency_load_spec`` may forward beyond the grid axes
#: (everything the ``"serve"`` task accepts besides its required parameters)
_FORWARDABLE_KNOBS = frozenset({
    "kv_tile_rows", "prompt_mean", "prompt_sigma", "prompt_max",
    "prompt_quantum", "output_mean", "output_sigma", "output_max",
})


@register_task("serve")
def serve_point(model: ModelConfig, schedule: Schedule, hardware: HardwareConfig,
                arrival_rate: float, batch_cap: int, num_requests: int,
                seed: int = 0, num_layers: int = 2, kv_tile_rows: int = 64,
                prompt_mean: float = DEFAULT_PROMPT_MEAN,
                prompt_sigma: float = DEFAULT_PROMPT_SIGMA,
                prompt_max: int = DEFAULT_PROMPT_MAX,
                prompt_quantum: int = DEFAULT_PROMPT_QUANTUM,
                output_mean: float = DEFAULT_OUTPUT_MEAN,
                output_sigma: float = DEFAULT_OUTPUT_SIGMA,
                output_max: int = DEFAULT_OUTPUT_MAX) -> Dict[str, float]:
    """One serving design point: generate the trace, serve it, report metrics.

    The trace is rebuilt from its parameters inside the worker (nothing large
    crosses the pool boundary) — the signature accepts every
    :func:`~repro.serve.arrivals.poisson_trace` length knob so
    :func:`latency_load_spec` can forward them all — and the returned payload
    carries the swept coordinates alongside the serving metrics so result
    rows are self-describing.
    """
    trace = poisson_trace(rate=arrival_rate, num_requests=num_requests, seed=seed,
                          prompt_mean=prompt_mean, prompt_sigma=prompt_sigma,
                          prompt_max=prompt_max, prompt_quantum=prompt_quantum,
                          output_mean=output_mean, output_sigma=output_sigma,
                          output_max=output_max)
    config = ServeConfig(model=model, batch_cap=batch_cap, num_layers=num_layers,
                         kv_tile_rows=kv_tile_rows, seed=seed)
    report = simulate_serving(config, trace, schedule, hardware=hardware)
    return {"arrival_rate": float(arrival_rate), "batch_cap": float(batch_cap),
            **report.metrics()}


def latency_load_spec(model: ModelConfig, schedule: Schedule,
                      rates: Sequence[float], batch_caps: Sequence[int] = (8,),
                      num_requests: int = 32, seed: int = 0,
                      hardware: Optional[HardwareConfig] = None,
                      num_layers: int = 2, name: Optional[str] = None,
                      **trace_kwargs) -> SweepSpec:
    """An arrival-rate × batch-cap load grid as a cartesian :class:`SweepSpec`."""
    from ..workloads.configs import sda_hardware

    unknown = set(trace_kwargs) - _FORWARDABLE_KNOBS
    if unknown:
        raise ConfigError(f"latency_load_spec: unsupported trace parameters "
                          f"{sorted(unknown)}; forwardable: "
                          f"{sorted(_FORWARDABLE_KNOBS)}")
    base = {"model": model, "schedule": schedule,
            "hardware": hardware or sda_hardware(),
            "num_requests": num_requests, "seed": seed,
            "num_layers": num_layers, **trace_kwargs}
    return SweepSpec(
        name=name or f"serve-load-{schedule.name}",
        task="serve",
        base=base,
        axes={"arrival_rate": [float(r) for r in rates],
              "batch_cap": [int(c) for c in batch_caps]},
        mode="cartesian",
        seed=seed,
    )
