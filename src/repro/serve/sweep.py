"""Serving sweeps: the ``"serve"`` task and arrival-rate × batch-cap grids.

The scenario path (:class:`~repro.serve.workload.ServeWorkload` under the
generic ``"workload"`` task) covers grids whose points are pre-built workload
objects.  Load studies instead sweep *generator parameters* — the arrival rate
and the batch cap — so this module registers a dedicated ``"serve"`` sweep
task taking plain parameters and building the trace inside the worker, which
makes ``SweepSpec`` axes as simple as ``{"arrival_rate": [...],
"batch_cap": [...]}`` (cartesian load grids, cached and pool-parallel like
every other sweep).

Hardware arrives as a named :class:`~repro.platforms.Platform` (the
``platform`` parameter), resolved through the same single path as every other
subsystem, so serving load grids can sweep platforms exactly like scenarios
do and platform identity participates in every cache key.

Six grid builders:

* :func:`latency_load_spec` — one (schedule, model) pair swept over arrival
  rates and batch caps,
* :func:`serve_latency_spec` — the full latency-vs-load record: schedules ×
  arrival rates × batch caps in **one** cartesian spec, which is what the
  registered ``"serve-latency"`` experiment wraps (see
  :mod:`repro.experiments.serve_latency`),
* :func:`fleet_latency_spec` — the fleet-scale record over the ``"fleet"``
  task: replicas × routing policies × arrival rates in one cartesian spec
  (the ``"fleet-latency"`` experiment, see
  :mod:`repro.experiments.fleet_latency`),
* :func:`memory_pressure_spec` — HBM capacities × arrival rates with the
  *platform as a swept axis*: the goodput-cliff record behind the
  ``"memory-pressure"`` experiment (see
  :mod:`repro.experiments.memory_pressure`),
* :func:`policy_shootout_spec` — scheduling policies × platforms × arrival
  rates with a tail-TTFT SLO: the policy-comparison record behind the
  ``policy-shootout`` experiment (see
  :mod:`repro.experiments.policy_shootout`),
* :func:`capacity_spec` — platforms × arrival rates under a production-shaped
  registered trace generator and a TTFT SLO: the max-sustainable-rate record
  behind the ``capacity`` experiment (see :mod:`repro.experiments.capacity`).

The ``seed`` lives in ``base`` so every grid point serves the *same-seed*
traffic (rate changes the inter-arrival scale, not the random stream), which
is what makes a latency-vs-load curve comparable across its points.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..core.errors import ConfigError
from ..platforms import Platform, PlatformLike, resolve_platform
from ..schedules import Schedule
from ..sweep import SweepSpec, register_task
from ..workloads.configs import ModelConfig
from .arrivals import (DEFAULT_OUTPUT_MAX, DEFAULT_OUTPUT_MEAN,
                       DEFAULT_OUTPUT_SIGMA, DEFAULT_PROMPT_MAX,
                       DEFAULT_PROMPT_MEAN, DEFAULT_PROMPT_QUANTUM,
                       DEFAULT_PROMPT_SIGMA)
from .fleet import AutoscalerConfig, FleetConfig, simulate_fleet
from .generators import generate_trace
from .policy import ServePolicy, policy_grid, resolve_serve_policy
from .scheduler import ServeConfig, simulate_serving
from .streaming import DEFAULT_SKETCH_ACCURACY, DEFAULT_WINDOW_CYCLES

#: the per-point knobs the load-grid builders may forward beyond the grid axes
#: (everything the ``"serve"`` task accepts besides its required parameters)
_FORWARDABLE_KNOBS = frozenset({
    "kv_tile_rows", "prompt_mean", "prompt_sigma", "prompt_max",
    "prompt_quantum", "output_mean", "output_sigma", "output_max",
    "kv_mode", "eviction_policy", "ttft_slo", "policy",
    "generator", "report_mode", "window_cycles", "sketch_accuracy",
    "engine", "cost_model", "calibration_budget",
})


@register_task("serve")
def serve_point(model: ModelConfig, schedule: Schedule,
                arrival_rate: float, batch_cap: int, num_requests: int,
                platform: Optional[Platform] = None, hardware=None,
                seed: int = 0, num_layers: int = 2, kv_tile_rows: int = 64,
                prompt_mean: float = DEFAULT_PROMPT_MEAN,
                prompt_sigma: float = DEFAULT_PROMPT_SIGMA,
                prompt_max: int = DEFAULT_PROMPT_MAX,
                prompt_quantum: int = DEFAULT_PROMPT_QUANTUM,
                output_mean: float = DEFAULT_OUTPUT_MEAN,
                output_sigma: float = DEFAULT_OUTPUT_SIGMA,
                output_max: int = DEFAULT_OUTPUT_MAX,
                kv_mode: str = "paged",
                eviction_policy: str = "evict-lru",
                ttft_slo: Optional[float] = None,
                policy: Optional[ServePolicy] = None,
                generator: str = "poisson",
                report_mode: str = "full",
                window_cycles: float = DEFAULT_WINDOW_CYCLES,
                sketch_accuracy: float = DEFAULT_SKETCH_ACCURACY,
                engine: str = "exact",
                cost_model=None,
                calibration_budget: int = 64,
                ) -> Dict[str, float]:
    """One serving design point: generate the trace, serve it, report metrics.

    The trace is rebuilt from its parameters inside the worker (nothing large
    crosses the pool boundary) — the signature accepts every
    :func:`~repro.serve.arrivals.poisson_trace` length knob so the grid
    builders can forward them all — and the returned payload carries the
    swept coordinates alongside the serving metrics so result rows are
    self-describing.  ``hardware`` remains accepted for pre-platform specs.
    ``kv_mode`` / ``eviction_policy`` matter only on platforms with a finite
    ``hbm_capacity_bytes`` (see :mod:`repro.serve.memory`); a ``ttft_slo``
    (cycles) adds the strict-goodput view — ``slo_attainment`` and
    ``slo_goodput_rpmc`` — to the payload.  ``policy`` selects the scheduling
    discipline (a :class:`~repro.serve.policy.ServePolicy`, preset name or
    spec dict); it is a regular task parameter, so policy identity
    participates in the sweep cache key like every other knob.  ``generator``
    names the registered trace shape (:mod:`repro.serve.generators`) and
    ``report_mode`` / ``window_cycles`` / ``sketch_accuracy`` select the
    report representation (``"streaming"`` = O(1)-memory sketches, the mode
    for very large ``num_requests``).  ``engine`` / ``cost_model`` /
    ``calibration_budget`` select the costing tier (:mod:`repro.costmodel`;
    pass fitted models as instances or ``to_dict()`` payloads so the model's
    *content* — like every parameter here — is part of the cache key).
    """
    trace = generate_trace(generator, rate=arrival_rate,
                           num_requests=num_requests, seed=seed,
                           prompt_mean=prompt_mean, prompt_sigma=prompt_sigma,
                           prompt_max=prompt_max, prompt_quantum=prompt_quantum,
                           output_mean=output_mean, output_sigma=output_sigma,
                           output_max=output_max)
    policy = resolve_serve_policy(policy)
    config = ServeConfig(model=model, batch_cap=batch_cap, num_layers=num_layers,
                         kv_tile_rows=kv_tile_rows, seed=seed, kv_mode=kv_mode,
                         eviction_policy=eviction_policy, policy=policy,
                         report_mode=report_mode, window_cycles=window_cycles,
                         sketch_accuracy=sketch_accuracy, engine=engine,
                         cost_model=cost_model,
                         calibration_budget=calibration_budget)
    report = simulate_serving(config, trace, schedule,
                              hardware=hardware if hardware is not None else platform)
    payload = {"arrival_rate": float(arrival_rate), "batch_cap": float(batch_cap),
               "policy": policy.label, **report.metrics()}
    if ttft_slo is not None:
        payload["slo_attainment"] = float(report.slo_attainment(ttft_slo))
        payload["slo_goodput_rpmc"] = float(report.slo_goodput(ttft_slo))
    return payload


def _load_grid_base(model: ModelConfig, platform: PlatformLike, num_requests: int,
                    seed: int, num_layers: int,
                    trace_kwargs: Mapping[str, object]) -> Dict[str, object]:
    unknown = set(trace_kwargs) - _FORWARDABLE_KNOBS
    if unknown:
        raise ConfigError(f"serving load grid: unsupported trace parameters "
                          f"{sorted(unknown)}; forwardable: "
                          f"{sorted(_FORWARDABLE_KNOBS)}")
    return {"model": model, "platform": resolve_platform(platform),
            "num_requests": num_requests, "seed": seed,
            "num_layers": num_layers, **trace_kwargs}


def latency_load_spec(model: ModelConfig, schedule: Schedule,
                      rates: Sequence[float], batch_caps: Sequence[int] = (8,),
                      num_requests: int = 32, seed: int = 0,
                      hardware: PlatformLike = None,
                      num_layers: int = 2, name: Optional[str] = None,
                      **trace_kwargs) -> SweepSpec:
    """An arrival-rate × batch-cap load grid as a cartesian :class:`SweepSpec`."""
    base = _load_grid_base(model, hardware, num_requests, seed, num_layers,
                           trace_kwargs)
    base["schedule"] = schedule
    return SweepSpec(
        name=name or f"serve-load-{schedule.name}",
        task="serve",
        base=base,
        axes={"arrival_rate": [float(r) for r in rates],
              "batch_cap": [int(c) for c in batch_caps]},
        mode="cartesian",
        seed=seed,
    )


@register_task("fleet")
def fleet_point(model: ModelConfig, schedule: Schedule,
                arrival_rate: float, num_replicas: int, routing: str,
                batch_cap: int, num_requests: int,
                platform: Optional[Platform] = None, hardware=None,
                seed: int = 0, num_layers: int = 2, kv_tile_rows: int = 64,
                warmup_cycles: float = 0.0,
                autoscaler: Optional[AutoscalerConfig] = None,
                prompt_mean: float = DEFAULT_PROMPT_MEAN,
                prompt_sigma: float = DEFAULT_PROMPT_SIGMA,
                prompt_max: int = DEFAULT_PROMPT_MAX,
                prompt_quantum: int = DEFAULT_PROMPT_QUANTUM,
                output_mean: float = DEFAULT_OUTPUT_MEAN,
                output_sigma: float = DEFAULT_OUTPUT_SIGMA,
                output_max: int = DEFAULT_OUTPUT_MAX,
                kv_mode: str = "paged",
                eviction_policy: str = "evict-lru",
                policy: Optional[ServePolicy] = None,
                generator: str = "poisson",
                report_mode: str = "full",
                window_cycles: float = DEFAULT_WINDOW_CYCLES,
                sketch_accuracy: float = DEFAULT_SKETCH_ACCURACY,
                engine: str = "exact",
                cost_model=None,
                calibration_budget: int = 64,
                ) -> Dict[str, float]:
    """One fleet design point: generate the trace, serve it on N replicas.

    Mirrors :func:`serve_point` with the fleet axes on top — the trace is
    rebuilt inside the worker and the returned payload carries the swept
    coordinates (rate, replica count, routing policy) alongside the
    fleet metrics so result rows are self-describing.  ``policy`` is the
    per-replica scheduling discipline, shared by every replica;
    ``report_mode`` likewise rides the shared :class:`ServeConfig`, so a
    streaming fleet keeps per-replica sketches and merges them at
    aggregation time.
    """
    trace = generate_trace(generator, rate=arrival_rate,
                           num_requests=num_requests, seed=seed,
                           prompt_mean=prompt_mean, prompt_sigma=prompt_sigma,
                           prompt_max=prompt_max, prompt_quantum=prompt_quantum,
                           output_mean=output_mean, output_sigma=output_sigma,
                           output_max=output_max)
    policy = resolve_serve_policy(policy)
    serve = ServeConfig(model=model, batch_cap=batch_cap, num_layers=num_layers,
                        kv_tile_rows=kv_tile_rows, seed=seed, kv_mode=kv_mode,
                        eviction_policy=eviction_policy, policy=policy,
                        report_mode=report_mode, window_cycles=window_cycles,
                        sketch_accuracy=sketch_accuracy, engine=engine,
                        cost_model=cost_model,
                        calibration_budget=calibration_budget)
    config = FleetConfig(serve=serve, num_replicas=num_replicas, routing=routing,
                         warmup_cycles=warmup_cycles, autoscaler=autoscaler)
    report = simulate_fleet(config, trace, schedule,
                            hardware=hardware if hardware is not None else platform)
    return {"arrival_rate": float(arrival_rate),
            "num_replicas": float(num_replicas), "routing": routing,
            "policy": policy.label, **report.metrics()}


def fleet_latency_spec(model: ModelConfig, schedule: Schedule,
                       rates: Sequence[float],
                       num_replicas: Sequence[int] = (1, 2, 4),
                       routings: Sequence[str] = ("round-robin", "least-loaded",
                                                  "least-kv"),
                       batch_cap: int = 4, num_requests: int = 32, seed: int = 0,
                       platform: PlatformLike = None, num_layers: int = 2,
                       warmup_cycles: float = 0.0,
                       autoscaler: Optional[AutoscalerConfig] = None,
                       name: str = "fleet-latency",
                       **trace_kwargs) -> SweepSpec:
    """The fleet study as **one** cartesian spec over the ``"fleet"`` task.

    Axes are (replicas, routing, arrival rate), replica-major, so the grid
    row for replicas ``i``, routing ``j``, rate ``k`` sits at index
    ``(i * len(routings) + j) * len(rates) + k``.  Every point serves the
    *same-seed* traffic (the seed lives in ``base``), which is what makes the
    latency-vs-replicas curves comparable across their points.
    """
    if not rates:
        raise ConfigError("fleet_latency_spec: at least one arrival rate is required")
    base = _load_grid_base(model, platform, num_requests, seed, num_layers,
                           trace_kwargs)
    base.update({"schedule": schedule, "batch_cap": batch_cap,
                 "warmup_cycles": warmup_cycles, "autoscaler": autoscaler})
    return SweepSpec(
        name=name,
        task="fleet",
        base=base,
        axes={"num_replicas": [int(n) for n in num_replicas],
              "routing": list(routings),
              "arrival_rate": [float(r) for r in rates]},
        mode="cartesian",
        seed=seed,
    )


def memory_pressure_spec(model: ModelConfig, schedule: Schedule,
                         rates: Sequence[float],
                         platforms: Sequence[PlatformLike],
                         batch_cap: int = 4, num_requests: int = 32,
                         seed: int = 0, num_layers: int = 2,
                         name: str = "memory-pressure",
                         **trace_kwargs) -> SweepSpec:
    """Offered load × HBM capacity as **one** cartesian spec.

    Axes are (platform, arrival rate), platform-major, so the grid row for
    platform ``i``, rate ``j`` sits at index ``i * len(rates) + j``.  The
    platforms differ only in ``hbm_capacity_bytes`` in the intended use
    (:func:`repro.platforms.platform_grid` with ``hbm_capacities=...``), so
    the curves isolate pure capacity effects: an unbounded platform's goodput
    plateaus past saturation while a capacity-bounded one *declines* —
    admission stalls, preemptions and recompute eat the makespan (the goodput
    cliff the ``memory-pressure`` experiment pins).  ``kv_mode`` /
    ``eviction_policy`` forward through ``trace_kwargs``-style knobs.
    """
    if not rates:
        raise ConfigError("memory_pressure_spec: at least one arrival rate "
                          "is required")
    if not platforms:
        raise ConfigError("memory_pressure_spec: at least one platform "
                          "is required")
    base = _load_grid_base(model, None, num_requests, seed, num_layers,
                           trace_kwargs)
    del base["platform"]  # the platform is a swept axis here, not a base knob
    base.update({"schedule": schedule, "batch_cap": batch_cap})
    return SweepSpec(
        name=name,
        task="serve",
        base=base,
        axes={"platform": [resolve_platform(p) for p in platforms],
              "arrival_rate": [float(r) for r in rates]},
        mode="cartesian",
        seed=seed,
    )


def policy_shootout_spec(model: ModelConfig, schedule: Schedule,
                         rates: Sequence[float],
                         policies: Sequence[object] = (),
                         platforms: Sequence[PlatformLike] = (None,),
                         ttft_slo: float = 50_000.0,
                         batch_cap: int = 4, num_requests: int = 32,
                         seed: int = 0, num_layers: int = 2,
                         name: str = "policy-shootout",
                         **trace_kwargs) -> SweepSpec:
    """Scheduling policies × platforms × offered load as **one** cartesian spec.

    Axes are (policy, platform, arrival rate), policy-major, so the grid row
    for policy ``i``, platform ``j``, rate ``k`` sits at index
    ``(i * len(platforms) + j) * len(rates) + k``.  ``policies`` accepts
    anything :func:`~repro.serve.policy.policy_grid` does — preset names,
    :class:`~repro.serve.policy.ServePolicy` specs, or empty for every
    registered preset — and each policy is a regular axis value, so policy
    identity lands in every point's cache key.  Every point serves the
    *same-seed* traffic and reports ``slo_attainment`` /
    ``slo_goodput_rpmc`` against the shared ``ttft_slo`` (cycles), which is
    what makes tail-TTFT SLO attainment comparable across policies.
    """
    if not rates:
        raise ConfigError("policy_shootout_spec: at least one arrival rate "
                          "is required")
    if not platforms:
        raise ConfigError("policy_shootout_spec: at least one platform "
                          "is required")
    grid = policy_grid(*policies)
    base = _load_grid_base(model, None, num_requests, seed, num_layers,
                           trace_kwargs)
    del base["platform"]  # the platform is a swept axis here, not a base knob
    base.update({"schedule": schedule, "batch_cap": batch_cap,
                 "ttft_slo": float(ttft_slo)})
    return SweepSpec(
        name=name,
        task="serve",
        base=base,
        axes={"policy": list(grid.values()),
              "platform": [resolve_platform(p) for p in platforms],
              "arrival_rate": [float(r) for r in rates]},
        mode="cartesian",
        seed=seed,
    )


def capacity_spec(model: ModelConfig, schedule: Schedule,
                  rates: Sequence[float],
                  platforms: Sequence[PlatformLike],
                  ttft_slo: float = 150_000.0,
                  generator: str = "heavy-tail",
                  batch_cap: int = 4, num_requests: int = 32,
                  seed: int = 0, num_layers: int = 2,
                  report_mode: str = "full",
                  name: str = "capacity",
                  **trace_kwargs) -> SweepSpec:
    """Platforms × offered load under a production-shaped generator.

    Axes are (platform, arrival rate), platform-major, so the grid row for
    platform ``i``, rate ``j`` sits at index ``i * len(rates) + j`` — the
    record behind the ``capacity`` experiment, which walks each platform's
    rate curve for the highest rate whose ``slo_attainment`` still clears the
    target.  ``generator`` names any registered trace shape
    (:mod:`repro.serve.generators`); every point serves the *same-seed*
    traffic and reports against the shared ``ttft_slo``.
    """
    if not rates:
        raise ConfigError("capacity_spec: at least one arrival rate is required")
    if not platforms:
        raise ConfigError("capacity_spec: at least one platform is required")
    base = _load_grid_base(model, None, num_requests, seed, num_layers,
                           trace_kwargs)
    del base["platform"]  # the platform is a swept axis here, not a base knob
    base.update({"schedule": schedule, "batch_cap": batch_cap,
                 "ttft_slo": float(ttft_slo), "generator": generator,
                 "report_mode": report_mode})
    return SweepSpec(
        name=name,
        task="serve",
        base=base,
        axes={"platform": [resolve_platform(p) for p in platforms],
              "arrival_rate": [float(r) for r in rates]},
        mode="cartesian",
        seed=seed,
    )


def serve_latency_spec(model: ModelConfig, schedules: Mapping[str, Schedule],
                       rates: Sequence[float], batch_caps: Sequence[int] = (8,),
                       num_requests: int = 32, seed: int = 0,
                       platform: PlatformLike = None, num_layers: int = 2,
                       name: str = "serve-latency",
                       **trace_kwargs) -> SweepSpec:
    """The whole latency-vs-load study as **one** cartesian spec.

    Axes are (schedule, arrival rate, batch cap), schedule-major, so the grid
    row for schedule ``i``, rate ``j``, cap ``k`` sits at index
    ``(i * len(rates) + j) * len(batch_caps) + k``.  Every point is identical
    to the matching :func:`latency_load_spec` point (same task, same
    parameters — the spec name is excluded from cache keys), so the folded
    record shares cache entries with per-schedule grids.
    """
    if not schedules:
        raise ConfigError("serve_latency_spec: at least one schedule is required")
    base = _load_grid_base(model, platform, num_requests, seed, num_layers,
                           trace_kwargs)
    return SweepSpec(
        name=name,
        task="serve",
        base=base,
        axes={"schedule": list(schedules.values()),
              "arrival_rate": [float(r) for r in rates],
              "batch_cap": [int(c) for c in batch_caps]},
        mode="cartesian",
        seed=seed,
    )
