"""repro.serve — the request-level serving simulator.

Every other subsystem evaluates *closed-loop* scenarios: one layer invocation
at a fixed batch size.  This package models the paper's serving side — the
north star's "heavy traffic" — as an **open-loop** system: requests arrive
over time (:mod:`repro.serve.arrivals`), a continuous-batching scheduler
(:mod:`repro.serve.scheduler`) admits them into prefill/decode steps at
iteration granularity, every step is costed by simulating it as a
:class:`~repro.serve.workload.ServeStepWorkload` on the dataflow engine under
a unified :class:`~repro.schedules.Schedule`, and the run yields a
:class:`~repro.serve.report.ServingReport` with TTFT / TPOT / e2e latency
percentiles, goodput and a queue-depth timeline.

Entry points, highest level first:

* ``repro.api.serve(...)`` — one serving run, full report,
* the registered ``serve-*`` scenarios (:mod:`repro.serve.library`) — named
  grids runnable via ``repro.api.run("serve-poisson")``,
* :func:`~repro.serve.sweep.latency_load_spec` — arrival-rate × batch-cap
  grids on the sweep runner/cache (the ``"serve"`` task),
* :func:`~repro.serve.scheduler.simulate_serving` — the raw simulator.

Everything is deterministic: a trace is a pure function of its seed and a
report a pure function of (config, trace, schedule, hardware).
"""

from .arrivals import (MCYCLE, ArrivalTrace, Request, burst_trace, load_trace,
                       poisson_trace, save_trace, trace_from_lists)
from .report import (PERCENTILE_POINTS, RequestRecord, ServingReport, StepSample,
                     percentile, summarize)
from .workload import ServeStepWorkload, ServeWorkload
from .scheduler import ServeConfig, clear_step_cache, simulate_serving
from .sweep import latency_load_spec, serve_point
from . import library  # registers the serve-* scenarios  # noqa: F401

__all__ = [
    # arrivals
    "MCYCLE",
    "Request",
    "ArrivalTrace",
    "poisson_trace",
    "burst_trace",
    "trace_from_lists",
    "load_trace",
    "save_trace",
    # report
    "PERCENTILE_POINTS",
    "RequestRecord",
    "StepSample",
    "ServingReport",
    "percentile",
    "summarize",
    # workloads
    "ServeStepWorkload",
    "ServeWorkload",
    # scheduler
    "ServeConfig",
    "simulate_serving",
    "clear_step_cache",
    # sweeps
    "latency_load_spec",
    "serve_point",
]
