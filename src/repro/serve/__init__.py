"""repro.serve — the request-level serving simulator.

Every other subsystem evaluates *closed-loop* scenarios: one layer invocation
at a fixed batch size.  This package models the paper's serving side — the
north star's "heavy traffic" — as an **open-loop** system: requests arrive
over time (:mod:`repro.serve.arrivals`), a continuous-batching scheduler
(:mod:`repro.serve.scheduler`) admits them into prefill/decode steps at
iteration granularity, every step is costed by simulating it as a
:class:`~repro.serve.workload.ServeStepWorkload` on the dataflow engine under
a unified :class:`~repro.schedules.Schedule`, and the run yields a
:class:`~repro.serve.report.ServingReport` with TTFT / TPOT / e2e latency
percentiles, goodput and a queue-depth timeline.

Under a platform with finite ``hbm_capacity_bytes``, KV-cache bytes become a
schedulable resource (:mod:`repro.serve.memory`): a paged allocator
(:class:`~repro.serve.memory.KVPagePool`) backs memory-aware admission and
preemption-with-recompute in the engine, with pluggable eviction policies
(``evict-lru`` / ``evict-largest-kv`` / ``evict-youngest``) and a
:class:`~repro.serve.memory.MemoryStats` block on every report.  Unbounded
platforms (the default) skip all of it and stay bit-identical.

Scaling up, :mod:`repro.serve.fleet` runs N replicas behind a dispatcher:
pluggable routing policies (round-robin / least-loaded / least-kv /
most-free-kv), per-replica cold-start warm-up cost and a reactive queue-depth
autoscaler, reported as a :class:`~repro.serve.report.FleetReport` aggregating
the per-replica serving reports with fleet-level percentiles, utilization and
the scaling timeline.

Entry points, highest level first:

* ``repro.api.serve(...)`` / ``repro.api.serve_fleet(...)`` — one serving
  (or fleet) run, full report,
* the registered ``serve-*`` / ``fleet-*`` scenarios
  (:mod:`repro.serve.library`) — named grids runnable via
  ``repro.api.run("serve-poisson")`` / ``run("fleet-grid")``,
* :func:`~repro.serve.sweep.latency_load_spec` /
  :func:`~repro.serve.sweep.fleet_latency_spec` — load grids on the sweep
  runner/cache (the ``"serve"`` and ``"fleet"`` tasks),
* :func:`~repro.serve.scheduler.simulate_serving` /
  :func:`~repro.serve.fleet.simulate_fleet` — the raw simulators.

Everything is deterministic: a trace is a pure function of its seed and a
report a pure function of (config, trace, schedule, hardware).
"""

from .arrivals import (MCYCLE, TRACE_JSONL_VERSION, ArrivalTrace, Request,
                       burst_trace, iter_trace_jsonl, load_trace,
                       load_trace_jsonl, poisson_trace, save_trace,
                       save_trace_jsonl, trace_from_lists)
from .generators import (GENERATORS, generate_trace, generator_names,
                         get_generator, register_generator)
from .streaming import (DEFAULT_SKETCH_ACCURACY, DEFAULT_WINDOW_CYCLES,
                        REPORT_MODES, QuantileSketch, StreamingStats,
                        WindowedTimeline)
from .registry import (builtin_names, is_builtin, registered_names,
                       registry_kinds, resolve_registered)
from .policy import (ADMISSION_POLICIES, BATCHING_POLICIES, DEFAULT_POLICY,
                     PRIORITY_POLICIES, SERVE_POLICIES, AdmissionPolicy,
                     BatchingPolicy, PriorityPolicy, ServePolicy,
                     admission_policy_names, batching_policy_names,
                     get_serve_policy, policy_grid, priority_policy_names,
                     register_admission_policy, register_batching_policy,
                     register_priority_policy, register_serve_policy,
                     resolve_serve_policy, serve_policy_names)
from .report import (PERCENTILE_POINTS, FleetReport, ReplicaReport,
                     RequestRecord, ScalingEvent, ServingReport, StepSample,
                     percentile, priority_breakdown, summarize)
from .workload import ServeStepWorkload, ServeWorkload
from .memory import (EVICTION_POLICIES, KV_MODES, EvictionPolicy, KVPagePool,
                     MemoryStats, eviction_policy_names, get_eviction_policy,
                     kv_bytes_per_row, register_eviction_policy)
from .scheduler import (ReplicaEngine, ServeConfig, StepMemo, clear_step_cache,
                        simulate_serving, step_cache_stats)
from .fleet import (AutoscalerConfig, FleetConfig, FleetWorkload, RoutingPolicy,
                    get_routing_policy, register_routing_policy,
                    routing_policy_names, simulate_fleet)
from .sweep import (capacity_spec, fleet_latency_spec, fleet_point,
                    latency_load_spec, memory_pressure_spec,
                    policy_shootout_spec, serve_point)
from . import library  # registers the serve-* / fleet-* scenarios  # noqa: F401

__all__ = [
    # arrivals
    "MCYCLE",
    "Request",
    "ArrivalTrace",
    "poisson_trace",
    "burst_trace",
    "trace_from_lists",
    "load_trace",
    "save_trace",
    "TRACE_JSONL_VERSION",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "iter_trace_jsonl",
    # generators
    "GENERATORS",
    "register_generator",
    "get_generator",
    "generator_names",
    "generate_trace",
    # streaming analytics
    "REPORT_MODES",
    "DEFAULT_SKETCH_ACCURACY",
    "DEFAULT_WINDOW_CYCLES",
    "QuantileSketch",
    "WindowedTimeline",
    "StreamingStats",
    # report
    "PERCENTILE_POINTS",
    "RequestRecord",
    "StepSample",
    "ServingReport",
    "FleetReport",
    "ReplicaReport",
    "ScalingEvent",
    "percentile",
    "summarize",
    "priority_breakdown",
    # registries (shared index)
    "resolve_registered",
    "registered_names",
    "registry_kinds",
    "builtin_names",
    "is_builtin",
    # scheduling policies
    "ServePolicy",
    "DEFAULT_POLICY",
    "AdmissionPolicy",
    "BatchingPolicy",
    "PriorityPolicy",
    "ADMISSION_POLICIES",
    "BATCHING_POLICIES",
    "PRIORITY_POLICIES",
    "SERVE_POLICIES",
    "register_admission_policy",
    "register_batching_policy",
    "register_priority_policy",
    "register_serve_policy",
    "admission_policy_names",
    "batching_policy_names",
    "priority_policy_names",
    "serve_policy_names",
    "get_serve_policy",
    "resolve_serve_policy",
    "policy_grid",
    # workloads
    "ServeStepWorkload",
    "ServeWorkload",
    "FleetWorkload",
    # memory
    "KV_MODES",
    "KVPagePool",
    "MemoryStats",
    "kv_bytes_per_row",
    "EvictionPolicy",
    "EVICTION_POLICIES",
    "register_eviction_policy",
    "get_eviction_policy",
    "eviction_policy_names",
    # scheduler
    "ServeConfig",
    "ReplicaEngine",
    "StepMemo",
    "simulate_serving",
    "clear_step_cache",
    "step_cache_stats",
    # fleet
    "AutoscalerConfig",
    "FleetConfig",
    "RoutingPolicy",
    "simulate_fleet",
    "register_routing_policy",
    "get_routing_policy",
    "routing_policy_names",
    # sweeps
    "latency_load_spec",
    "serve_point",
    "fleet_latency_spec",
    "fleet_point",
    "memory_pressure_spec",
    "policy_shootout_spec",
    "capacity_spec",
]
