"""The continuous-batching serving scheduler (Orca-style iteration scheduling).

:class:`ReplicaEngine` is the unit of serving capacity: one continuous-batching
server that can be **stepped incrementally** — submit requests, advance its
clock, step it, drain it — which is what lets :mod:`repro.serve.fleet` run N
replicas side by side behind a dispatcher.  :func:`simulate_serving` drives an
open-loop :class:`~repro.serve.arrivals.ArrivalTrace` through a single engine:

* requests wait in a **queue** until the admission policy moves them into the
  running batch (at most ``batch_cap`` requests); admission happens at *step*
  granularity, exactly like iteration-level scheduling in Orca / vLLM,
* the batching policy plans each step — which runners participate and how
  many context tokens each contributes.  Under the default Orca plan a newly
  admitted request's first step is its **prefill** (the whole prompt joins
  the step's token batch and the step emits the request's first output
  token); chunked prefill spreads that context over several steps,
* every decode step produces one token per participating request against its
  grown KV cache, until ``output_tokens`` tokens have been produced,
* each step's latency comes from simulating the step as a
  :class:`~repro.serve.workload.ServeStepWorkload` under the run's unified
  :class:`~repro.schedules.Schedule` — so batching pressure, KV-length skew
  and the schedule's tiling/parallelization choices all shape the serving
  latencies through the same dataflow engine as the closed-loop experiments.

**Scheduling policies.**  The scheduling discipline is pluggable: a
:class:`~repro.serve.policy.ServePolicy` on :class:`ServeConfig` names one
admission policy (who joins the batch, and whether urgent arrivals preempt
runners), one batching policy (the per-step plan) and one priority-assignment
policy (each request's class at submit time) from the registries in
:mod:`repro.serve.policy`.  The default spec reproduces the historical
hard-coded scheduler bit-identically (pinned in tier-1): FIFO admission,
Orca-continuous batching, trace-assigned priorities.

Step costs are memoized on a *step signature*: the token-batch size plus the
multiset of per-request KV lengths, quantized up to ``kv_tile_rows`` (the
granularity at which the simulator tiles KV anyway).  Decode steps change
signature only every ``kv_tile_rows`` generated tokens, so a serving run
simulates a handful of distinct steps while replaying hundreds — and the
memoization is invisible in the results: the report is a pure function of
``(config, trace, schedule, hardware)``, bit-identical across runs.  The memo
is **bounded** (:class:`StepMemo`): fleet sweeps over replicas × rates ×
policies touch many distinct contexts, so the process-wide cache caps its
entry count and evicts least-recently-used entries deterministically;
:func:`step_cache_stats` exposes hit/miss/eviction counters for debugging
(and every :meth:`~repro.serve.report.ServingReport.to_dict` snapshots them
under ``"step_cache"``, so memoization efficacy is observable in sweeps).

**Two-tier costing.**  ``ServeConfig(engine="surrogate", cost_model=...)``
swaps the per-step simulation for a cost model from :mod:`repro.costmodel`
(exact delegate, interpolated table, or calibrated least-squares fit —
including per-run adaptive calibration when ``cost_model`` is ``None``).
Scheduling is untouched: admission, batching, memory pressure and
preemption all run identically, only the latency each step charges comes
from the model, within the documented error bound
(:data:`repro.costmodel.SURROGATE_TOLERANCE`, pinned in tier-1).

**Memory pressure.**  When the resolved platform sets a finite
``hbm_capacity_bytes``, the engine owns a :class:`~repro.serve.memory.
KVPagePool` and KV pages become a second admission constraint next to
``batch_cap``:

* a queued request is admitted only when its KV fits *now* (its prompt —
  plus any evicted-and-recomputed tokens — plus one row for the token the
  step will emit; the contiguous mode reserves the lifetime maximum
  instead).  A selected request that does not fit stalls admission (counted
  as an ``admission_stall``) rather than being overtaken,
* before each step is costed, every *plan participant* secures room for the
  rows it is about to write.  A paged growth that finds the pool full
  triggers **preemption**: the configured eviction policy
  (:data:`~repro.serve.memory.EVICTION_POLICIES` — ``evict-lru`` /
  ``evict-largest-kv`` / ``evict-youngest``) picks a victim among the
  not-yet-secured runners, whose pages are freed and who returns to the
  *front* of the queue.  On re-admission its prefill re-processes prompt
  **and** previously generated tokens (vLLM-style recompute), which is the
  modeled cost of eviction,
* ``submit`` rejects a request whose lifetime KV could never fit the pool
  (that plus first-secured-wins growth guarantees every step keeps at
  least one participant, so ``drain`` always terminates).

With ``hbm_capacity_bytes=None`` (every platform predating the memory
subsystem) no pool exists and the engine is bit-identical to the pre-memory
scheduler.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..core.errors import ConfigError
from ..platforms import PlatformLike, resolve_platform
from ..schedules import Schedule
from ..sim.executors.common import HardwareConfig
from ..sweep.cache import stable_hash
from ..workloads.configs import ModelConfig
from .arrivals import ArrivalTrace, Request, quantize_up
from .memory import (EVICTION_POLICIES, KV_MODES, EvictionPolicy, KVPagePool,
                     MemoryStats, eviction_policy_names, get_eviction_policy,
                     kv_bytes_per_row)
from .policy import (DEFAULT_POLICY, AdmissionPolicy, BatchingPolicy,
                     PriorityPolicy, ServePolicy)
from .registry import resolve_registered
from .report import RequestRecord, ServingReport, StepSample
from .streaming import (DEFAULT_SKETCH_ACCURACY, DEFAULT_WINDOW_CYCLES,
                        StreamingStats, make_streaming_stats,
                        resolve_report_mode)
from .workload import ServeStepWorkload

#: how a step's latency is produced: ``"exact"`` simulates every distinct
#: step through the event engine (the historical path), ``"surrogate"``
#: costs steps through the resolved ``cost_model`` (:mod:`repro.costmodel`)
ENGINE_MODES = ("exact", "surrogate")

#: entry cap of the process-wide step-cost memo.  Each entry is one simulated
#: step cost (a float keyed by context + signature); the cap bounds a fleet
#: sweep's footprint while staying far above what any single run touches.
STEP_MEMO_MAXSIZE = 8192


class StepMemo:
    """A bounded step-cost memo with deterministic LRU eviction.

    ``get``/``put`` maintain least-recently-used order, so the eviction
    sequence is a pure function of the access sequence — two processes
    replaying the same runs evict identically.  Eviction only ever costs a
    re-simulation (results are memo-independent), never correctness; the
    hit/miss/eviction counters exist to make that trade-off observable.
    """

    def __init__(self, maxsize: int = STEP_MEMO_MAXSIZE) -> None:
        if maxsize < 1:
            raise ConfigError(f"StepMemo maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, Tuple], float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[str, Tuple]) -> Optional[float]:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Tuple[str, Tuple], value: float) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (counters included); returns the entry count."""
        count = len(self._entries)
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0
        return count

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._entries), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


#: (context key, step signature) -> step cycles, shared within the process so
#: sweep points over the same model/schedule reuse each other's steps
_STEP_MEMO = StepMemo()


def clear_step_cache() -> int:
    """Drop the in-process step-cost memo (returns the number of entries)."""
    return _STEP_MEMO.clear()


def step_cache_stats() -> Dict[str, int]:
    """Size/hit/miss/eviction counters of the process-wide step memo."""
    return _STEP_MEMO.stats()


@dataclass(frozen=True)
class ServeConfig:
    """Server-side configuration of a serving run (the trace is separate)."""

    model: ModelConfig
    #: maximum concurrently running requests per step (continuous batch size)
    batch_cap: int = 8
    #: decoder layers each step executes (latency multiplier, cf. Figure 17)
    num_layers: int = 2
    kv_tile_rows: int = 64
    moe_compute_bw: int = 8192
    attention_compute_bw: int = 256
    #: seeds the per-step MoE routing
    seed: int = 0
    #: KV allocation discipline under a finite platform ("paged"/"contiguous");
    #: inert when the platform's hbm_capacity_bytes is None
    kv_mode: str = "paged"
    #: registered eviction policy deciding whom to preempt under pressure
    eviction_policy: str = "evict-lru"
    #: the scheduling discipline (admission × batching × priority); None
    #: normalizes to the default policy, the historical scheduler exactly
    policy: Optional[ServePolicy] = None
    #: ``"full"`` keeps every request record and step sample (the historical
    #: behavior, bit-identical); ``"streaming"`` folds them into O(1)-memory
    #: sketches and windows (:mod:`repro.serve.streaming`) as the run goes
    report_mode: str = "full"
    #: width of the streaming timeline's aggregation windows, in cycles
    window_cycles: float = DEFAULT_WINDOW_CYCLES
    #: relative error bound of the streaming percentile sketches
    sketch_accuracy: float = DEFAULT_SKETCH_ACCURACY
    #: ``"exact"`` simulates every distinct step through the event engine
    #: (bit-identical to the historical scheduler); ``"surrogate"`` costs
    #: steps through ``cost_model`` — scheduling, admission, batching and
    #: memory pressure are unchanged, only the latency source differs
    engine: str = "exact"
    #: under ``engine="surrogate"``: a registered cost-model kind ("exact" /
    #: "table" / "calibrated"), a fitted :class:`~repro.costmodel.models.
    #: CostModel` artifact, or its ``to_dict()`` payload.  ``None`` means
    #: ``"calibrated"`` — per-run adaptive calibration against the exact
    #: engine.  Must stay ``None`` under ``engine="exact"``.
    cost_model: Optional[object] = None
    #: distinct step signatures an adaptive surrogate probes through the
    #: exact engine (per replica run) before fitting itself
    calibration_budget: int = 64

    def __post_init__(self) -> None:
        if self.batch_cap < 1:
            raise ConfigError(f"batch_cap must be >= 1, got {self.batch_cap}")
        if self.num_layers < 1:
            raise ConfigError(f"num_layers must be >= 1, got {self.num_layers}")
        resolve_report_mode(self.report_mode)
        if self.window_cycles <= 0:
            raise ConfigError(f"window_cycles must be > 0, "
                              f"got {self.window_cycles}")
        if not 0.0 < self.sketch_accuracy < 1.0:
            raise ConfigError(f"sketch_accuracy must be in (0, 1), "
                              f"got {self.sketch_accuracy}")
        if self.kv_mode not in KV_MODES:
            raise ConfigError(f"unknown kv_mode {self.kv_mode!r}; "
                              f"expected one of {list(KV_MODES)}")
        if self.eviction_policy not in EVICTION_POLICIES:
            raise ConfigError(f"unknown eviction policy {self.eviction_policy!r}; "
                              f"registered: {eviction_policy_names()}")
        if self.policy is None:
            object.__setattr__(self, "policy", DEFAULT_POLICY)
        elif not isinstance(self.policy, ServePolicy):
            raise ConfigError(f"policy must be a ServePolicy (resolve names "
                              f"via resolve_serve_policy), got "
                              f"{type(self.policy).__name__!r}")
        if self.engine not in ENGINE_MODES:
            raise ConfigError(f"unknown engine {self.engine!r}; "
                              f"expected one of {list(ENGINE_MODES)}")
        if self.calibration_budget < 1:
            raise ConfigError(f"calibration_budget must be >= 1 (an empty "
                              f"probe budget cannot calibrate a surrogate), "
                              f"got {self.calibration_budget}")
        if self.engine == "exact":
            if self.cost_model is not None:
                raise ConfigError("cost_model requires engine='surrogate'; "
                                  "the exact engine always simulates steps")
        else:
            # deferred import: repro.costmodel builds on the serve package
            from ..costmodel.models import resolve_cost_model
            object.__setattr__(self, "cost_model",
                               resolve_cost_model(self.cost_model))


@dataclass
class _Active:
    """A request in the running batch (or re-queued after preemption)."""

    request: Request
    #: output tokens produced so far (0 = the prefill phase is still ahead)
    generated: int = 0
    first_token: float = 0.0
    #: the engine must (re-)process the full context before decoding: true
    #: for fresh requests and again after a preemption evicted the KV
    needs_prefill: bool = True
    #: clock of the latest (re-)admission — the eviction policies' age signal
    admitted_at: float = 0.0
    #: priority class assigned at submit (0 = most urgent)
    priority: int = 0
    #: context tokens already prefilled since the last (re-)admission —
    #: only chunked batching leaves this mid-way between steps
    context_done: int = 0

    @property
    def kv_length(self) -> int:
        """Current KV-cache length: the prompt plus every generated token."""
        return self.request.prompt_tokens + self.generated


def _context_key(config: ServeConfig, schedule: Schedule,
                 hardware: HardwareConfig) -> str:
    """The memo context: exactly the inputs that determine a step's cost.

    Deliberately excludes ``batch_cap``, ``kv_mode``, ``eviction_policy`` and
    the whole ``policy`` spec (and the platform's HBM capacity) — they shape
    *which* steps occur, never what one costs — so capacity/policy sweep
    points share each other's steps.
    """
    return stable_hash({
        "model": config.model,
        "num_layers": config.num_layers,
        "kv_tile_rows": config.kv_tile_rows,
        "moe_compute_bw": config.moe_compute_bw,
        "attention_compute_bw": config.attention_compute_bw,
        "seed": config.seed,
        "schedule": schedule,
        "hardware": hardware,
    })


def _step_cycles(config: ServeConfig, schedule: Schedule, hardware: HardwareConfig,
                 context: str, num_tokens: int, kv_lengths: Tuple[int, ...],
                 fresh: Dict[Tuple, float]) -> float:
    signature = (num_tokens, kv_lengths)
    key = (context, signature)
    cycles = _STEP_MEMO.get(key)
    if cycles is None:
        # routing depends only on the token count (plus the run seed), so
        # steps with equal signatures are the same simulation
        routing_seed = (config.seed * 1_000_003 + num_tokens) & 0x7FFFFFFF
        step = ServeStepWorkload(
            model=config.model, num_tokens=num_tokens, kv_lengths=kv_lengths,
            routing_seed=routing_seed, num_layers=config.num_layers,
            kv_tile_rows=config.kv_tile_rows,
            moe_compute_bw=config.moe_compute_bw,
            attention_compute_bw=config.attention_compute_bw)
        cycles = step.run(schedule, hardware)["cycles"]
        _STEP_MEMO.put(key, cycles)
    fresh[signature] = cycles
    return cycles


#: one step's plan: (runner, tokens-it-contributes) per participant
StepPlan = List[Tuple[_Active, int]]


class ReplicaEngine:
    """One continuous-batching server, steppable from the outside.

    The engine owns a clock (``now``, in cycles), a waiting queue, the
    running batch and the records/steps it has produced.  A driver — the
    single-engine :func:`simulate_serving` loop or the fleet dispatcher in
    :mod:`repro.serve.fleet` — feeds it requests with :meth:`submit` and moves
    time with :meth:`advance_to` / :meth:`step` / :meth:`drain`.

    The contract with the driver: a request must be submitted before the
    engine is stepped past its arrival (submit at arrival time, after
    ``advance_to(arrival)``).  Under that contract the engine reproduces the
    classic single-loop scheduler exactly: a request joins the first step
    whose start is at or after its arrival, and an idle engine's clock jumps
    to the earliest queued arrival instead of spinning.

    Each step runs three policy hooks from ``config.policy``: admission
    (:meth:`_admit` — possibly preempting runners for urgent arrivals),
    batching (the step plan) and, at :meth:`submit`, priority assignment.

    ``warmup_cycles`` models cold-start cost: the engine's first step ever is
    preceded by a one-time clock penalty (weights loading, compilation —
    whatever makes a freshly spawned replica slow).  Zero keeps the engine
    bit-identical to the pre-fleet scheduler.
    """

    def __init__(self, config: ServeConfig, schedule: Optional[Schedule] = None,
                 hardware: PlatformLike = None, *, warmup_cycles: float = 0.0,
                 start_cycle: float = 0.0, replica_id: int = 0) -> None:
        if warmup_cycles < 0:
            raise ConfigError(f"warmup_cycles must be >= 0, got {warmup_cycles}")
        self.config = config
        self.schedule = schedule or Schedule.dynamic()
        self.platform = resolve_platform(hardware)
        self.hardware = self.platform.hardware
        self.warmup_cycles = float(warmup_cycles)
        self.replica_id = replica_id
        self.spawned_at = float(start_cycle)
        self.now = float(start_cycle)
        self._context = _context_key(config, self.schedule, self.hardware)
        # surrogate engine: steps are costed by the bound cost model instead
        # of _step_cycles; None keeps the exact path byte-for-byte untouched
        self._cost_fn = None
        if config.engine == "surrogate":
            from ..costmodel.runtime import bind_cost_model
            self._cost_fn = bind_cost_model(config, self.schedule,
                                            self.hardware, self._context)
        policy = config.policy
        self._admission: AdmissionPolicy = \
            resolve_registered("admission", policy.admission)(policy)
        self._batching: BatchingPolicy = \
            resolve_registered("batching", policy.batching)(policy)
        self._priority: PriorityPolicy = \
            resolve_registered("priority", policy.priority)(policy)
        self._waiting: Deque[_Active] = deque()
        self._running: List[_Active] = []
        self._records: List[RequestRecord] = []
        self._steps: List[StepSample] = []
        self._signatures: Dict[Tuple, float] = {}
        self._busy_cycles = 0.0
        # streaming mode folds records/steps into sketches instead of lists
        self._stream: Optional[StreamingStats] = (
            make_streaming_stats(config.sketch_accuracy, config.window_cycles)
            if config.report_mode == "streaming" else None)
        self._warmed = self.warmup_cycles == 0.0
        # -- finite KV memory (None capacity = unbounded, the legacy path) -----------
        self._pool: Optional[KVPagePool] = None
        self._evictor: Optional[EvictionPolicy] = None
        self._row_bytes = kv_bytes_per_row(config.model, config.num_layers)
        if self.platform.hbm_capacity_bytes is not None:
            self._pool = KVPagePool.from_bytes(
                self.platform.hbm_capacity_bytes, config.kv_tile_rows,
                self._row_bytes, mode=config.kv_mode)
            self._evictor = get_eviction_policy(config.eviction_policy)
        self._preemptions = 0
        self._recompute_tokens = 0
        self._admission_stalls = 0
        # running accumulators (sum in observation order == summing the old
        # per-step lists, so the MemoryStats means stay bit-identical)
        self._occ_samples = 0
        self._occ_sum = 0.0
        self._occ_max = 0.0
        self._frag_sum = 0.0
        self._frag_max = 0.0

    # -- dispatcher-visible state ----------------------------------------------------
    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    @property
    def queue_depth(self) -> int:
        """Requests on this replica (waiting + running) — the load signal."""
        return len(self._waiting) + len(self._running)

    @property
    def queued(self) -> int:
        return len(self._waiting)

    @property
    def kv_load(self) -> int:
        """Aggregate KV footprint in rows, quantized up to ``kv_tile_rows``.

        Running requests contribute their current KV length, waiting ones the
        context their next (pre)fill step will materialize; each is rounded up
        to the tile granularity the simulator allocates at — this is the exact
        signal the ``least-kv`` fleet routing policy compares.
        """
        tile = self.config.kv_tile_rows
        return (sum(quantize_up(a.kv_length, tile) for a in self._running)
                + sum(quantize_up(w.kv_length, tile) for w in self._waiting))

    @property
    def free_kv_pages(self) -> float:
        """Unreserved KV pages; ``inf`` when the platform's HBM is unbounded.

        The ``most-free-kv`` fleet routing policy ranks replicas on this, so
        an unbounded replica (never under pressure) sorts ahead of any
        capacity-bounded one.
        """
        if self._pool is None:
            return float("inf")
        return float(self._pool.free_pages)

    @property
    def steps(self) -> Tuple[StepSample, ...]:
        return tuple(self._steps)

    @property
    def busy_cycles(self) -> float:
        return self._busy_cycles

    # -- driving ---------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request.  Call at arrival time — see the contract.

        The priority policy assigns the request's class here (the trace's
        own class under the default policy).  Under a finite platform a
        request whose *lifetime* KV (prompt plus every output token) exceeds
        the whole pool is rejected up front: it could never be scheduled,
        and admitting it would livelock the queue.
        """
        if self._pool is not None:
            max_rows = request.prompt_tokens + request.output_tokens
            if not self._pool.fits_lifetime(max_rows):
                raise ConfigError(
                    f"request {request.request_id} needs "
                    f"{self._pool.pages_for(max_rows)} KV pages for its "
                    f"lifetime but the pool holds {self._pool.capacity_pages} "
                    f"(hbm_capacity_bytes is too small for this trace)")
        self._waiting.append(
            _Active(request, priority=self._priority.assign(request)))

    # -- memory pressure -------------------------------------------------------------
    def _preempt(self, active: _Active) -> None:
        """Evict a running request: free its KV, re-queue it at the front.

        The request keeps its ``generated`` count (and its first-token time
        if already delivered); what it loses is its KV and any partial
        prefill progress — on re-admission the prefill re-processes prompt +
        generated tokens, which is where the recompute cost lands.  Used both
        by KV pressure (:meth:`_secure_kv`) and by preemptive admission
        policies, so it tolerates a pool-less engine.
        """
        if self._pool is not None:
            self._pool.release(active.request.request_id)
        self._preemptions += 1
        active.needs_prefill = True
        active.context_done = 0
        self._waiting.appendleft(active)

    def _try_admit_at(self, idx: int) -> bool:
        """Admit the waiting request at ``idx``; False = it stalled on KV."""
        head = self._waiting[idx]
        if self._pool is not None:
            # the steps a request joins must hold its current context plus
            # the one token it emits; contiguous mode books the lifetime
            max_rows = head.request.prompt_tokens + head.request.output_tokens
            if not self._pool.try_admit(head.request.request_id,
                                        head.kv_length + 1, max_rows):
                self._admission_stalls += 1
                return False
        if head.generated:
            # re-admission after preemption: the evicted tokens are
            # recomputed by the upcoming (re-)prefill
            self._recompute_tokens += head.generated
        head.admitted_at = self.now
        del self._waiting[idx]
        self._running.append(head)
        return True

    def _admit(self) -> None:
        """Move queued requests into the running batch (admission policy).

        The policy picks who joins next (strict FIFO by default — no
        overtaking, so a blocked head stalls the whole queue rather than
        starving large requests forever); a pick that does not fit in KV
        stalls admission, counted once per step.  A *preemptive* policy then
        gets to evict later-deadline runners for more urgent arrivals; each
        swap strictly tightens the running batch, so the loop terminates.
        """
        while len(self._running) < self.config.batch_cap:
            idx = self._admission.select(self._waiting, self.now)
            if idx is None or not self._try_admit_at(idx):
                break
        if not (self._admission.preemptive and self._waiting
                and len(self._running) >= self.config.batch_cap):
            return
        while True:
            idx = self._admission.select(self._waiting, self.now)
            if idx is None:
                break
            victim = self._admission.preempt_victim(self._running,
                                                    self._waiting[idx])
            if victim is None:
                break
            self._preempt(victim)  # appendleft shifts queue indices:
            self._running.remove(victim)  # re-select before admitting
            idx = self._admission.select(self._waiting, self.now)
            if idx is None or not self._try_admit_at(idx):
                break
            if len(self._running) < self.config.batch_cap or not self._waiting:
                break

    def _secure_kv(self, plan: StepPlan) -> StepPlan:
        """Guarantee every plan participant room for the rows it will write.

        Participants are processed in plan order; a paged growth that finds
        the pool full preempts a victim — chosen by the eviction policy among
        the not-yet-secured runners (participants or not) — until it fits.
        The first participant can always succeed (worst case it empties the
        pool down to itself, and ``submit`` guaranteed its lifetime fits), so
        a step never loses all its participants and ``drain`` terminates.
        Victims are dropped from the plan as-is: the step's budget is not
        redistributed mid-flight.
        """
        required: Dict[int, int] = {}
        for active, chunk in plan:
            if active.needs_prefill:
                done = active.context_done + chunk
                rows = done + (1 if done >= active.kv_length else 0)
            else:
                rows = active.kv_length + 1
            required[active.request.request_id] = rows
        secured: set = set()
        survivors = self._running
        for active, _ in plan:
            if active not in survivors:
                continue  # already evicted for an earlier participant
            grew = True
            while not self._pool.try_grow(active.request.request_id,
                                          required[active.request.request_id]):
                candidates = [a for a in survivors if a is not active
                              and a.request.request_id not in secured]
                victim = self._evictor.select(candidates) if candidates else active
                self._preempt(victim)
                survivors.remove(victim)
                if victim is active:
                    grew = False
                    break
            if grew:
                secured.add(active.request.request_id)
        return [(a, c) for a, c in plan if a in survivors]

    def step(self) -> StepSample:
        """Run one scheduler iteration: admit, plan, simulate, advance."""
        if not self.has_work:
            raise ConfigError(f"replica {self.replica_id}: step() with no work")
        if not self._running:
            # idle engine: the step begins when the earliest queued request
            # arrived, not at the engine's stale clock (no idle spinning)
            self.now = max(self.now,
                           min(w.request.arrival for w in self._waiting))
        if not self._warmed:
            # one-time cold-start penalty before the first step ever runs
            self.now += self.warmup_cycles
            self._warmed = True
        preemptions_before = self._preemptions
        self._admit()
        plan = self._batching.plan(self._running)
        self._check_plan(plan)
        if self._pool is not None and self._running:
            # evicted requests re-queue at the *front* and compete for
            # admission again at the next step's _admit
            plan = self._secure_kv(plan)

        running = self._running
        prefill_tokens = sum(c for a, c in plan if a.needs_prefill)
        num_tokens = prefill_tokens + sum(1 for a, _ in plan
                                          if not a.needs_prefill)
        kv_lengths = tuple(sorted(
            quantize_up(a.context_done + c if a.needs_prefill else a.kv_length,
                        self.config.kv_tile_rows) for a, c in plan))
        if self._cost_fn is None:
            cycles = _step_cycles(self.config, self.schedule, self.hardware,
                                  self._context, num_tokens, kv_lengths,
                                  self._signatures)
        else:
            cycles = self._cost_fn(num_tokens, kv_lengths, self._signatures)
        if self._pool is not None:
            self._occ_samples += 1
            self._occ_sum += self._pool.occupancy
            self._occ_max = max(self._occ_max, self._pool.occupancy)
            self._frag_sum += self._pool.fragmentation
            self._frag_max = max(self._frag_max, self._pool.fragmentation)
        sample = StepSample(
            start=self.now, cycles=cycles, running=len(running),
            queued=len(self._waiting), tokens=num_tokens,
            prefills=sum(1 for a, _ in plan if a.needs_prefill),
            kv_rows=sum(a.kv_length for a in running),
            kv_pages=self._pool.used_pages if self._pool is not None else 0,
            kv_capacity_pages=(self._pool.capacity_pages
                               if self._pool is not None else 0),
            preemptions=self._preemptions - preemptions_before)
        if self._stream is not None:
            self._stream.observe_step(sample)
        else:
            self._steps.append(sample)
        self._busy_cycles += cycles
        self.now += cycles

        chunk_of = {id(a): c for a, c in plan}
        still: List[_Active] = []
        for active in running:
            chunk = chunk_of.get(id(active))
            if chunk is None:
                still.append(active)  # sat this step out (kept its KV)
                continue
            if active.needs_prefill:
                active.context_done += chunk
                if active.context_done < active.kv_length:
                    still.append(active)  # prefill continues next step
                    continue
                # prefill complete: this step emits the (re-)first token
                if active.generated == 0:
                    active.first_token = self.now
                active.needs_prefill = False
            active.generated += 1
            if active.generated >= active.request.output_tokens:
                if self._pool is not None:
                    self._pool.release(active.request.request_id)
                record = RequestRecord(
                    request_id=active.request.request_id,
                    arrival=active.request.arrival,
                    first_token=active.first_token,
                    completion=self.now,
                    prompt_tokens=active.request.prompt_tokens,
                    output_tokens=active.request.output_tokens,
                    priority=active.priority)
                if self._stream is not None:
                    self._stream.observe_request(record)
                else:
                    self._records.append(record)
            else:
                still.append(active)
        self._running = still
        return sample

    def _check_plan(self, plan: StepPlan) -> None:
        """Reject malformed plans early (guards custom batching policies)."""
        if self._running and not plan:
            raise ConfigError(
                f"batching policy {self.config.policy.batching!r} planned an "
                f"empty step for a non-empty batch")
        for active, chunk in plan:
            remaining = active.kv_length - active.context_done
            limit = remaining if active.needs_prefill else 1
            if not 1 <= chunk <= limit:
                raise ConfigError(
                    f"batching policy {self.config.policy.batching!r} planned "
                    f"{chunk} tokens for request "
                    f"{active.request.request_id} (valid: 1..{limit})")

    def advance_to(self, cycle: float) -> None:
        """Step until the clock reaches ``cycle`` (or the engine runs dry).

        The loop condition is strict (``now < cycle``): a step starting
        exactly at ``cycle`` must see anything submitted at that instant, so
        the driver submits first and steps after.
        """
        while self.has_work and self.now < cycle:
            self.step()

    def drain(self) -> None:
        """Step until every queued and running request has completed."""
        while self.has_work:
            self.step()

    def _memory_stats(self) -> Optional[MemoryStats]:
        """The run's memory summary; ``None`` on an unbounded platform."""
        if self._pool is None:
            return None
        samples = self._occ_samples or 1
        return MemoryStats(
            mode=self._pool.mode, page_rows=self._pool.page_rows,
            capacity_pages=self._pool.capacity_pages,
            row_bytes=self._row_bytes, peak_pages=self._pool.peak_pages,
            preemptions=self._preemptions,
            recompute_tokens=self._recompute_tokens,
            admission_stalls=self._admission_stalls,
            occupancy_mean=float(self._occ_sum / samples),
            occupancy_max=float(self._occ_max),
            fragmentation_mean=float(self._frag_sum / samples),
            fragmentation_max=float(self._frag_max))

    def report(self, trace_name: str) -> ServingReport:
        """The engine's history as a :class:`ServingReport` (sorted records)."""
        records = sorted(self._records, key=lambda r: r.request_id)
        return ServingReport(trace=trace_name, schedule=self.schedule.name,
                             batch_cap=self.config.batch_cap,
                             requests=tuple(records), steps=tuple(self._steps),
                             total_cycles=self.now,
                             distinct_steps=len(self._signatures),
                             memory=self._memory_stats(),
                             policy=self.config.policy.describe(),
                             streaming=self._stream)


def simulate_serving(config: ServeConfig, trace: ArrivalTrace,
                     schedule: Optional[Schedule] = None,
                     hardware: PlatformLike = None) -> ServingReport:
    """Serve ``trace`` under ``schedule`` and collect the full report.

    ``hardware`` resolves through the one platform path
    (:func:`repro.platforms.resolve_platform`): ``None`` is the default
    ``"sda"`` platform, and a registered platform name, a
    :class:`~repro.platforms.Platform` or a raw
    :class:`~repro.sim.executors.common.HardwareConfig` all work.

    Deterministic: the report (requests, steps, every latency) is a pure
    function of the arguments — rerunning with the same seed reproduces it
    bit-for-bit, memoization or not.  This is exactly a one-replica,
    zero-warm-up fleet: the loop drives a single :class:`ReplicaEngine` the
    same way the fleet dispatcher drives each of its replicas.
    """
    engine = ReplicaEngine(config, schedule, hardware)
    for request in trace.requests:
        engine.advance_to(request.arrival)
        engine.submit(request)
    engine.drain()
    return engine.report(trace.name)
