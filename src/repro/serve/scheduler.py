"""The continuous-batching serving scheduler (Orca-style iteration scheduling).

:class:`ReplicaEngine` is the unit of serving capacity: one continuous-batching
server that can be **stepped incrementally** — submit requests, advance its
clock, step it, drain it — which is what lets :mod:`repro.serve.fleet` run N
replicas side by side behind a dispatcher.  :func:`simulate_serving` drives an
open-loop :class:`~repro.serve.arrivals.ArrivalTrace` through a single engine:

* requests wait in a FIFO **queue** until a slot in the running batch (at most
  ``batch_cap`` requests) frees up; admission happens at *step* granularity,
  exactly like iteration-level scheduling in Orca / vLLM,
* a newly admitted request's first step is its **prefill** — the whole prompt
  joins the step's token batch and the step emits the request's first output
  token (TTFT is measured at that step's end),
* every subsequent step **decodes** one token per running request against its
  grown KV cache, until ``output_tokens`` tokens have been produced,
* each step's latency comes from simulating the step as a
  :class:`~repro.serve.workload.ServeStepWorkload` under the run's unified
  :class:`~repro.schedules.Schedule` — so batching pressure, KV-length skew
  and the schedule's tiling/parallelization choices all shape the serving
  latencies through the same dataflow engine as the closed-loop experiments.

Step costs are memoized on a *step signature*: the token-batch size plus the
multiset of per-request KV lengths, quantized up to ``kv_tile_rows`` (the
granularity at which the simulator tiles KV anyway).  Decode steps change
signature only every ``kv_tile_rows`` generated tokens, so a serving run
simulates a handful of distinct steps while replaying hundreds — and the
memoization is invisible in the results: the report is a pure function of
``(config, trace, schedule, hardware)``, bit-identical across runs.  The memo
is **bounded** (:class:`StepMemo`): fleet sweeps over replicas × rates ×
policies touch many distinct contexts, so the process-wide cache caps its
entry count and evicts least-recently-used entries deterministically;
:func:`step_cache_stats` exposes hit/miss/eviction counters for debugging.

**Memory pressure.**  When the resolved platform sets a finite
``hbm_capacity_bytes``, the engine owns a :class:`~repro.serve.memory.
KVPagePool` and KV pages become a second admission constraint next to
``batch_cap``:

* a queued request is admitted only when its KV fits *now* (its prompt —
  plus any evicted-and-recomputed tokens — plus one row for the token the
  step will emit; the contiguous mode reserves the lifetime maximum
  instead).  Admission is strict FIFO: a head that does not fit stalls the
  queue (counted as an ``admission_stall``) rather than being overtaken,
* before each step is costed, every running request secures room for the
  token it is about to write.  A paged growth that finds the pool full
  triggers **preemption**: the configured eviction policy
  (:data:`~repro.serve.memory.EVICTION_POLICIES` — ``evict-lru`` /
  ``evict-largest-kv`` / ``evict-youngest``) picks a victim among the
  not-yet-secured runners, whose pages are freed and who returns to the
  *front* of the queue.  On re-admission its prefill re-processes prompt
  **and** previously generated tokens (vLLM-style recompute), which is the
  modeled cost of eviction,
* ``submit`` rejects a request whose lifetime KV could never fit the pool
  (that plus first-secured-wins growth guarantees every step keeps at
  least one participant, so ``drain`` always terminates).

With ``hbm_capacity_bytes=None`` (every platform predating the memory
subsystem) no pool exists and the engine is bit-identical to the pre-memory
scheduler.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..core.errors import ConfigError
from ..platforms import PlatformLike, resolve_platform
from ..schedules import Schedule
from ..sim.executors.common import HardwareConfig
from ..sweep.cache import stable_hash
from ..workloads.configs import ModelConfig
from .arrivals import ArrivalTrace, Request, quantize_up
from .memory import (EVICTION_POLICIES, KV_MODES, EvictionPolicy, KVPagePool,
                     MemoryStats, eviction_policy_names, get_eviction_policy,
                     kv_bytes_per_row)
from .report import RequestRecord, ServingReport, StepSample
from .workload import ServeStepWorkload

#: entry cap of the process-wide step-cost memo.  Each entry is one simulated
#: step cost (a float keyed by context + signature); the cap bounds a fleet
#: sweep's footprint while staying far above what any single run touches.
STEP_MEMO_MAXSIZE = 8192


class StepMemo:
    """A bounded step-cost memo with deterministic LRU eviction.

    ``get``/``put`` maintain least-recently-used order, so the eviction
    sequence is a pure function of the access sequence — two processes
    replaying the same runs evict identically.  Eviction only ever costs a
    re-simulation (results are memo-independent), never correctness; the
    hit/miss/eviction counters exist to make that trade-off observable.
    """

    def __init__(self, maxsize: int = STEP_MEMO_MAXSIZE) -> None:
        if maxsize < 1:
            raise ConfigError(f"StepMemo maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, Tuple], float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[str, Tuple]) -> Optional[float]:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Tuple[str, Tuple], value: float) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (counters included); returns the entry count."""
        count = len(self._entries)
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0
        return count

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._entries), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


#: (context key, step signature) -> step cycles, shared within the process so
#: sweep points over the same model/schedule reuse each other's steps
_STEP_MEMO = StepMemo()


def clear_step_cache() -> int:
    """Drop the in-process step-cost memo (returns the number of entries)."""
    return _STEP_MEMO.clear()


def step_cache_stats() -> Dict[str, int]:
    """Size/hit/miss/eviction counters of the process-wide step memo."""
    return _STEP_MEMO.stats()


@dataclass(frozen=True)
class ServeConfig:
    """Server-side configuration of a serving run (the trace is separate)."""

    model: ModelConfig
    #: maximum concurrently running requests per step (continuous batch size)
    batch_cap: int = 8
    #: decoder layers each step executes (latency multiplier, cf. Figure 17)
    num_layers: int = 2
    kv_tile_rows: int = 64
    moe_compute_bw: int = 8192
    attention_compute_bw: int = 256
    #: seeds the per-step MoE routing
    seed: int = 0
    #: KV allocation discipline under a finite platform ("paged"/"contiguous");
    #: inert when the platform's hbm_capacity_bytes is None
    kv_mode: str = "paged"
    #: registered eviction policy deciding whom to preempt under pressure
    eviction_policy: str = "evict-lru"

    def __post_init__(self) -> None:
        if self.batch_cap < 1:
            raise ConfigError(f"batch_cap must be >= 1, got {self.batch_cap}")
        if self.num_layers < 1:
            raise ConfigError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.kv_mode not in KV_MODES:
            raise ConfigError(f"unknown kv_mode {self.kv_mode!r}; "
                              f"expected one of {list(KV_MODES)}")
        if self.eviction_policy not in EVICTION_POLICIES:
            raise ConfigError(f"unknown eviction policy {self.eviction_policy!r}; "
                              f"registered: {eviction_policy_names()}")


@dataclass
class _Active:
    """A request in the running batch (or re-queued after preemption)."""

    request: Request
    #: output tokens produced so far (0 = the prefill step is still ahead)
    generated: int = 0
    first_token: float = 0.0
    #: the next step must (re-)process the full context: true for fresh
    #: requests and again after a preemption evicted the KV (recompute)
    needs_prefill: bool = True
    #: clock of the latest (re-)admission — the eviction policies' age signal
    admitted_at: float = 0.0

    @property
    def kv_length(self) -> int:
        """Current KV-cache length: the prompt plus every generated token."""
        return self.request.prompt_tokens + self.generated


def _context_key(config: ServeConfig, schedule: Schedule,
                 hardware: HardwareConfig) -> str:
    """The memo context: exactly the inputs that determine a step's cost.

    Deliberately excludes ``batch_cap``, ``kv_mode`` and ``eviction_policy``
    (and the platform's HBM capacity) — they shape which steps occur, never
    what one costs — so capacity/policy sweep points share each other's steps.
    """
    return stable_hash({
        "model": config.model,
        "num_layers": config.num_layers,
        "kv_tile_rows": config.kv_tile_rows,
        "moe_compute_bw": config.moe_compute_bw,
        "attention_compute_bw": config.attention_compute_bw,
        "seed": config.seed,
        "schedule": schedule,
        "hardware": hardware,
    })


def _step_cycles(config: ServeConfig, schedule: Schedule, hardware: HardwareConfig,
                 context: str, num_tokens: int, kv_lengths: Tuple[int, ...],
                 fresh: Dict[Tuple, float]) -> float:
    signature = (num_tokens, kv_lengths)
    key = (context, signature)
    cycles = _STEP_MEMO.get(key)
    if cycles is None:
        # routing depends only on the token count (plus the run seed), so
        # steps with equal signatures are the same simulation
        routing_seed = (config.seed * 1_000_003 + num_tokens) & 0x7FFFFFFF
        step = ServeStepWorkload(
            model=config.model, num_tokens=num_tokens, kv_lengths=kv_lengths,
            routing_seed=routing_seed, num_layers=config.num_layers,
            kv_tile_rows=config.kv_tile_rows,
            moe_compute_bw=config.moe_compute_bw,
            attention_compute_bw=config.attention_compute_bw)
        cycles = step.run(schedule, hardware)["cycles"]
        _STEP_MEMO.put(key, cycles)
    fresh[signature] = cycles
    return cycles


class ReplicaEngine:
    """One continuous-batching server, steppable from the outside.

    The engine owns a clock (``now``, in cycles), a FIFO waiting queue, the
    running batch and the records/steps it has produced.  A driver — the
    single-engine :func:`simulate_serving` loop or the fleet dispatcher in
    :mod:`repro.serve.fleet` — feeds it requests with :meth:`submit` and moves
    time with :meth:`advance_to` / :meth:`step` / :meth:`drain`.

    The contract with the driver: a request must be submitted before the
    engine is stepped past its arrival (submit at arrival time, after
    ``advance_to(arrival)``).  Under that contract the engine reproduces the
    classic single-loop scheduler exactly: a request joins the first step
    whose start is at or after its arrival, and an idle engine's clock jumps
    to the earliest queued arrival instead of spinning.

    ``warmup_cycles`` models cold-start cost: the engine's first step ever is
    preceded by a one-time clock penalty (weights loading, compilation —
    whatever makes a freshly spawned replica slow).  Zero keeps the engine
    bit-identical to the pre-fleet scheduler.
    """

    def __init__(self, config: ServeConfig, schedule: Optional[Schedule] = None,
                 hardware: PlatformLike = None, *, warmup_cycles: float = 0.0,
                 start_cycle: float = 0.0, replica_id: int = 0) -> None:
        if warmup_cycles < 0:
            raise ConfigError(f"warmup_cycles must be >= 0, got {warmup_cycles}")
        self.config = config
        self.schedule = schedule or Schedule.dynamic()
        self.platform = resolve_platform(hardware)
        self.hardware = self.platform.hardware
        self.warmup_cycles = float(warmup_cycles)
        self.replica_id = replica_id
        self.spawned_at = float(start_cycle)
        self.now = float(start_cycle)
        self._context = _context_key(config, self.schedule, self.hardware)
        self._waiting: Deque[_Active] = deque()
        self._running: List[_Active] = []
        self._records: List[RequestRecord] = []
        self._steps: List[StepSample] = []
        self._signatures: Dict[Tuple, float] = {}
        self._warmed = self.warmup_cycles == 0.0
        # -- finite KV memory (None capacity = unbounded, the legacy path) -----------
        self._pool: Optional[KVPagePool] = None
        self._evictor: Optional[EvictionPolicy] = None
        self._row_bytes = kv_bytes_per_row(config.model, config.num_layers)
        if self.platform.hbm_capacity_bytes is not None:
            self._pool = KVPagePool.from_bytes(
                self.platform.hbm_capacity_bytes, config.kv_tile_rows,
                self._row_bytes, mode=config.kv_mode)
            self._evictor = get_eviction_policy(config.eviction_policy)
        self._preemptions = 0
        self._recompute_tokens = 0
        self._admission_stalls = 0
        self._occupancy: List[float] = []
        self._fragmentation: List[float] = []

    # -- dispatcher-visible state ----------------------------------------------------
    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    @property
    def queue_depth(self) -> int:
        """Requests on this replica (waiting + running) — the load signal."""
        return len(self._waiting) + len(self._running)

    @property
    def queued(self) -> int:
        return len(self._waiting)

    @property
    def kv_load(self) -> int:
        """Aggregate KV footprint in rows, quantized up to ``kv_tile_rows``.

        Running requests contribute their current KV length, waiting ones the
        context their next (pre)fill step will materialize; each is rounded up
        to the tile granularity the simulator allocates at — this is the exact
        signal the ``least-kv`` fleet routing policy compares.
        """
        tile = self.config.kv_tile_rows
        return (sum(quantize_up(a.kv_length, tile) for a in self._running)
                + sum(quantize_up(w.kv_length, tile) for w in self._waiting))

    @property
    def free_kv_pages(self) -> float:
        """Unreserved KV pages; ``inf`` when the platform's HBM is unbounded.

        The ``most-free-kv`` fleet routing policy ranks replicas on this, so
        an unbounded replica (never under pressure) sorts ahead of any
        capacity-bounded one.
        """
        if self._pool is None:
            return float("inf")
        return float(self._pool.free_pages)

    @property
    def steps(self) -> Tuple[StepSample, ...]:
        return tuple(self._steps)

    @property
    def busy_cycles(self) -> float:
        return sum(s.cycles for s in self._steps)

    # -- driving ---------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request (FIFO).  Call at arrival time — see the contract.

        Under a finite platform a request whose *lifetime* KV (prompt plus
        every output token) exceeds the whole pool is rejected up front: it
        could never be scheduled, and admitting it would livelock the queue.
        """
        if self._pool is not None:
            max_rows = request.prompt_tokens + request.output_tokens
            if not self._pool.fits_lifetime(max_rows):
                raise ConfigError(
                    f"request {request.request_id} needs "
                    f"{self._pool.pages_for(max_rows)} KV pages for its "
                    f"lifetime but the pool holds {self._pool.capacity_pages} "
                    f"(hbm_capacity_bytes is too small for this trace)")
        self._waiting.append(_Active(request))

    # -- memory pressure -------------------------------------------------------------
    def _preempt(self, active: _Active) -> None:
        """Evict a running request: free its KV, re-queue it at the front.

        The request keeps its ``generated`` count (and its first-token time
        if already delivered); what it loses is its KV — on re-admission the
        prefill re-processes prompt + generated tokens, which is where the
        recompute cost lands.
        """
        self._pool.release(active.request.request_id)
        self._preemptions += 1
        active.needs_prefill = True
        self._waiting.appendleft(active)

    def _admit(self) -> None:
        """Move queued requests into the running batch (strict FIFO).

        A head blocked on KV pages stalls the whole queue (no overtaking —
        that would starve large requests forever) and is counted once per
        step as an admission stall.
        """
        while self._waiting and self._waiting[0].request.arrival <= self.now \
                and len(self._running) < self.config.batch_cap:
            head = self._waiting[0]
            if self._pool is not None:
                # the step a request joins must hold its current context plus
                # the one token it emits; contiguous mode books the lifetime
                max_rows = (head.request.prompt_tokens
                            + head.request.output_tokens)
                if not self._pool.try_admit(head.request.request_id,
                                            head.kv_length + 1, max_rows):
                    self._admission_stalls += 1
                    break
                if head.generated:
                    # re-admission after preemption: the evicted tokens are
                    # recomputed by the upcoming (re-)prefill step
                    self._recompute_tokens += head.generated
            head.admitted_at = self.now
            self._running.append(self._waiting.popleft())

    def _secure_kv(self) -> None:
        """Guarantee every step participant room for the token it will write.

        Runners are processed in admission order; a paged growth that finds
        the pool full preempts a victim — chosen by the eviction policy among
        the not-yet-secured runners — until it fits.  The first runner can
        always succeed (worst case it empties the pool down to itself, and
        ``submit`` guaranteed its lifetime fits), so a step never loses all
        its participants and ``drain`` terminates.
        """
        secured: set = set()
        survivors = self._running
        i = 0
        while i < len(survivors):
            active = survivors[i]
            grew = True
            while not self._pool.try_grow(active.request.request_id,
                                          active.kv_length + 1):
                candidates = [a for a in survivors if a is not active
                              and a.request.request_id not in secured]
                victim = self._evictor.select(candidates) if candidates else active
                self._preempt(victim)
                survivors.remove(victim)
                if victim is active:
                    grew = False
                    break
            if grew:
                secured.add(active.request.request_id)
                i += 1

    def step(self) -> StepSample:
        """Run one scheduler iteration: admit, simulate, advance the clock."""
        if not self.has_work:
            raise ConfigError(f"replica {self.replica_id}: step() with no work")
        if not self._running:
            # idle engine: the step begins when the earliest queued request
            # arrived, not at the engine's stale clock (no idle spinning)
            self.now = max(self.now, self._waiting[0].request.arrival)
        if not self._warmed:
            # one-time cold-start penalty before the first step ever runs
            self.now += self.warmup_cycles
            self._warmed = True
        preemptions_before = self._preemptions
        self._admit()
        if self._pool is not None and self._running:
            # evicted requests re-queue at the *front* and (strict FIFO)
            # compete for admission again at the next step's _admit
            self._secure_kv()

        running = self._running
        prefills = [a for a in running if a.needs_prefill]
        # a (re-)prefill processes its full context — prompt plus any
        # previously generated tokens whose KV was evicted (recompute)
        num_tokens = (sum(a.kv_length for a in prefills)
                      + len(running) - len(prefills))
        kv_lengths = tuple(sorted(
            quantize_up(a.kv_length, self.config.kv_tile_rows) for a in running))
        cycles = _step_cycles(self.config, self.schedule, self.hardware,
                              self._context, num_tokens, kv_lengths,
                              self._signatures)
        if self._pool is not None:
            self._occupancy.append(self._pool.occupancy)
            self._fragmentation.append(self._pool.fragmentation)
        sample = StepSample(
            start=self.now, cycles=cycles, running=len(running),
            queued=len(self._waiting), tokens=num_tokens,
            prefills=len(prefills),
            kv_rows=sum(a.kv_length for a in running),
            kv_pages=self._pool.used_pages if self._pool is not None else 0,
            kv_capacity_pages=(self._pool.capacity_pages
                               if self._pool is not None else 0),
            preemptions=self._preemptions - preemptions_before)
        self._steps.append(sample)
        self.now += cycles

        still: List[_Active] = []
        for active in running:
            if active.generated == 0:
                active.first_token = self.now
            active.needs_prefill = False
            active.generated += 1
            if active.generated >= active.request.output_tokens:
                if self._pool is not None:
                    self._pool.release(active.request.request_id)
                self._records.append(RequestRecord(
                    request_id=active.request.request_id,
                    arrival=active.request.arrival,
                    first_token=active.first_token,
                    completion=self.now,
                    prompt_tokens=active.request.prompt_tokens,
                    output_tokens=active.request.output_tokens))
            else:
                still.append(active)
        self._running = still
        return sample

    def advance_to(self, cycle: float) -> None:
        """Step until the clock reaches ``cycle`` (or the engine runs dry).

        The loop condition is strict (``now < cycle``): a step starting
        exactly at ``cycle`` must see anything submitted at that instant, so
        the driver submits first and steps after.
        """
        while self.has_work and self.now < cycle:
            self.step()

    def drain(self) -> None:
        """Step until every queued and running request has completed."""
        while self.has_work:
            self.step()

    def _memory_stats(self) -> Optional[MemoryStats]:
        """The run's memory summary; ``None`` on an unbounded platform."""
        if self._pool is None:
            return None
        occupancy = self._occupancy or [0.0]
        fragmentation = self._fragmentation or [0.0]
        return MemoryStats(
            mode=self._pool.mode, page_rows=self._pool.page_rows,
            capacity_pages=self._pool.capacity_pages,
            row_bytes=self._row_bytes, peak_pages=self._pool.peak_pages,
            preemptions=self._preemptions,
            recompute_tokens=self._recompute_tokens,
            admission_stalls=self._admission_stalls,
            occupancy_mean=float(sum(occupancy) / len(occupancy)),
            occupancy_max=float(max(occupancy)),
            fragmentation_mean=float(sum(fragmentation) / len(fragmentation)),
            fragmentation_max=float(max(fragmentation)))

    def report(self, trace_name: str) -> ServingReport:
        """The engine's history as a :class:`ServingReport` (sorted records)."""
        records = sorted(self._records, key=lambda r: r.request_id)
        return ServingReport(trace=trace_name, schedule=self.schedule.name,
                             batch_cap=self.config.batch_cap,
                             requests=tuple(records), steps=tuple(self._steps),
                             total_cycles=self.now,
                             distinct_steps=len(self._signatures),
                             memory=self._memory_stats())


def simulate_serving(config: ServeConfig, trace: ArrivalTrace,
                     schedule: Optional[Schedule] = None,
                     hardware: PlatformLike = None) -> ServingReport:
    """Serve ``trace`` under ``schedule`` and collect the full report.

    ``hardware`` resolves through the one platform path
    (:func:`repro.platforms.resolve_platform`): ``None`` is the default
    ``"sda"`` platform, and a registered platform name, a
    :class:`~repro.platforms.Platform` or a raw
    :class:`~repro.sim.executors.common.HardwareConfig` all work.

    Deterministic: the report (requests, steps, every latency) is a pure
    function of the arguments — rerunning with the same seed reproduces it
    bit-for-bit, memoization or not.  This is exactly a one-replica,
    zero-warm-up fleet: the loop drives a single :class:`ReplicaEngine` the
    same way the fleet dispatcher drives each of its replicas.
    """
    engine = ReplicaEngine(config, schedule, hardware)
    for request in trace.requests:
        engine.advance_to(request.arrival)
        engine.submit(request)
    engine.drain()
    return engine.report(trace.name)
