"""The continuous-batching serving scheduler (Orca-style iteration scheduling).

:func:`simulate_serving` drives an open-loop :class:`~repro.serve.arrivals.
ArrivalTrace` through a continuous-batching server:

* requests wait in a FIFO **queue** until a slot in the running batch (at most
  ``batch_cap`` requests) frees up; admission happens at *step* granularity,
  exactly like iteration-level scheduling in Orca / vLLM,
* a newly admitted request's first step is its **prefill** — the whole prompt
  joins the step's token batch and the step emits the request's first output
  token (TTFT is measured at that step's end),
* every subsequent step **decodes** one token per running request against its
  grown KV cache, until ``output_tokens`` tokens have been produced,
* each step's latency comes from simulating the step as a
  :class:`~repro.serve.workload.ServeStepWorkload` under the run's unified
  :class:`~repro.schedules.Schedule` — so batching pressure, KV-length skew
  and the schedule's tiling/parallelization choices all shape the serving
  latencies through the same dataflow engine as the closed-loop experiments.

Step costs are memoized on a *step signature*: the token-batch size plus the
multiset of per-request KV lengths, quantized up to ``kv_tile_rows`` (the
granularity at which the simulator tiles KV anyway).  Decode steps change
signature only every ``kv_tile_rows`` generated tokens, so a serving run
simulates a handful of distinct steps while replaying hundreds — and the
memoization is invisible in the results: the report is a pure function of
``(config, trace, schedule, hardware)``, bit-identical across runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigError
from ..platforms import PlatformLike, resolve_platform
from ..schedules import Schedule
from ..sim.executors.common import HardwareConfig
from ..sweep.cache import stable_hash
from ..workloads.configs import ModelConfig
from .arrivals import ArrivalTrace, Request, quantize_up
from .report import RequestRecord, ServingReport, StepSample
from .workload import ServeStepWorkload

#: (context key, step signature) -> step cycles, shared within the process so
#: sweep points over the same model/schedule reuse each other's steps
_STEP_MEMO: Dict[Tuple[str, Tuple], float] = {}


def clear_step_cache() -> int:
    """Drop the in-process step-cost memo (returns the number of entries)."""
    count = len(_STEP_MEMO)
    _STEP_MEMO.clear()
    return count


@dataclass(frozen=True)
class ServeConfig:
    """Server-side configuration of a serving run (the trace is separate)."""

    model: ModelConfig
    #: maximum concurrently running requests per step (continuous batch size)
    batch_cap: int = 8
    #: decoder layers each step executes (latency multiplier, cf. Figure 17)
    num_layers: int = 2
    kv_tile_rows: int = 64
    moe_compute_bw: int = 8192
    attention_compute_bw: int = 256
    #: seeds the per-step MoE routing
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_cap < 1:
            raise ConfigError(f"batch_cap must be >= 1, got {self.batch_cap}")
        if self.num_layers < 1:
            raise ConfigError(f"num_layers must be >= 1, got {self.num_layers}")


@dataclass
class _Active:
    """A request currently in the running batch."""

    request: Request
    #: output tokens produced so far (0 = the prefill step is still ahead)
    generated: int = 0
    first_token: float = 0.0

    @property
    def kv_length(self) -> int:
        """Current KV-cache length: the prompt plus every generated token."""
        return self.request.prompt_tokens + self.generated


def _context_key(config: ServeConfig, schedule: Schedule,
                 hardware: HardwareConfig) -> str:
    """The memo context: exactly the inputs that determine a step's cost.

    Deliberately excludes ``batch_cap`` — it shapes which steps occur, never
    what one costs — so batch-cap sweep points share each other's steps.
    """
    return stable_hash({
        "model": config.model,
        "num_layers": config.num_layers,
        "kv_tile_rows": config.kv_tile_rows,
        "moe_compute_bw": config.moe_compute_bw,
        "attention_compute_bw": config.attention_compute_bw,
        "seed": config.seed,
        "schedule": schedule,
        "hardware": hardware,
    })


def _step_cycles(config: ServeConfig, schedule: Schedule, hardware: HardwareConfig,
                 context: str, num_tokens: int, kv_lengths: Tuple[int, ...],
                 fresh: Dict[Tuple, float]) -> float:
    signature = (num_tokens, kv_lengths)
    key = (context, signature)
    cycles = _STEP_MEMO.get(key)
    if cycles is None:
        # routing depends only on the token count (plus the run seed), so
        # steps with equal signatures are the same simulation
        routing_seed = (config.seed * 1_000_003 + num_tokens) & 0x7FFFFFFF
        step = ServeStepWorkload(
            model=config.model, num_tokens=num_tokens, kv_lengths=kv_lengths,
            routing_seed=routing_seed, num_layers=config.num_layers,
            kv_tile_rows=config.kv_tile_rows,
            moe_compute_bw=config.moe_compute_bw,
            attention_compute_bw=config.attention_compute_bw)
        cycles = step.run(schedule, hardware)["cycles"]
        _STEP_MEMO[key] = cycles
    fresh[signature] = cycles
    return cycles


def simulate_serving(config: ServeConfig, trace: ArrivalTrace,
                     schedule: Optional[Schedule] = None,
                     hardware: PlatformLike = None) -> ServingReport:
    """Serve ``trace`` under ``schedule`` and collect the full report.

    ``hardware`` resolves through the one platform path
    (:func:`repro.platforms.resolve_platform`): ``None`` is the default
    ``"sda"`` platform, and a registered platform name, a
    :class:`~repro.platforms.Platform` or a raw
    :class:`~repro.sim.executors.common.HardwareConfig` all work.

    Deterministic: the report (requests, steps, every latency) is a pure
    function of the arguments — rerunning with the same seed reproduces it
    bit-for-bit, memoization or not.
    """
    schedule = schedule or Schedule.dynamic()
    hardware = resolve_platform(hardware).hardware
    context = _context_key(config, schedule, hardware)

    pending = deque(trace.requests)
    waiting: deque = deque()
    running: List[_Active] = []
    records: List[RequestRecord] = []
    steps: List[StepSample] = []
    signatures: Dict[Tuple, float] = {}
    now = 0.0

    while pending or waiting or running:
        # arrivals up to the current step boundary join the FIFO queue ...
        while pending and pending[0].arrival <= now:
            waiting.append(pending.popleft())
        # ... and fill free batch slots (iteration-granularity admission)
        while waiting and len(running) < config.batch_cap:
            running.append(_Active(waiting.popleft()))
        if not running:
            now = max(now, pending[0].arrival)
            continue

        prefills = [a for a in running if a.generated == 0]
        num_tokens = (sum(a.request.prompt_tokens for a in prefills)
                      + len(running) - len(prefills))
        kv_lengths = tuple(sorted(
            quantize_up(a.kv_length, config.kv_tile_rows) for a in running))
        cycles = _step_cycles(config, schedule, hardware, context,
                              num_tokens, kv_lengths, signatures)
        steps.append(StepSample(start=now, cycles=cycles, running=len(running),
                                queued=len(waiting), tokens=num_tokens,
                                prefills=len(prefills)))
        now += cycles

        still: List[_Active] = []
        for active in running:
            if active.generated == 0:
                active.first_token = now
            active.generated += 1
            if active.generated >= active.request.output_tokens:
                records.append(RequestRecord(
                    request_id=active.request.request_id,
                    arrival=active.request.arrival,
                    first_token=active.first_token,
                    completion=now,
                    prompt_tokens=active.request.prompt_tokens,
                    output_tokens=active.request.output_tokens))
            else:
                still.append(active)
        running = still

    records.sort(key=lambda r: r.request_id)
    return ServingReport(trace=trace.name, schedule=schedule.name,
                         batch_cap=config.batch_cap, requests=tuple(records),
                         steps=tuple(steps), total_cycles=now,
                         distinct_steps=len(signatures))
