"""Finite KV-cache memory: the paged allocator and eviction policies.

:mod:`repro.platforms` gives a :class:`~repro.platforms.Platform` bandwidth
*and* — via ``hbm_capacity_bytes`` — a finite HBM byte budget.  This module
turns that budget into a schedulable resource for the serving engine:

* :func:`kv_bytes_per_row` derives the bytes one KV row (one token's K and V
  vectors across the simulated decoder layers) occupies from the model dims,
* :class:`KVPagePool` manages the budget as fixed-size **pages** of
  ``page_rows`` KV rows each (``page_rows`` is the scheduler's
  ``kv_tile_rows`` — the granularity at which the simulator tiles KV anyway),
  in one of two allocation modes:

  - ``"paged"`` — vLLM-style on-demand paging: a request reserves only the
    pages its *current* KV needs at admission and grows page by page as it
    decodes; growth can fail under pressure, which is what triggers
    preemption in the scheduler,
  - ``"contiguous"`` — the classic pre-paging discipline: a request reserves
    its **maximum lifetime** KV (prompt + all output tokens, rounded up to
    whole pages) at admission, so decoding never fails but reserved-and-
    unused rows sit idle — the reservation waste the paged-vs-contiguous
    scenarios measure,

* an **eviction-policy registry** (:func:`register_eviction_policy` /
  :func:`get_eviction_policy`) deciding which running request to preempt when
  a decode step cannot grow its KV: ``"evict-lru"`` (least recently
  (re)admitted), ``"evict-largest-kv"`` (frees the most pages) and
  ``"evict-youngest"`` (most recently admitted — the least recompute work
  lost).  Every policy is deterministic: ties break on ``request_id``,

* :class:`MemoryStats` — the run-level memory summary carried by
  :class:`~repro.serve.report.ServingReport` (peak/mean occupancy,
  fragmentation, preemption/recompute/admission-stall counters), serialized
  symmetrically via ``to_dict``/``from_dict``.

The pool models *accounting*, not addresses: whether pages are physically
scattered is invisible to a cycle-level simulator, so "contiguous" manifests
purely as the up-front worst-case reservation.  Fragmentation here is the
**internal** kind — reserved-page rows not yet holding a KV entry — which is
exactly the waste axis the two modes trade against admission concurrency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, List, Sequence

from ..core.errors import ConfigError
from ..workloads.configs import ModelConfig
from .registry import attach_registry, resolve_registered, seal_builtins

#: the KV allocation modes KVPagePool understands
KV_MODES = ("paged", "contiguous")

#: bytes per stored KV element (BF16, matching the simulator's tile dtype)
KV_BYTES_PER_ELEMENT = 2


def kv_bytes_per_row(model: ModelConfig, num_layers: int,
                     bytes_per_element: int = KV_BYTES_PER_ELEMENT) -> int:
    """Bytes one KV row (one token's K **and** V) occupies across the layers.

    ``num_layers`` is the serving configuration's simulated decoder-layer
    count (:attr:`repro.serve.scheduler.ServeConfig.num_layers`), not the full
    model depth — the engine only materializes KV for the layers it steps.
    """
    if num_layers < 1:
        raise ConfigError(f"kv_bytes_per_row: num_layers must be >= 1, "
                          f"got {num_layers}")
    return 2 * model.kv_dim * num_layers * bytes_per_element


@dataclass
class _Reservation:
    """One request's slice of the pool: reserved pages + rows actually used."""

    pages: int
    rows: int


class KVPagePool:
    """A fixed-capacity KV page allocator (paged or contiguous discipline).

    All sizes are in *rows* (tokens) and *pages* (``page_rows`` rows each);
    byte budgets convert via :meth:`from_bytes`.  The pool never evicts on its
    own — it only reports failure (``try_admit``/``try_grow`` returning
    ``False``), and the scheduler decides whom to preempt.
    """

    def __init__(self, capacity_pages: int, page_rows: int,
                 mode: str = "paged") -> None:
        if capacity_pages < 1:
            raise ConfigError(f"KVPagePool needs >= 1 page, got {capacity_pages}")
        if page_rows < 1:
            raise ConfigError(f"KVPagePool page_rows must be >= 1, got {page_rows}")
        if mode not in KV_MODES:
            raise ConfigError(f"unknown KV allocation mode {mode!r}; "
                              f"expected one of {list(KV_MODES)}")
        self.capacity_pages = capacity_pages
        self.page_rows = page_rows
        self.mode = mode
        self._reservations: Dict[int, _Reservation] = {}
        self._used_pages = 0
        # -- counters ----------------------------------------------------------------
        self.admits = 0
        self.grows = 0
        self.failed_admits = 0
        self.failed_grows = 0
        self.releases = 0
        self.peak_pages = 0

    @classmethod
    def from_bytes(cls, capacity_bytes: int, page_rows: int, row_bytes: int,
                   mode: str = "paged") -> "KVPagePool":
        """A pool over a byte budget: ``capacity_bytes // (page_rows * row_bytes)``
        whole pages (a partial trailing page is unusable and dropped)."""
        if row_bytes < 1:
            raise ConfigError(f"KVPagePool row_bytes must be >= 1, got {row_bytes}")
        pages = int(capacity_bytes) // (page_rows * row_bytes)
        if pages < 1:
            raise ConfigError(
                f"hbm_capacity_bytes={capacity_bytes} holds no whole KV page "
                f"({page_rows} rows x {row_bytes} B/row = "
                f"{page_rows * row_bytes} B/page)")
        return cls(capacity_pages=pages, page_rows=page_rows, mode=mode)

    # -- geometry --------------------------------------------------------------------
    def pages_for(self, rows: int) -> int:
        """Pages needed to hold ``rows`` KV rows (ceil division, min 1)."""
        return max(1, math.ceil(rows / self.page_rows))

    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self._used_pages

    @property
    def used_rows(self) -> int:
        """KV rows actually resident (across every reservation)."""
        return sum(r.rows for r in self._reservations.values())

    @property
    def occupancy(self) -> float:
        """Reserved fraction of the page budget, in [0, 1]."""
        return self._used_pages / self.capacity_pages

    @property
    def fragmentation(self) -> float:
        """Reserved-but-unused row fraction (internal fragmentation).

        0.0 with nothing reserved; under the contiguous discipline this is
        dominated by the not-yet-decoded tail of each worst-case reservation.
        """
        reserved_rows = self._used_pages * self.page_rows
        if reserved_rows == 0:
            return 0.0
        return 1.0 - self.used_rows / reserved_rows

    def fits_lifetime(self, max_rows: int) -> bool:
        """Whether a request needing at most ``max_rows`` can *ever* run here."""
        return self.pages_for(max_rows) <= self.capacity_pages

    # -- allocation ------------------------------------------------------------------
    def try_admit(self, request_id: int, rows: int, max_rows: int) -> bool:
        """Reserve a new request's KV; ``False`` when it doesn't fit *now*.

        ``rows`` is the KV the request needs immediately (its prompt plus any
        recomputed tokens); ``max_rows`` its maximum lifetime KV.  The paged
        discipline reserves pages for ``rows``, the contiguous one for
        ``max_rows`` up front.
        """
        if request_id in self._reservations:
            raise ConfigError(f"request {request_id} is already admitted")
        pages = self.pages_for(max_rows if self.mode == "contiguous" else rows)
        if pages > self.free_pages:
            self.failed_admits += 1
            return False
        self._reservations[request_id] = _Reservation(pages=pages, rows=rows)
        self._used_pages += pages
        self.admits += 1
        self.peak_pages = max(self.peak_pages, self._used_pages)
        return True

    def try_grow(self, request_id: int, rows: int) -> bool:
        """Grow a reservation to hold ``rows``; ``False`` when pages ran out.

        Contiguous reservations already cover their lifetime maximum, so
        growth within it always succeeds (exceeding it is a scheduler bug and
        raises).  A failed paged growth leaves the reservation untouched —
        the scheduler preempts someone and retries.
        """
        try:
            reservation = self._reservations[request_id]
        except KeyError:
            raise ConfigError(f"request {request_id} grew without admission") from None
        needed = self.pages_for(rows)
        if needed <= reservation.pages:
            reservation.rows = rows
            return True
        if self.mode == "contiguous":
            raise ConfigError(
                f"request {request_id}: contiguous reservation of "
                f"{reservation.pages} pages exceeded ({rows} rows)")
        delta = needed - reservation.pages
        if delta > self.free_pages:
            self.failed_grows += 1
            return False
        reservation.pages = needed
        reservation.rows = rows
        self._used_pages += delta
        self.grows += 1
        self.peak_pages = max(self.peak_pages, self._used_pages)
        return True

    def release(self, request_id: int) -> int:
        """Free a request's pages (on completion or preemption); returns them."""
        try:
            reservation = self._reservations.pop(request_id)
        except KeyError:
            raise ConfigError(f"request {request_id} released without admission") \
                from None
        self._used_pages -= reservation.pages
        self.releases += 1
        return reservation.pages

    def stats(self) -> Dict[str, int]:
        """The pool's counter snapshot (sizes in pages)."""
        return {"capacity_pages": self.capacity_pages,
                "used_pages": self._used_pages, "peak_pages": self.peak_pages,
                "admits": self.admits, "failed_admits": self.failed_admits,
                "grows": self.grows, "failed_grows": self.failed_grows,
                "releases": self.releases}


# ---------------------------------------------------------------------------
# Eviction policies
# ---------------------------------------------------------------------------

class EvictionPolicy:
    """Picks the running request to preempt when KV growth fails.

    ``select`` sees the *candidate* set — running requests that have not yet
    secured this step's KV growth (the grower itself excluded) — and returns
    one of them.  Candidates expose ``request.request_id``, ``kv_length`` and
    ``admitted_at`` (the cycle of their latest (re-)admission).
    Implementations must be deterministic: equal keys break ties on
    ``request_id`` so reruns preempt identically.
    """

    name: ClassVar[str] = ""

    def select(self, candidates: Sequence[Any]) -> Any:
        raise NotImplementedError


#: policy name -> zero-argument factory producing a fresh policy instance
EVICTION_POLICIES: Dict[str, Callable[[], EvictionPolicy]] = \
    attach_registry("eviction", {})


def register_eviction_policy(name: str):
    """Decorator registering an eviction-policy class under ``name``."""

    def wrap(cls):
        if name in EVICTION_POLICIES:
            raise ConfigError(f"eviction policy {name!r} is already registered")
        cls.name = name
        EVICTION_POLICIES[name] = cls
        return cls

    return wrap


def get_eviction_policy(name: str) -> EvictionPolicy:
    """A fresh instance of the registered policy ``name``.

    Unknown names raise a :class:`ConfigError` listing the registered ones —
    the one shared error path of :func:`repro.serve.registry.resolve_registered`.
    """
    return resolve_registered("eviction", name)()


def eviction_policy_names() -> List[str]:
    """The registered eviction-policy names, sorted."""
    return sorted(EVICTION_POLICIES)


@register_eviction_policy("evict-lru")
class EvictLRUPolicy(EvictionPolicy):
    """Preempt the least recently (re-)admitted request (oldest in the batch).

    Continuous batching touches every running request every step, so "least
    recently used" is measured at admission granularity: the request resident
    longest is the one whose working set is most amortized — classic FIFO/LRU
    victim choice.
    """

    def select(self, candidates: Sequence[Any]) -> Any:
        return min(candidates, key=lambda a: (a.admitted_at, a.request.request_id))


@register_eviction_policy("evict-largest-kv")
class EvictLargestKVPolicy(EvictionPolicy):
    """Preempt the request holding the most KV rows (frees the most pages).

    Greedy on immediate relief; the flip side is that the largest context is
    also the most expensive to recompute on re-admission.
    """

    def select(self, candidates: Sequence[Any]) -> Any:
        return min(candidates, key=lambda a: (-a.kv_length, a.request.request_id))


@register_eviction_policy("evict-youngest")
class EvictYoungestPolicy(EvictionPolicy):
    """Preempt the most recently (re-)admitted request (least progress lost).

    The inverse of LRU: protect long-resident requests (they are closest to
    completion) and sacrifice the newcomer, which has generated the fewest
    tokens to recompute.
    """

    def select(self, candidates: Sequence[Any]) -> Any:
        return min(candidates,
                   key=lambda a: (-a.admitted_at, -a.request.request_id))


seal_builtins("eviction")


# ---------------------------------------------------------------------------
# Run-level memory summary
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MemoryStats:
    """The memory side of a serving run (attached to a ServingReport).

    Present only for capacity-bounded runs (``Platform.hbm_capacity_bytes``
    set); unbounded runs carry ``None`` and report all-zero flat metrics.
    Occupancy and fragmentation summarize the per-step timeline recorded in
    :class:`~repro.serve.report.StepSample` (``kv_pages`` /
    ``kv_capacity_pages`` / ``kv_rows``).
    """

    #: the allocation discipline ("paged" or "contiguous")
    mode: str
    #: KV rows per page (the scheduler's kv_tile_rows)
    page_rows: int
    #: total page budget derived from the platform's hbm_capacity_bytes
    capacity_pages: int
    #: bytes one KV row occupies (kv_bytes_per_row of the served model)
    row_bytes: int
    #: most pages ever reserved at once
    peak_pages: int = 0
    #: requests preempted (evicted mid-decode and re-queued)
    preemptions: int = 0
    #: generated tokens re-prefilled because their KV had been evicted
    recompute_tokens: int = 0
    #: steps whose queue head could not be admitted for lack of pages
    admission_stalls: int = 0
    #: mean / max reserved fraction of the page budget over the steps
    occupancy_mean: float = 0.0
    occupancy_max: float = 0.0
    #: mean / max reserved-but-unused row fraction over the steps
    fragmentation_mean: float = 0.0
    fragmentation_max: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"mode": self.mode, "page_rows": self.page_rows,
                "capacity_pages": self.capacity_pages,
                "row_bytes": self.row_bytes, "peak_pages": self.peak_pages,
                "preemptions": self.preemptions,
                "recompute_tokens": self.recompute_tokens,
                "admission_stalls": self.admission_stalls,
                "occupancy_mean": self.occupancy_mean,
                "occupancy_max": self.occupancy_max,
                "fragmentation_mean": self.fragmentation_mean,
                "fragmentation_max": self.fragmentation_max}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MemoryStats":
        return cls(mode=payload["mode"], page_rows=int(payload["page_rows"]),
                   capacity_pages=int(payload["capacity_pages"]),
                   row_bytes=int(payload["row_bytes"]),
                   peak_pages=int(payload["peak_pages"]),
                   preemptions=int(payload["preemptions"]),
                   recompute_tokens=int(payload["recompute_tokens"]),
                   admission_stalls=int(payload["admission_stalls"]),
                   occupancy_mean=float(payload["occupancy_mean"]),
                   occupancy_max=float(payload["occupancy_max"]),
                   fragmentation_mean=float(payload["fragmentation_mean"]),
                   fragmentation_max=float(payload["fragmentation_max"]))

    def metrics(self) -> Dict[str, float]:
        """The flat metric slice merged into ServingReport.metrics()."""
        return {"preemptions": float(self.preemptions),
                "recompute_tokens": float(self.recompute_tokens),
                "admission_stalls": float(self.admission_stalls),
                "kv_capacity_pages": float(self.capacity_pages),
                "kv_peak_pages": float(self.peak_pages),
                "kv_occupancy_mean": float(self.occupancy_mean),
                "kv_occupancy_max": float(self.occupancy_max),
                "kv_fragmentation_mean": float(self.fragmentation_mean),
                "kv_fragmentation_max": float(self.fragmentation_max)}

    @staticmethod
    def empty_metrics() -> Dict[str, float]:
        """The all-zero slice an unbounded (memory-less) run reports."""
        return {key: 0.0 for key in MemoryStats(
            mode="paged", page_rows=1, capacity_pages=1, row_bytes=1).metrics()}
