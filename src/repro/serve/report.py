"""Serving-run results: per-request latency records, percentiles and timelines.

A :class:`ServingReport` is the serving counterpart of
:class:`repro.sim.runner.SimReport`: everything a latency-vs-load study needs,
serialized symmetrically (``to_dict``/``from_dict`` round-trip bit-for-bit).
A :class:`FleetReport` aggregates one :class:`ServingReport` per replica (each
wrapped in a :class:`ReplicaReport` carrying spawn/retire lifecycle) plus the
autoscaler's :class:`ScalingEvent` timeline into fleet-level metrics:
combined latency percentiles over every request, per-replica utilization and
imbalance, and the scaling history.

Latency definitions (all in engine cycles):

* **TTFT** (time to first token) — from a request's arrival to the end of the
  step that processed its prompt (which also emits the first output token,
  as in continuous-batching servers),
* **TPOT** (time per output token) — the mean inter-token gap over the
  decode phase: ``(completion - first_token) / (output_tokens - 1)``; zero
  for single-token outputs,
* **e2e** — arrival to completion.

Percentiles use the *nearest-rank* method (the value at index
``ceil(q/100 * n)`` of the sorted sample, 1-based): every reported percentile
is an actually observed latency, and the computation is integer-exact, which
keeps reports bit-identical across platforms.

Goodput is completed requests per million cycles; token throughput is
generated tokens per thousand cycles.  The queue-depth timeline records one
:class:`StepSample` per scheduler step (start cycle, step latency, running and
queued request counts, tokens processed), giving load curves their
time-resolved view.

Every latency summary carries a ``count`` field: an *empty* sample (no
requests completed — an overloaded replica, a drained-out class) reports
``count`` 0 with zeroed statistics, which is distinguishable from a sample
whose latencies are genuinely zero.

**Streaming mode.**  A report produced under ``report_mode="streaming"``
(see :class:`~repro.serve.scheduler.ServeConfig`) carries no per-request
records or per-step samples at all — instead its ``streaming`` field holds a
:class:`~repro.serve.streaming.StreamingStats` bundle (online percentile
sketches + a windowed timeline) and every aggregate on this class dispatches
to it.  Percentiles are then within the sketch's documented relative error of
the exact nearest-rank values; counts, means, maxima and queue-depth means
remain exact.  ``"full"`` mode (the default) is byte-identical to the
pre-streaming serialization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.errors import ConfigError
from .arrivals import MCYCLE
from .memory import MemoryStats
from .streaming import DEFAULT_WINDOW_CYCLES, StreamingStats, WindowedTimeline

#: the percentile points every latency summary reports
PERCENTILE_POINTS = (50, 90, 95, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the ``ceil(q/100 * n)``-th smallest sample.

    Deterministic, interpolation-free and always an observed value; ``q=0``
    returns the minimum, ``q=100`` the maximum.  Raises on an empty sample.
    """
    if not values:
        raise ConfigError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ConfigError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / max / nearest-rank percentiles of a latency sample.

    The sample is sorted **once** and every percentile point indexes into the
    sorted copy (the previous implementation re-sorted per point — four sorts
    plus a max per summary).  ``count`` distinguishes an empty sample from
    genuinely zero latencies: a replica that completed nothing reports
    ``count`` 0 with zeroed statistics, not a perfect p99 of 0.0.
    """
    if not values:
        return {"mean": 0.0, "max": 0.0,
                **{f"p{q}": 0.0 for q in PERCENTILE_POINTS},
                "count": 0.0}
    ordered = sorted(values)
    n = len(ordered)
    # the mean accumulates in observation order (not sorted order): float
    # addition is order-sensitive and the pre-fix values are pinned
    summary = {"mean": float(sum(values) / n), "max": float(ordered[-1])}
    for q in PERCENTILE_POINTS:
        rank = max(1, math.ceil(q / 100.0 * n))
        summary[f"p{q}"] = float(ordered[rank - 1])
    summary["count"] = float(n)
    return summary


@dataclass(frozen=True)
class RequestRecord:
    """The lifecycle of one served request, in engine cycles."""

    request_id: int
    arrival: float
    #: end of the step that processed the prompt (first output token time)
    first_token: float
    #: end of the step that produced the final output token
    completion: float
    prompt_tokens: int
    output_tokens: int
    #: priority class the request was served under (0 = most urgent)
    priority: int = 0

    @property
    def ttft(self) -> float:
        return self.first_token - self.arrival

    @property
    def tpot(self) -> float:
        if self.output_tokens <= 1:
            return 0.0
        return (self.completion - self.first_token) / (self.output_tokens - 1)

    @property
    def e2e(self) -> float:
        return self.completion - self.arrival

    def to_dict(self) -> Dict[str, Any]:
        return {"request_id": self.request_id, "arrival": self.arrival,
                "first_token": self.first_token, "completion": self.completion,
                "prompt_tokens": self.prompt_tokens,
                "output_tokens": self.output_tokens,
                "priority": self.priority}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RequestRecord":
        return cls(request_id=int(payload["request_id"]),
                   arrival=float(payload["arrival"]),
                   first_token=float(payload["first_token"]),
                   completion=float(payload["completion"]),
                   prompt_tokens=int(payload["prompt_tokens"]),
                   output_tokens=int(payload["output_tokens"]),
                   priority=int(payload.get("priority", 0)))


def priority_breakdown(records: Sequence["RequestRecord"]) -> Dict[int, Dict[str, Any]]:
    """Per-priority-class latency summaries over a request sample.

    Maps each priority class present in ``records`` to its request count and
    TTFT / TPOT / e2e percentile summaries (the same nearest-rank summaries
    the aggregate report uses) — the signal a priority or SLO-deadline policy
    is supposed to move: class 0 should hold its tail while lower classes
    absorb the queueing.  Shared by :meth:`ServingReport.per_priority` and
    :meth:`FleetReport.per_priority`.
    """
    classes: Dict[int, list] = {}
    for record in records:
        classes.setdefault(record.priority, []).append(record)
    breakdown: Dict[int, Dict[str, Any]] = {}
    for cls in sorted(classes):
        group = classes[cls]
        breakdown[cls] = {
            "requests": len(group),
            "ttft": summarize([r.ttft for r in group]),
            "tpot": summarize([r.tpot for r in group if r.output_tokens > 1]),
            "e2e": summarize([r.e2e for r in group]),
        }
    return breakdown


@dataclass(frozen=True)
class StepSample:
    """One scheduler step of the queue-depth timeline."""

    #: cycle at which the step was issued
    start: float
    #: simulated latency of the step (all layers)
    cycles: float
    #: requests in the running batch (prefill + decode)
    running: int
    #: requests admitted-but-waiting because the batch cap was reached
    queued: int
    #: tokens processed this step (prompt tokens for prefills, 1 per decode)
    tokens: int
    #: how many of the running requests were in their prefill step
    prefills: int
    #: KV rows held by the step's participants when the step was issued
    kv_rows: int = 0
    #: KV pages reserved when the step was issued (0 = unbounded, no pool)
    kv_pages: int = 0
    #: the pool's page budget (0 = unbounded, no pool)
    kv_capacity_pages: int = 0
    #: requests preempted (evicted + re-queued) while forming this step
    preemptions: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"start": self.start, "cycles": self.cycles, "running": self.running,
                "queued": self.queued, "tokens": self.tokens,
                "prefills": self.prefills, "kv_rows": self.kv_rows,
                "kv_pages": self.kv_pages,
                "kv_capacity_pages": self.kv_capacity_pages,
                "preemptions": self.preemptions}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StepSample":
        return cls(start=float(payload["start"]), cycles=float(payload["cycles"]),
                   running=int(payload["running"]), queued=int(payload["queued"]),
                   tokens=int(payload["tokens"]), prefills=int(payload["prefills"]),
                   kv_rows=int(payload.get("kv_rows", 0)),
                   kv_pages=int(payload.get("kv_pages", 0)),
                   kv_capacity_pages=int(payload.get("kv_capacity_pages", 0)),
                   preemptions=int(payload.get("preemptions", 0)))


@dataclass
class ServingReport:
    """The complete result of one serving simulation."""

    #: the trace name this run served
    trace: str
    #: the schedule label the steps ran under
    schedule: str
    batch_cap: int
    requests: Tuple[RequestRecord, ...] = ()
    steps: Tuple[StepSample, ...] = ()
    #: end of the last step (the makespan of the run)
    total_cycles: float = 0.0
    #: distinct step signatures in this run (per-run, independent of how many
    #: were satisfied by the process-wide step memo — that independence is
    #: what keeps reports bit-identical across warm and cold runs)
    distinct_steps: int = 0
    #: memory-pressure summary of a capacity-bounded run; ``None`` when the
    #: platform's HBM is unbounded (the pre-memory behavior, bit-identical)
    memory: Optional[MemoryStats] = None
    #: descriptive payload of the scheduling policy the run used (see
    #: :meth:`repro.serve.policy.ServePolicy.describe`); ``None`` on reports
    #: predating the policy axis
    policy: Optional[Dict[str, Any]] = None
    #: the O(1)-memory statistics of a ``report_mode="streaming"`` run; when
    #: present, ``requests``/``steps`` are empty and every aggregate below
    #: dispatches here.  ``None`` = full mode, bit-identical to pre-streaming
    streaming: Optional[StreamingStats] = None

    def __post_init__(self) -> None:
        self.requests = tuple(self.requests)
        self.steps = tuple(self.steps)

    # -- aggregates ------------------------------------------------------------------
    @property
    def report_mode(self) -> str:
        """``"streaming"`` when the run kept sketches, else ``"full"``."""
        return "full" if self.streaming is None else "streaming"

    @property
    def num_requests(self) -> int:
        if self.streaming is not None:
            return self.streaming.num_requests
        return len(self.requests)

    @property
    def num_steps(self) -> int:
        if self.streaming is not None:
            return self.streaming.num_steps
        return len(self.steps)

    @property
    def total_output_tokens(self) -> int:
        if self.streaming is not None:
            return self.streaming.total_output_tokens
        return sum(r.output_tokens for r in self.requests)

    def ttft(self) -> Dict[str, float]:
        if self.streaming is not None:
            return self.streaming.ttft.summarize()
        return summarize([r.ttft for r in self.requests])

    def tpot(self) -> Dict[str, float]:
        if self.streaming is not None:
            return self.streaming.tpot.summarize()
        return summarize([r.tpot for r in self.requests if r.output_tokens > 1])

    def e2e(self) -> Dict[str, float]:
        if self.streaming is not None:
            return self.streaming.e2e.summarize()
        return summarize([r.e2e for r in self.requests])

    def per_priority(self) -> Dict[int, Dict[str, Any]]:
        """Per-priority-class request counts and latency percentile summaries."""
        if self.streaming is not None:
            return self.streaming.per_priority()
        return priority_breakdown(self.requests)

    def priority_classes(self) -> Tuple[int, ...]:
        """The priority classes present among the served requests, sorted."""
        if self.streaming is not None:
            return self.streaming.priority_classes()
        return tuple(sorted({r.priority for r in self.requests}))

    def slo_attainment_by_priority(self, ttft_slo: float) -> Dict[int, float]:
        """Per-class fraction of requests whose TTFT met the SLO."""
        if self.streaming is not None:
            return self.streaming.slo_attainment_by_priority(ttft_slo)
        attainment: Dict[int, float] = {}
        for cls, payload in self.per_priority().items():
            group = [r for r in self.requests if r.priority == cls]
            met = sum(1 for r in group if r.ttft <= ttft_slo)
            attainment[cls] = met / payload["requests"]
        return attainment

    @property
    def goodput(self) -> float:
        """Completed requests per million cycles."""
        if self.total_cycles <= 0:
            return 0.0
        return self.num_requests / self.total_cycles * MCYCLE

    @property
    def token_throughput(self) -> float:
        """Generated tokens per thousand cycles."""
        if self.total_cycles <= 0:
            return 0.0
        return self.total_output_tokens / self.total_cycles * 1000.0

    def slo_attainment(self, ttft_slo: float) -> float:
        """The fraction of requests whose TTFT met the SLO (in cycles)."""
        if self.streaming is not None:
            return self.streaming.slo_attainment(ttft_slo)
        if not self.requests:
            return 0.0
        met = sum(1 for r in self.requests if r.ttft <= ttft_slo)
        return met / len(self.requests)

    def slo_goodput(self, ttft_slo: float) -> float:
        """SLO-attaining completions per million cycles.

        *Goodput* in the strict sense: only requests whose first token met
        the TTFT budget count as useful work.  Past saturation this declines
        where raw :attr:`goodput` merely plateaus — queueing (and, under
        finite HBM, admission stalls / preemption recompute) pushes an
        ever-larger share of completions past the budget, which is the
        goodput cliff the memory-pressure experiment measures.
        """
        if self.total_cycles <= 0:
            return 0.0
        if self.streaming is not None:
            met = self.streaming.ttft.count_le(ttft_slo)
        else:
            met = sum(1 for r in self.requests if r.ttft <= ttft_slo)
        return met / self.total_cycles * MCYCLE

    def queue_depth(self) -> Dict[str, float]:
        """Mean / max of waiting (queued) and running requests over the steps."""
        if self.streaming is not None:
            return self.streaming.queue_depth()
        if not self.steps:
            return {"queued_mean": 0.0, "queued_max": 0.0,
                    "running_mean": 0.0, "running_max": 0.0}
        queued = [s.queued for s in self.steps]
        running = [s.running for s in self.steps]
        return {
            "queued_mean": float(sum(queued) / len(queued)),
            "queued_max": float(max(queued)),
            "running_mean": float(sum(running) / len(running)),
            "running_max": float(max(running)),
        }

    def utilization_heatmap(self, window_cycles: Optional[float] = None
                            ) -> list:
        """Per-window batch-fill / KV-occupancy rows over the run.

        Streaming reports return their timeline's aggregates directly (the
        window width was fixed when the run was configured — passing a
        different ``window_cycles`` here is a :class:`ConfigError`); full
        reports fold their step samples into a
        :class:`~repro.serve.streaming.WindowedTimeline` on the fly, so both
        modes produce identical heatmaps for the same run.
        """
        if self.streaming is not None:
            width = self.streaming.timeline.window_cycles
            if window_cycles is not None and float(window_cycles) != width:
                raise ConfigError(
                    f"streaming report windows are fixed at {width} cycles; "
                    f"cannot re-window to {window_cycles}")
            return self.streaming.utilization_heatmap(self.batch_cap)
        timeline = WindowedTimeline(window_cycles if window_cycles is not None
                                    else DEFAULT_WINDOW_CYCLES)
        for sample in self.steps:
            timeline.observe(sample)
        return timeline.utilization_heatmap(self.batch_cap)

    # -- flat metrics (what scenario grids and the sweep cache store) ----------------
    def metrics(self) -> Dict[str, float]:
        """The flat, JSON-able payload a serving sweep point reports."""
        flat: Dict[str, float] = {
            "cycles": float(self.total_cycles),
            "requests": float(self.num_requests),
            "output_tokens": float(self.total_output_tokens),
            "goodput_rpmc": float(self.goodput),
            "tokens_per_kcycle": float(self.token_throughput),
            "steps": float(self.num_steps),
            "distinct_steps": float(self.distinct_steps),
        }
        for prefix, summary in (("ttft", self.ttft()), ("tpot", self.tpot()),
                                ("e2e", self.e2e())):
            for key, value in summary.items():
                flat[f"{prefix}_{key}"] = value
        flat.update({f"queue_{k}": v for k, v in self.queue_depth().items()})
        # memory keys are always present so sweep rows stay rectangular
        # across bounded and unbounded platforms in the same grid
        flat.update(self.memory.metrics() if self.memory is not None
                    else MemoryStats.empty_metrics())
        return flat

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The full report as plain JSON, symmetric with :meth:`from_dict`.

        Full-mode payloads omit the ``streaming`` key entirely, keeping them
        byte-identical to pre-streaming serializations (plus the
        ``step_cache`` key, see below).

        ``step_cache`` snapshots the *process-wide* step-memo counters
        (:func:`~repro.serve.scheduler.step_cache_stats`) **at call time** —
        it reflects everything the process ran, not just this report's run,
        which is exactly what makes memoization efficacy observable in
        sweeps.  Being live state rather than run state, it is ignored by
        :meth:`from_dict` and excluded from :meth:`metrics` (sweep-cache
        payloads must be pure functions of the point).
        """
        # deferred: scheduler imports this module at import time
        from .scheduler import step_cache_stats

        payload = {
            "trace": self.trace,
            "schedule": self.schedule,
            "batch_cap": self.batch_cap,
            "total_cycles": self.total_cycles,
            "distinct_steps": self.distinct_steps,
            "memory": None if self.memory is None else self.memory.to_dict(),
            "policy": self.policy,
            "requests": [r.to_dict() for r in self.requests],
            "steps": [s.to_dict() for s in self.steps],
            "step_cache": step_cache_stats(),
        }
        if self.streaming is not None:
            payload["streaming"] = self.streaming.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServingReport":
        memory = payload.get("memory")
        streaming = payload.get("streaming")
        return cls(
            trace=payload["trace"],
            schedule=payload["schedule"],
            batch_cap=int(payload["batch_cap"]),
            total_cycles=float(payload["total_cycles"]),
            distinct_steps=int(payload["distinct_steps"]),
            memory=None if memory is None else MemoryStats.from_dict(memory),
            policy=payload.get("policy"),
            requests=tuple(RequestRecord.from_dict(r) for r in payload["requests"]),
            steps=tuple(StepSample.from_dict(s) for s in payload["steps"]),
            streaming=None if streaming is None
            else StreamingStats.from_dict(streaming),
        )


# ---------------------------------------------------------------------------
# Fleet-level results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler decision on the fleet timeline."""

    #: cycle at which the decision was taken (an arrival evaluation point)
    cycle: float
    #: ``"scale-up"`` (a cold replica spawned) or ``"scale-down"`` (retired)
    action: str
    #: active replicas *after* the event
    num_replicas: int
    #: the smoothed per-replica queue depth that triggered the decision
    signal: float

    def to_dict(self) -> Dict[str, Any]:
        return {"cycle": self.cycle, "action": self.action,
                "num_replicas": self.num_replicas, "signal": self.signal}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScalingEvent":
        return cls(cycle=float(payload["cycle"]), action=payload["action"],
                   num_replicas=int(payload["num_replicas"]),
                   signal=float(payload["signal"]))


@dataclass
class ReplicaReport:
    """One replica's serving history plus its fleet lifecycle.

    ``serving`` is a full single-engine :class:`ServingReport` — a fleet of
    one replica with zero warm-up wraps *exactly* the report
    :func:`~repro.serve.scheduler.simulate_serving` would produce.
    ``retired_at`` is the cycle the autoscaler stopped routing to the replica
    (it still drains its queue afterwards); ``None`` means active at the end.
    """

    replica_id: int
    spawned_at: float
    serving: ServingReport
    retired_at: Optional[float] = None

    @property
    def busy_cycles(self) -> float:
        """Cycles this replica spent executing steps."""
        if self.serving.streaming is not None:
            return float(self.serving.streaming.busy_cycles)
        return float(sum(s.cycles for s in self.serving.steps))

    def utilization(self, fleet_cycles: float) -> float:
        """Busy fraction of the replica's lifetime within the fleet run.

        The lifetime runs from spawn to the fleet makespan — a retired
        replica still exists (idle) until the run ends, so early scale-downs
        show up as low utilization rather than vanishing from the average.
        """
        span = max(fleet_cycles, self.serving.total_cycles) - self.spawned_at
        if span <= 0:
            return 0.0
        return self.busy_cycles / span

    def to_dict(self) -> Dict[str, Any]:
        return {"replica_id": self.replica_id, "spawned_at": self.spawned_at,
                "retired_at": self.retired_at, "serving": self.serving.to_dict()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReplicaReport":
        retired = payload.get("retired_at")
        return cls(replica_id=int(payload["replica_id"]),
                   spawned_at=float(payload["spawned_at"]),
                   retired_at=None if retired is None else float(retired),
                   serving=ServingReport.from_dict(payload["serving"]))


@dataclass
class FleetReport:
    """The complete result of one multi-replica serving simulation."""

    #: the trace name the fleet served
    trace: str
    #: the schedule label every replica ran under
    schedule: str
    #: the dispatcher's routing policy name
    routing: str
    #: replicas at simulation start (the autoscaler may add/retire more)
    initial_replicas: int
    #: cold-start penalty each replica paid before its first step
    warmup_cycles: float = 0.0
    replicas: Tuple[ReplicaReport, ...] = ()
    scaling_events: Tuple[ScalingEvent, ...] = ()
    #: end of the last step across the fleet (the makespan of the run)
    total_cycles: float = 0.0

    def __post_init__(self) -> None:
        self.replicas = tuple(self.replicas)
        self.scaling_events = tuple(self.scaling_events)

    # -- aggregates ------------------------------------------------------------------
    @property
    def requests(self) -> Tuple[RequestRecord, ...]:
        """Every served request across the fleet, ordered by request id."""
        merged = [r for replica in self.replicas for r in replica.serving.requests]
        return tuple(sorted(merged, key=lambda r: r.request_id))

    @property
    def num_requests(self) -> int:
        return sum(r.serving.num_requests for r in self.replicas)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.serving.total_output_tokens for r in self.replicas)

    @property
    def num_replicas(self) -> int:
        """Replicas that existed at any point during the run."""
        return len(self.replicas)

    @property
    def final_replicas(self) -> int:
        """Replicas still accepting traffic when the run ended."""
        return sum(1 for r in self.replicas if r.retired_at is None)

    def _merged_streaming(self) -> Optional[StreamingStats]:
        """The fleet's replica sketches merged, or ``None`` in full mode.

        Streaming aggregation only engages when *every* replica streamed —
        a mixed fleet (impossible through :func:`simulate_fleet`, which
        threads one ``report_mode`` to all replicas) falls back to the
        record-merging path.
        """
        stats = [r.serving.streaming for r in self.replicas]
        if not stats or any(s is None for s in stats):
            return None
        merged = StreamingStats(rel_accuracy=stats[0].rel_accuracy,
                                window_cycles=stats[0].timeline.window_cycles)
        for s in stats:
            merged.merge(s)
        return merged

    def latency_summaries(self) -> Dict[str, Dict[str, float]]:
        """TTFT / TPOT / e2e summaries over the fleet, merging requests once.

        The ``requests`` property concatenates and sorts every replica's
        records; calling :meth:`ttft` / :meth:`tpot` / :meth:`e2e` separately
        repeated that merge three times.  This does it once (or merges the
        replica sketches once in streaming mode) and summarizes all three
        latencies from the same sample.
        """
        streaming = self._merged_streaming()
        if streaming is not None:
            return {"ttft": streaming.ttft.summarize(),
                    "tpot": streaming.tpot.summarize(),
                    "e2e": streaming.e2e.summarize()}
        merged = self.requests
        return {"ttft": summarize([r.ttft for r in merged]),
                "tpot": summarize([r.tpot for r in merged
                                   if r.output_tokens > 1]),
                "e2e": summarize([r.e2e for r in merged])}

    def ttft(self) -> Dict[str, float]:
        return self.latency_summaries()["ttft"]

    def tpot(self) -> Dict[str, float]:
        return self.latency_summaries()["tpot"]

    def e2e(self) -> Dict[str, float]:
        return self.latency_summaries()["e2e"]

    def per_priority(self) -> Dict[int, Dict[str, Any]]:
        """Per-priority-class latency summaries over the whole fleet."""
        streaming = self._merged_streaming()
        if streaming is not None:
            return streaming.per_priority()
        return priority_breakdown(self.requests)

    @property
    def goodput(self) -> float:
        """Completed requests per million cycles of fleet makespan."""
        if self.total_cycles <= 0:
            return 0.0
        return self.num_requests / self.total_cycles * MCYCLE

    @property
    def token_throughput(self) -> float:
        """Generated tokens per thousand cycles of fleet makespan."""
        if self.total_cycles <= 0:
            return 0.0
        return self.total_output_tokens / self.total_cycles * 1000.0

    def utilization(self) -> Dict[str, float]:
        """Mean / min / max busy fraction across the replicas."""
        if not self.replicas:
            return {"mean": 0.0, "min": 0.0, "max": 0.0}
        fractions = [r.utilization(self.total_cycles) for r in self.replicas]
        return {"mean": float(sum(fractions) / len(fractions)),
                "min": float(min(fractions)), "max": float(max(fractions))}

    @property
    def imbalance(self) -> float:
        """Routing skew: max over mean busy cycles per replica (1.0 = even).

        0.0 when no replica did any work; a least-loaded policy should keep
        this near 1.0 where round-robin drifts upward under skewed traffic.
        """
        busy = [r.busy_cycles for r in self.replicas]
        if not busy or sum(busy) == 0:
            return 0.0
        return float(max(busy) / (sum(busy) / len(busy)))

    # -- memory pressure (zeros when every replica's HBM is unbounded) ---------------
    @property
    def preemptions(self) -> int:
        """Requests evicted mid-decode across the fleet."""
        return sum(r.serving.memory.preemptions for r in self.replicas
                   if r.serving.memory is not None)

    @property
    def recompute_tokens(self) -> int:
        """Generated tokens re-prefilled after eviction across the fleet."""
        return sum(r.serving.memory.recompute_tokens for r in self.replicas
                   if r.serving.memory is not None)

    @property
    def admission_stalls(self) -> int:
        """Steps whose queue head stalled on KV pages across the fleet."""
        return sum(r.serving.memory.admission_stalls for r in self.replicas
                   if r.serving.memory is not None)

    def kv_occupancy(self) -> Dict[str, float]:
        """Mean / max KV-page occupancy across the capacity-bounded replicas."""
        stats = [r.serving.memory for r in self.replicas
                 if r.serving.memory is not None]
        if not stats:
            return {"mean": 0.0, "max": 0.0}
        return {"mean": float(sum(m.occupancy_mean for m in stats) / len(stats)),
                "max": float(max(m.occupancy_max for m in stats))}

    # -- flat metrics (what scenario grids and the sweep cache store) ----------------
    def metrics(self) -> Dict[str, float]:
        """The flat, JSON-able payload a fleet sweep point reports."""
        flat: Dict[str, float] = {
            "cycles": float(self.total_cycles),
            "requests": float(self.num_requests),
            "output_tokens": float(self.total_output_tokens),
            "goodput_rpmc": float(self.goodput),
            "tokens_per_kcycle": float(self.token_throughput),
            "replicas_initial": float(self.initial_replicas),
            "replicas_total": float(self.num_replicas),
            "replicas_final": float(self.final_replicas),
            "scale_ups": float(sum(1 for e in self.scaling_events
                                   if e.action == "scale-up")),
            "scale_downs": float(sum(1 for e in self.scaling_events
                                     if e.action == "scale-down")),
            "imbalance": float(self.imbalance),
            "preemptions": float(self.preemptions),
            "recompute_tokens": float(self.recompute_tokens),
            "admission_stalls": float(self.admission_stalls),
        }
        for key, value in self.utilization().items():
            flat[f"util_{key}"] = value
        for key, value in self.kv_occupancy().items():
            flat[f"kv_occupancy_{key}"] = value
        # one requests merge (or sketch merge) feeds all three summaries
        for prefix, summary in self.latency_summaries().items():
            for key, value in summary.items():
                flat[f"{prefix}_{key}"] = value
        return flat

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The full report as plain JSON, symmetric with :meth:`from_dict`."""
        return {
            "trace": self.trace,
            "schedule": self.schedule,
            "routing": self.routing,
            "initial_replicas": self.initial_replicas,
            "warmup_cycles": self.warmup_cycles,
            "total_cycles": self.total_cycles,
            "replicas": [r.to_dict() for r in self.replicas],
            "scaling_events": [e.to_dict() for e in self.scaling_events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FleetReport":
        return cls(
            trace=payload["trace"],
            schedule=payload["schedule"],
            routing=payload["routing"],
            initial_replicas=int(payload["initial_replicas"]),
            warmup_cycles=float(payload["warmup_cycles"]),
            total_cycles=float(payload["total_cycles"]),
            replicas=tuple(ReplicaReport.from_dict(r)
                           for r in payload["replicas"]),
            scaling_events=tuple(ScalingEvent.from_dict(e)
                                 for e in payload["scaling_events"]),
        )
