"""Streaming serving analytics: O(1)-memory percentile sketches and timelines.

A full-mode :class:`~repro.serve.report.ServingReport` holds every
:class:`~repro.serve.report.RequestRecord` and
:class:`~repro.serve.report.StepSample` — O(requests + steps) memory, which is
what keeps million-request capacity studies from running.  This module is the
``"streaming"`` report mode's backing store:

* :class:`QuantileSketch` — an online nearest-rank percentile estimator over
  log-spaced buckets (the DDSketch discipline): a value ``v`` lands in bucket
  ``ceil(log_gamma(v))`` with ``gamma = (1 + a) / (1 - a)``, so every bucket
  spans a fixed *relative* width and the bucket midpoint is within relative
  error ``a`` (``rel_accuracy``) of any value it holds.  Bucket **counts are
  exact**, therefore the sketch's ``quantile(q)`` answer is guaranteed within
  relative error ``a`` of the exact nearest-rank percentile of the observed
  sample (pinned by ``tests/serve/test_streaming.py`` under constant, bimodal
  and heavy-tailed adversarial inputs).  Deterministic (no randomization,
  no compaction), mergeable (fleet aggregation sums bucket counts) and
  serializable,
* :class:`WindowedTimeline` — fixed cycle-width windows aggregating the
  queue-depth timeline (steps, step cycles, tokens, prefills, queued/running
  sums and maxima, KV-page peaks, preemptions) instead of one ``StepSample``
  per step.  Integer sums are exact, so streaming ``queue_depth()`` means are
  bit-identical to the full-mode means over the same steps,
* :class:`StreamingStats` — the per-run bundle the engine feeds:
  TTFT / TPOT / e2e sketches (aggregate and per priority class), request and
  token counters, busy cycles and the windowed timeline.  The report memory
  of a streaming run is O(windows + sketch buckets), independent of the
  request count.

Everything here is duck-typed against the record/step objects (attribute
access only) so the module imports nothing from :mod:`repro.serve.report` —
``report`` imports *us* for the streaming field on ``ServingReport``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Tuple

from ..core.errors import ConfigError

#: the report modes a ServeConfig may request
REPORT_MODES = ("full", "streaming")

#: default relative accuracy of the latency sketches (1% of the exact value)
DEFAULT_SKETCH_ACCURACY = 0.01

#: default streaming-timeline window width in cycles
DEFAULT_WINDOW_CYCLES = 100_000.0

#: the percentile points every summary reports (mirrors report.PERCENTILE_POINTS;
#: duplicated here because report imports this module, not the other way round)
_PERCENTILE_POINTS = (50, 90, 95, 99)


class QuantileSketch:
    """An online nearest-rank percentile sketch with bounded relative error.

    Observations must be non-negative (latencies).  Zero values keep their own
    exact counter; positive values land in log-spaced buckets of relative
    width ``rel_accuracy``.  ``count`` / ``min`` / ``max`` / ``sum`` are exact,
    so ``mean`` and the summary extremes carry no sketch error at all — only
    the interior percentiles are approximate, within ``rel_accuracy``.
    """

    def __init__(self, rel_accuracy: float = DEFAULT_SKETCH_ACCURACY) -> None:
        if not 0.0 < rel_accuracy < 1.0:
            raise ConfigError(f"sketch rel_accuracy must be in (0, 1), "
                              f"got {rel_accuracy}")
        self.rel_accuracy = float(rel_accuracy)
        self._gamma = (1.0 + self.rel_accuracy) / (1.0 - self.rel_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self.sum = 0.0

    def _bucket_index(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_gamma))

    def _bucket_value(self, index: int) -> float:
        # the midpoint of (gamma^(i-1), gamma^i] in relative terms: within
        # rel_accuracy of every value the bucket holds
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        if value < 0.0:
            raise ConfigError(f"QuantileSketch observes latencies (>= 0), "
                              f"got {value}")
        if value == 0.0:
            self.zero_count += 1
        else:
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.sum += value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.sum / self.count

    def quantile(self, q: float) -> float:
        """Nearest-rank percentile estimate, within ``rel_accuracy`` relative
        error of the exact nearest-rank value over the observed sample."""
        if self.count == 0:
            raise ConfigError("quantile of an empty sketch")
        if not 0 <= q <= 100:
            raise ConfigError(f"quantile q must be in [0, 100], got {q}")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = self.zero_count
        if rank <= seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank <= seen:
                # clamping to the exact extremes keeps the estimate inside
                # the observed range without breaking the error bound
                return min(max(self._bucket_value(index), self.min), self.max)
        return self.max  # unreachable unless float drift; max is exact

    def count_le(self, threshold: float) -> int:
        """Observations at or below ``threshold`` (e.g. an SLO budget).

        Exact except for values within ``rel_accuracy`` of the threshold
        itself: the bucket containing the threshold is counted whole, so the
        answer may include values up to ``threshold * (1 + rel_accuracy)``.
        """
        if threshold < 0.0:
            return 0
        total = self.zero_count
        if threshold == 0.0:
            return total
        limit = self._bucket_index(threshold)
        for index, count in self._buckets.items():
            if index <= limit:
                total += count
        return total

    def summarize(self) -> Dict[str, float]:
        """The same summary shape as :func:`repro.serve.report.summarize`."""
        if self.count == 0:
            return {"mean": 0.0, "max": 0.0,
                    **{f"p{q}": 0.0 for q in _PERCENTILE_POINTS},
                    "count": 0.0}
        return {"mean": float(self.mean), "max": float(self.max),
                **{f"p{q}": float(self.quantile(q))
                   for q in _PERCENTILE_POINTS},
                "count": float(self.count)}

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` in (fleet aggregation).  Accuracies must match."""
        if other.rel_accuracy != self.rel_accuracy:
            raise ConfigError(
                f"cannot merge sketches with different accuracies "
                f"({self.rel_accuracy} vs {other.rel_accuracy})")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.sum += other.sum

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def to_dict(self) -> Dict[str, Any]:
        return {"rel_accuracy": self.rel_accuracy,
                "count": self.count, "zero_count": self.zero_count,
                "min": None if self.count == 0 else self.min,
                "max": None if self.count == 0 else self.max,
                "sum": self.sum,
                "buckets": {str(i): c for i, c in sorted(self._buckets.items())}}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(rel_accuracy=float(payload["rel_accuracy"]))
        sketch.count = int(payload["count"])
        sketch.zero_count = int(payload["zero_count"])
        sketch.min = math.inf if payload["min"] is None else float(payload["min"])
        sketch.max = -math.inf if payload["max"] is None else float(payload["max"])
        sketch.sum = float(payload["sum"])
        sketch._buckets = {int(i): int(c)
                           for i, c in payload["buckets"].items()}
        return sketch


class _Window:
    """One fixed-width timeline window's aggregates (all counters exact)."""

    __slots__ = ("steps", "cycles", "tokens", "prefills", "queued_sum",
                 "queued_max", "running_sum", "running_max", "kv_rows_sum",
                 "kv_rows_max", "kv_pages_sum", "kv_pages_max",
                 "kv_capacity_pages", "preemptions")

    def __init__(self) -> None:
        self.steps = 0
        self.cycles = 0.0
        self.tokens = 0
        self.prefills = 0
        self.queued_sum = 0
        self.queued_max = 0
        self.running_sum = 0
        self.running_max = 0
        self.kv_rows_sum = 0
        self.kv_rows_max = 0
        self.kv_pages_sum = 0
        self.kv_pages_max = 0
        #: pool size seen by the window's steps (0 = unbounded platform)
        self.kv_capacity_pages = 0
        self.preemptions = 0

    def observe(self, sample) -> None:
        self.steps += 1
        self.cycles += sample.cycles
        self.tokens += sample.tokens
        self.prefills += sample.prefills
        self.queued_sum += sample.queued
        self.queued_max = max(self.queued_max, sample.queued)
        self.running_sum += sample.running
        self.running_max = max(self.running_max, sample.running)
        self.kv_rows_sum += sample.kv_rows
        self.kv_rows_max = max(self.kv_rows_max, sample.kv_rows)
        self.kv_pages_sum += sample.kv_pages
        self.kv_pages_max = max(self.kv_pages_max, sample.kv_pages)
        self.kv_capacity_pages = max(self.kv_capacity_pages,
                                     sample.kv_capacity_pages)
        self.preemptions += sample.preemptions

    def merge(self, other: "_Window") -> None:
        self.steps += other.steps
        self.cycles += other.cycles
        self.tokens += other.tokens
        self.prefills += other.prefills
        self.queued_sum += other.queued_sum
        self.queued_max = max(self.queued_max, other.queued_max)
        self.running_sum += other.running_sum
        self.running_max = max(self.running_max, other.running_max)
        self.kv_rows_sum += other.kv_rows_sum
        self.kv_rows_max = max(self.kv_rows_max, other.kv_rows_max)
        self.kv_pages_sum += other.kv_pages_sum
        self.kv_pages_max = max(self.kv_pages_max, other.kv_pages_max)
        self.kv_capacity_pages = max(self.kv_capacity_pages,
                                     other.kv_capacity_pages)
        self.preemptions += other.preemptions

    def to_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "_Window":
        window = cls()
        for slot in cls.__slots__:
            # .get keeps payloads serialized before a slot existed loading
            # (the utilization-heatmap slots arrived after the format shipped)
            setattr(window, slot, payload.get(slot, 0))
        window.cycles = float(window.cycles)
        return window


class WindowedTimeline:
    """The queue-depth timeline in fixed cycle-width windows.

    A step whose start cycle is ``t`` lands in window ``floor(t /
    window_cycles)``.  Memory is O(occupied windows) — for a run of makespan
    ``T`` that is at most ``T / window_cycles`` entries, however many steps
    (or requests) the run processed.
    """

    def __init__(self, window_cycles: float = DEFAULT_WINDOW_CYCLES) -> None:
        if window_cycles <= 0:
            raise ConfigError(f"window_cycles must be > 0, got {window_cycles}")
        self.window_cycles = float(window_cycles)
        self._windows: Dict[int, _Window] = {}

    def observe(self, sample) -> None:
        index = int(sample.start // self.window_cycles)
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window()
        window.observe(sample)

    @property
    def num_windows(self) -> int:
        return len(self._windows)

    @property
    def num_steps(self) -> int:
        return sum(w.steps for w in self._windows.values())

    def windows(self) -> Iterator[Tuple[int, _Window]]:
        """The occupied windows in time order."""
        for index in sorted(self._windows):
            yield index, self._windows[index]

    def rows(self) -> List[Dict[str, Any]]:
        """The timeline as flat JSON-able rows (one per occupied window)."""
        return [{"window": index,
                 "start": index * self.window_cycles,
                 **window.to_dict()}
                for index, window in self.windows()]

    def queue_depth(self) -> Dict[str, float]:
        """Mean / max queued and running over every step, windows collapsed.

        The sums are integer-exact, so these equal the full-mode
        :meth:`~repro.serve.report.ServingReport.queue_depth` values over the
        same steps bit-for-bit.
        """
        steps = self.num_steps
        if steps == 0:
            return {"queued_mean": 0.0, "queued_max": 0.0,
                    "running_mean": 0.0, "running_max": 0.0}
        windows = self._windows.values()
        return {
            "queued_mean": float(sum(w.queued_sum for w in windows) / steps),
            "queued_max": float(max(w.queued_max for w in windows)),
            "running_mean": float(sum(w.running_sum for w in windows) / steps),
            "running_max": float(max(w.running_max for w in windows)),
        }

    def utilization_heatmap(self, batch_cap: int) -> List[Dict[str, float]]:
        """Per-window utilization aggregates: batch fill and KV occupancy.

        One row per occupied window, time-ordered — the columns of a
        utilization heatmap over the run:

        * ``batch_fill_mean`` / ``batch_fill_max`` — running requests as a
          fraction of ``batch_cap`` (1.0 = the continuous batch is full),
        * ``kv_occupancy_mean`` / ``kv_occupancy_max`` — KV pages in use as
          a fraction of the pool (0.0 throughout on unbounded platforms,
          where no pool exists),
        * ``kv_rows_mean`` — mean resident KV rows per step (meaningful on
          unbounded platforms too),
        * ``steps``, ``tokens``, ``preemptions`` — the window's raw volume.

        The means divide integer-exact sums, so full-mode and streaming
        reports of the same run produce identical heatmaps.
        """
        if batch_cap < 1:
            raise ConfigError(f"batch_cap must be >= 1, got {batch_cap}")
        rows: List[Dict[str, float]] = []
        for index, window in self.windows():
            steps = window.steps
            capacity = window.kv_capacity_pages
            rows.append({
                "window": float(index),
                "start": float(index * self.window_cycles),
                "steps": float(steps),
                "tokens": float(window.tokens),
                "batch_fill_mean": window.running_sum / (steps * batch_cap),
                "batch_fill_max": window.running_max / batch_cap,
                "kv_occupancy_mean": (window.kv_pages_sum / (steps * capacity)
                                      if capacity else 0.0),
                "kv_occupancy_max": (window.kv_pages_max / capacity
                                     if capacity else 0.0),
                "kv_rows_mean": window.kv_rows_sum / steps,
                "preemptions": float(window.preemptions),
            })
        return rows

    def merge(self, other: "WindowedTimeline") -> None:
        if other.window_cycles != self.window_cycles:
            raise ConfigError(
                f"cannot merge timelines with different window widths "
                f"({self.window_cycles} vs {other.window_cycles})")
        for index, window in other._windows.items():
            mine = self._windows.get(index)
            if mine is None:
                mine = self._windows[index] = _Window()
            mine.merge(window)

    def to_dict(self) -> Dict[str, Any]:
        return {"window_cycles": self.window_cycles,
                "windows": {str(i): w.to_dict()
                            for i, w in sorted(self._windows.items())}}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WindowedTimeline":
        timeline = cls(window_cycles=float(payload["window_cycles"]))
        timeline._windows = {int(i): _Window.from_dict(w)
                             for i, w in payload["windows"].items()}
        return timeline


class StreamingStats:
    """Everything a streaming-mode serving run reports, in O(1) memory.

    The engine feeds :meth:`observe_step` once per scheduler step and
    :meth:`observe_request` once per completion — instead of appending to the
    full-mode record/step lists — and :class:`~repro.serve.report.
    ServingReport` dispatches its aggregates here when the field is present.
    """

    def __init__(self, rel_accuracy: float = DEFAULT_SKETCH_ACCURACY,
                 window_cycles: float = DEFAULT_WINDOW_CYCLES) -> None:
        self.rel_accuracy = float(rel_accuracy)
        self.ttft = QuantileSketch(rel_accuracy)
        self.tpot = QuantileSketch(rel_accuracy)
        self.e2e = QuantileSketch(rel_accuracy)
        self.timeline = WindowedTimeline(window_cycles)
        #: priority class -> {"ttft": sketch, "tpot": sketch, "e2e": sketch}
        self._classes: Dict[int, Dict[str, QuantileSketch]] = {}
        self.num_requests = 0
        self.total_output_tokens = 0
        self.num_steps = 0
        self.busy_cycles = 0.0

    def _class_sketches(self, priority: int) -> Dict[str, QuantileSketch]:
        trio = self._classes.get(priority)
        if trio is None:
            trio = self._classes[priority] = {
                "ttft": QuantileSketch(self.rel_accuracy),
                "tpot": QuantileSketch(self.rel_accuracy),
                "e2e": QuantileSketch(self.rel_accuracy),
            }
        return trio

    def observe_request(self, record) -> None:
        """Fold one completed request (anything with the record attributes)."""
        self.num_requests += 1
        self.total_output_tokens += record.output_tokens
        trio = self._class_sketches(record.priority)
        self.ttft.observe(record.ttft)
        trio["ttft"].observe(record.ttft)
        self.e2e.observe(record.e2e)
        trio["e2e"].observe(record.e2e)
        if record.output_tokens > 1:
            self.tpot.observe(record.tpot)
            trio["tpot"].observe(record.tpot)

    def observe_step(self, sample) -> None:
        """Fold one scheduler step (anything with the StepSample attributes)."""
        self.num_steps += 1
        self.busy_cycles += sample.cycles
        self.timeline.observe(sample)

    # -- the ServingReport-facing aggregates -----------------------------------------
    def queue_depth(self) -> Dict[str, float]:
        return self.timeline.queue_depth()

    def utilization_heatmap(self, batch_cap: int) -> List[Dict[str, float]]:
        """Per-window batch-fill / KV-occupancy rows (see the timeline)."""
        return self.timeline.utilization_heatmap(batch_cap)

    def priority_classes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._classes))

    def per_priority(self) -> Dict[int, Dict[str, Any]]:
        """The same shape as :func:`repro.serve.report.priority_breakdown`."""
        breakdown: Dict[int, Dict[str, Any]] = {}
        for cls in sorted(self._classes):
            trio = self._classes[cls]
            breakdown[cls] = {
                "requests": trio["ttft"].count,
                "ttft": trio["ttft"].summarize(),
                "tpot": trio["tpot"].summarize(),
                "e2e": trio["e2e"].summarize(),
            }
        return breakdown

    def slo_attainment(self, ttft_slo: float) -> float:
        """Fraction of requests whose TTFT met the SLO (sketch-resolution)."""
        if self.num_requests == 0:
            return 0.0
        return self.ttft.count_le(ttft_slo) / self.num_requests

    def slo_attainment_by_priority(self, ttft_slo: float) -> Dict[int, float]:
        return {cls: trio["ttft"].count_le(ttft_slo) / trio["ttft"].count
                for cls, trio in sorted(self._classes.items())
                if trio["ttft"].count}

    def merge(self, other: "StreamingStats") -> None:
        """Fold another run's stats in (the fleet aggregation path)."""
        self.ttft.merge(other.ttft)
        self.tpot.merge(other.tpot)
        self.e2e.merge(other.e2e)
        self.timeline.merge(other.timeline)
        for cls, trio in other._classes.items():
            mine = self._class_sketches(cls)
            for key in ("ttft", "tpot", "e2e"):
                mine[key].merge(trio[key])
        self.num_requests += other.num_requests
        self.total_output_tokens += other.total_output_tokens
        self.num_steps += other.num_steps
        self.busy_cycles += other.busy_cycles

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rel_accuracy": self.rel_accuracy,
            "num_requests": self.num_requests,
            "total_output_tokens": self.total_output_tokens,
            "num_steps": self.num_steps,
            "busy_cycles": self.busy_cycles,
            "ttft": self.ttft.to_dict(),
            "tpot": self.tpot.to_dict(),
            "e2e": self.e2e.to_dict(),
            "timeline": self.timeline.to_dict(),
            "classes": {str(cls): {key: sketch.to_dict()
                                   for key, sketch in trio.items()}
                        for cls, trio in sorted(self._classes.items())},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StreamingStats":
        stats = cls(rel_accuracy=float(payload["rel_accuracy"]),
                    window_cycles=float(payload["timeline"]["window_cycles"]))
        stats.num_requests = int(payload["num_requests"])
        stats.total_output_tokens = int(payload["total_output_tokens"])
        stats.num_steps = int(payload["num_steps"])
        stats.busy_cycles = float(payload["busy_cycles"])
        stats.ttft = QuantileSketch.from_dict(payload["ttft"])
        stats.tpot = QuantileSketch.from_dict(payload["tpot"])
        stats.e2e = QuantileSketch.from_dict(payload["e2e"])
        stats.timeline = WindowedTimeline.from_dict(payload["timeline"])
        stats._classes = {
            int(key): {name: QuantileSketch.from_dict(sk)
                       for name, sk in trio.items()}
            for key, trio in payload["classes"].items()}
        return stats


def resolve_report_mode(mode: str) -> str:
    """Validate a report mode name (``"full"`` or ``"streaming"``)."""
    if mode not in REPORT_MODES:
        raise ConfigError(f"unknown report mode {mode!r}; "
                          f"expected one of {list(REPORT_MODES)}")
    return mode


def make_streaming_stats(rel_accuracy: float = DEFAULT_SKETCH_ACCURACY,
                         window_cycles: float = DEFAULT_WINDOW_CYCLES,
                         ) -> StreamingStats:
    """A fresh :class:`StreamingStats` (the engine's constructor hook)."""
    return StreamingStats(rel_accuracy=rel_accuracy,
                          window_cycles=window_cycles)
