"""Production-shaped workload generators behind a name registry.

:func:`~repro.serve.arrivals.poisson_trace` and
:func:`~repro.serve.arrivals.burst_trace` cover the textbook open-loop
shapes; production traffic is messier — heavy-tailed request lengths,
several tenants with different rate/length profiles sharing one fleet, and
rates that swing over the day.  This module packages those shapes as
**registered generators** (the same shared registry index that backs the
eviction / routing / scheduling policies, kind ``"generator"``), so a trace
shape is a sweepable string axis exactly like a policy or a platform:

* ``"poisson"`` / ``"burst"`` — the existing generators, registered,
* ``"heavy-tail"`` — log-normal body with a Pareto tail mixed in: a small
  fraction of requests carries pareto-distributed prompt *and* output
  lengths, the shape that makes continuous batching earn its keep,
* ``"diurnal"`` — a time-varying Poisson process (sinusoidal rate curve)
  realized by thinning: candidates arrive at the peak rate and survive with
  probability ``rate(t) / peak`` — the standard exact simulation of an
  inhomogeneous Poisson process,
* ``"ramp"`` — the same thinning with a linearly growing rate: the
  saturation-finding workload (where does the queue start diverging?),
* ``"multitenant"`` — independent per-tenant Poisson processes (each tenant
  a rate share plus its own length profile) superposed into one trace, with
  tenant identity mapped onto :attr:`~repro.serve.arrivals.Request.priority`
  classes so the priority-aware scheduling policies and the per-class report
  breakdowns see the blend.

Every generator is a pure function of ``(rate, num_requests, seed, ...)`` —
same arguments, bit-identical trace — and returns an ordinary
:class:`~repro.serve.arrivals.ArrivalTrace`, so generated traffic records,
replays and serializes exactly like hand-built traces (including the JSONL
format, :func:`~repro.serve.arrivals.save_trace_jsonl`).

Custom generators register with :func:`register_generator`; the ``"serve"``
sweep task and the scenario library resolve them by name through
:func:`generate_trace`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigError
from .arrivals import (DEFAULT_OUTPUT_MAX, DEFAULT_OUTPUT_MEAN,
                       DEFAULT_OUTPUT_SIGMA, DEFAULT_PROMPT_MAX,
                       DEFAULT_PROMPT_MEAN, DEFAULT_PROMPT_QUANTUM,
                       DEFAULT_PROMPT_SIGMA, MCYCLE, ArrivalTrace, Request,
                       _lognormal_lengths, burst_trace, poisson_trace,
                       quantize_up)
from .registry import (attach_registry, registered_names, resolve_registered,
                       seal_builtins)

#: name -> generator callable; reach it via :func:`get_generator` so unknown
#: names raise a listing ConfigError, not a KeyError
GENERATORS: Dict[str, Callable[..., ArrivalTrace]] = \
    attach_registry("generator", {})


def register_generator(name: str):
    """Class-less registration decorator for trace generators.

    A generator is any callable ``f(rate, num_requests, seed=0, name=None,
    **kwargs) -> ArrivalTrace`` that is a pure function of its arguments.
    """
    def decorator(fn: Callable[..., ArrivalTrace]):
        if name in GENERATORS:
            raise ConfigError(f"trace generator {name!r} is already registered")
        GENERATORS[name] = fn
        return fn
    return decorator


def get_generator(name: str) -> Callable[..., ArrivalTrace]:
    """The registered generator for ``name`` (ConfigError lists known names)."""
    return resolve_registered("generator", name)


def generator_names() -> List[str]:
    """The registered generator names, sorted."""
    return registered_names("generator")


def generate_trace(generator: str, rate: float, num_requests: int,
                   seed: int = 0, name: Optional[str] = None,
                   **kwargs: Any) -> ArrivalTrace:
    """Build a trace through a registered generator — the one entry point
    the sweep tasks and scenario library use to turn a generator *name*
    plus knobs into requests."""
    return get_generator(generator)(rate=rate, num_requests=num_requests,
                                    seed=seed, name=name, **kwargs)


def _check_rate_and_count(rate: float, num_requests: int) -> None:
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate}")
    if num_requests <= 0:
        raise ConfigError(f"num_requests must be positive, got {num_requests}")


# ---------------------------------------------------------------------------
# Builtin generators
# ---------------------------------------------------------------------------

register_generator("poisson")(poisson_trace)
register_generator("burst")(burst_trace)


@register_generator("heavy-tail")
def heavy_tail_trace(rate: float, num_requests: int, seed: int = 0,
                     name: Optional[str] = None,
                     prompt_mean: float = DEFAULT_PROMPT_MEAN,
                     prompt_sigma: float = DEFAULT_PROMPT_SIGMA,
                     prompt_max: int = DEFAULT_PROMPT_MAX,
                     prompt_quantum: int = DEFAULT_PROMPT_QUANTUM,
                     output_mean: float = DEFAULT_OUTPUT_MEAN,
                     output_sigma: float = DEFAULT_OUTPUT_SIGMA,
                     output_max: int = DEFAULT_OUTPUT_MAX,
                     tail_frac: float = 0.05,
                     tail_alpha: float = 1.5) -> ArrivalTrace:
    """Poisson arrivals with a Pareto tail mixed into the length population.

    A ``tail_frac`` fraction of requests replaces both its prompt and output
    length with ``(pareto(tail_alpha) + 1) * mean`` draws — unbounded-variance
    monsters (clipped to the same maxima as everyone else) amid the log-normal
    body.  ``tail_alpha`` close to 1 makes the tail vicious; 2+ tames it.
    """
    _check_rate_and_count(rate, num_requests)
    if not 0.0 <= tail_frac < 1.0:
        raise ConfigError(f"tail_frac must be in [0, 1), got {tail_frac}")
    if tail_alpha <= 0:
        raise ConfigError(f"tail_alpha must be positive, got {tail_alpha}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=MCYCLE / rate, size=num_requests)
    gaps[0] = 0.0
    arrivals = np.cumsum(gaps)
    prompts = _lognormal_lengths(rng, num_requests, prompt_mean, prompt_sigma,
                                 prompt_quantum, prompt_max)
    outputs = _lognormal_lengths(rng, num_requests, output_mean, output_sigma,
                                 1, output_max)
    tail = rng.random(num_requests) < tail_frac
    tail_prompts = (rng.pareto(tail_alpha, size=num_requests) + 1.0) * prompt_mean
    tail_outputs = (rng.pareto(tail_alpha, size=num_requests) + 1.0) * output_mean
    prompts = np.where(tail, np.clip(np.round(tail_prompts), prompt_quantum,
                                     prompt_max).astype(int), prompts)
    outputs = np.where(tail, np.clip(np.round(tail_outputs), 1,
                                     output_max).astype(int), outputs)
    requests = tuple(
        Request(request_id=i, arrival=float(round(arrivals[i], 3)),
                prompt_tokens=quantize_up(int(prompts[i]), prompt_quantum),
                output_tokens=int(outputs[i]))
        for i in range(num_requests))
    return ArrivalTrace(
        name=name or f"heavytail-r{rate:g}-n{num_requests}-s{seed}",
        requests=requests)


def _thinned_arrivals(rng: np.random.Generator, num_requests: int,
                      peak_rate: float,
                      rate_at: Callable[[float], float]) -> List[float]:
    """Exact inhomogeneous-Poisson arrivals by thinning.

    Candidates arrive as a homogeneous Poisson process at ``peak_rate``; each
    candidate at time ``t`` survives with probability ``rate_at(t) /
    peak_rate``.  ``rate_at`` must never exceed ``peak_rate`` or the law is
    wrong — callers construct the envelope accordingly.
    """
    arrivals: List[float] = []
    t = 0.0
    while len(arrivals) < num_requests:
        t += rng.exponential(scale=MCYCLE / peak_rate)
        if rng.random() * peak_rate <= rate_at(t):
            arrivals.append(t)
    return arrivals


def _lengths_and_requests(rng: np.random.Generator, arrivals: List[float],
                          prompt_mean: float, prompt_sigma: float,
                          prompt_max: int, prompt_quantum: int,
                          output_mean: float, output_sigma: float,
                          output_max: int) -> Tuple[Request, ...]:
    count = len(arrivals)
    prompts = _lognormal_lengths(rng, count, prompt_mean, prompt_sigma,
                                 prompt_quantum, prompt_max)
    outputs = _lognormal_lengths(rng, count, output_mean, output_sigma,
                                 1, output_max)
    return tuple(
        Request(request_id=i, arrival=float(round(arrivals[i], 3)),
                prompt_tokens=quantize_up(int(prompts[i]), prompt_quantum),
                output_tokens=int(outputs[i]))
        for i in range(count))


@register_generator("diurnal")
def diurnal_trace(rate: float, num_requests: int, seed: int = 0,
                  name: Optional[str] = None,
                  amplitude: float = 0.5,
                  period_mcycles: float = 4.0,
                  prompt_mean: float = DEFAULT_PROMPT_MEAN,
                  prompt_sigma: float = DEFAULT_PROMPT_SIGMA,
                  prompt_max: int = DEFAULT_PROMPT_MAX,
                  prompt_quantum: int = DEFAULT_PROMPT_QUANTUM,
                  output_mean: float = DEFAULT_OUTPUT_MEAN,
                  output_sigma: float = DEFAULT_OUTPUT_SIGMA,
                  output_max: int = DEFAULT_OUTPUT_MAX) -> ArrivalTrace:
    """A sinusoidal rate curve: ``rate * (1 + amplitude * sin(2πt/period))``.

    The simulated day: traffic swings between ``rate*(1-amplitude)`` and
    ``rate*(1+amplitude)`` with period ``period_mcycles`` million cycles.
    An autoscaler should track the swell; a fixed fleet provisioned for the
    mean drowns at every peak.
    """
    _check_rate_and_count(rate, num_requests)
    if not 0.0 <= amplitude <= 1.0:
        raise ConfigError(f"amplitude must be in [0, 1], got {amplitude}")
    if period_mcycles <= 0:
        raise ConfigError(f"period_mcycles must be positive, "
                          f"got {period_mcycles}")
    period = period_mcycles * MCYCLE
    peak = rate * (1.0 + amplitude)

    def rate_at(t: float) -> float:
        return rate * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))

    rng = np.random.default_rng(seed)
    arrivals = _thinned_arrivals(rng, num_requests, peak, rate_at)
    requests = _lengths_and_requests(rng, arrivals, prompt_mean, prompt_sigma,
                                     prompt_max, prompt_quantum, output_mean,
                                     output_sigma, output_max)
    return ArrivalTrace(
        name=name or f"diurnal-r{rate:g}-n{num_requests}-s{seed}",
        requests=requests)


@register_generator("ramp")
def ramp_trace(rate: float, num_requests: int, seed: int = 0,
               name: Optional[str] = None,
               start_frac: float = 0.25,
               ramp_mcycles: float = 4.0,
               prompt_mean: float = DEFAULT_PROMPT_MEAN,
               prompt_sigma: float = DEFAULT_PROMPT_SIGMA,
               prompt_max: int = DEFAULT_PROMPT_MAX,
               prompt_quantum: int = DEFAULT_PROMPT_QUANTUM,
               output_mean: float = DEFAULT_OUTPUT_MEAN,
               output_sigma: float = DEFAULT_OUTPUT_SIGMA,
               output_max: int = DEFAULT_OUTPUT_MAX) -> ArrivalTrace:
    """A linear rate ramp from ``start_frac * rate`` up to ``rate``.

    The rate grows linearly over ``ramp_mcycles`` million cycles and holds at
    ``rate`` afterwards — sweep the target rate and watch where the queue
    depth timeline stops returning to zero: that knee is the capacity the
    ``capacity`` experiment brackets.
    """
    _check_rate_and_count(rate, num_requests)
    if not 0.0 < start_frac <= 1.0:
        raise ConfigError(f"start_frac must be in (0, 1], got {start_frac}")
    if ramp_mcycles <= 0:
        raise ConfigError(f"ramp_mcycles must be positive, got {ramp_mcycles}")
    ramp = ramp_mcycles * MCYCLE

    def rate_at(t: float) -> float:
        return rate * min(1.0, start_frac + (1.0 - start_frac) * t / ramp)

    rng = np.random.default_rng(seed)
    arrivals = _thinned_arrivals(rng, num_requests, rate, rate_at)
    requests = _lengths_and_requests(rng, arrivals, prompt_mean, prompt_sigma,
                                     prompt_max, prompt_quantum, output_mean,
                                     output_sigma, output_max)
    return ArrivalTrace(
        name=name or f"ramp-r{rate:g}-n{num_requests}-s{seed}",
        requests=requests)


#: the default tenant blend: who shares a production fleet.  ``share`` splits
#: both the arrival rate and the request count; ``priority`` is the class the
#: tenant's requests carry (0 = most urgent — the interactive tier)
DEFAULT_TENANTS: Tuple[Dict[str, Any], ...] = (
    {"name": "interactive", "share": 0.5, "priority": 0,
     "prompt_mean": 64.0, "output_mean": 8.0},
    {"name": "batch", "share": 0.3, "priority": 1,
     "prompt_mean": 160.0, "output_mean": 24.0},
    {"name": "analytics", "share": 0.2, "priority": 2,
     "prompt_mean": 256.0, "output_mean": 4.0},
)

#: length knobs a tenant profile may override (everything else about the
#: tenant's sub-trace comes from the blend-level arguments)
_TENANT_LENGTH_KEYS = ("prompt_mean", "prompt_sigma", "prompt_max",
                       "prompt_quantum", "output_mean", "output_sigma",
                       "output_max")


@register_generator("multitenant")
def multitenant_trace(rate: float, num_requests: int, seed: int = 0,
                      name: Optional[str] = None,
                      tenants: Tuple[Dict[str, Any], ...] = DEFAULT_TENANTS,
                      **length_kwargs: Any) -> ArrivalTrace:
    """Superposed per-tenant Poisson processes mapped onto priority classes.

    Each tenant runs its own :func:`~repro.serve.arrivals.poisson_trace` at
    ``share * rate`` with its own length profile and a per-tenant seed
    (``seed + tenant index``); the sub-traces are merged by arrival time
    (ties broken by tenant order, then intra-tenant order — deterministic)
    and renumbered.  Request counts split proportionally to ``share`` with
    the rounding remainder going to the earliest tenants, so the blend sums
    to exactly ``num_requests``.  Tenant identity rides on the request's
    priority class, which both the priority-aware scheduling policies and
    the per-class report breakdowns key on.  Blend-level ``length_kwargs``
    (``prompt_mean`` et al.) are the baseline profile; each tenant's own
    entries override them.
    """
    _check_rate_and_count(rate, num_requests)
    if not tenants:
        raise ConfigError("multitenant_trace needs at least one tenant")
    shares = []
    for idx, tenant in enumerate(tenants):
        share = float(tenant.get("share", 0.0))
        if share <= 0:
            raise ConfigError(f"tenant {idx} ({tenant.get('name', '?')!r}): "
                              f"share must be positive, got {share}")
        shares.append(share)
    total_share = sum(shares)
    # proportional counts, remainder to the earliest tenants
    counts = [int(num_requests * s / total_share) for s in shares]
    for idx in range(num_requests - sum(counts)):
        counts[idx % len(counts)] += 1
    tagged: List[Tuple[float, int, int, Request, int]] = []
    for idx, (tenant, count) in enumerate(zip(tenants, counts)):
        if count == 0:
            continue
        overrides = {k: v for k, v in length_kwargs.items()
                     if k in _TENANT_LENGTH_KEYS}
        overrides.update({k: tenant[k] for k in _TENANT_LENGTH_KEYS
                          if k in tenant})
        sub = poisson_trace(rate=rate * shares[idx] / total_share,
                            num_requests=count, seed=seed + idx, **overrides)
        priority = int(tenant.get("priority", idx))
        for intra, request in enumerate(sub.requests):
            tagged.append((request.arrival, idx, intra, request, priority))
    tagged.sort(key=lambda item: item[:3])
    requests = tuple(
        Request(request_id=i, arrival=request.arrival,
                prompt_tokens=request.prompt_tokens,
                output_tokens=request.output_tokens, priority=priority)
        for i, (_, _, _, request, priority) in enumerate(tagged))
    return ArrivalTrace(
        name=name or f"multitenant{len(tenants)}-r{rate:g}-n{num_requests}-s{seed}",
        requests=requests)


seal_builtins("generator")
