"""Serving workload adapters — serving steps and whole serving runs as Workloads.

Two adapters connect the serving simulator to the unified scenario API:

* :class:`ServeStepWorkload` — **one engine step** of a continuous-batching
  server: QKV generation and the MoE block over the step's token batch plus
  decode attention over the per-request KV-cache lengths, composed exactly
  like :func:`repro.workloads.model.evaluate_layer` composes a decoder layer
  (sub-layers are data dependent, so step latency is their sum, scaled by the
  layer count).  The scheduler maps every step it issues onto one of these,
  so serving rides the same builders, unified schedules and simulator as the
  closed-loop experiments.
* :class:`ServeWorkload` — a **whole serving run**: an arrival trace plus a
  batch cap; ``run`` executes the open-loop simulation
  (:func:`repro.serve.scheduler.simulate_serving`) under the given schedule
  and reports the flat :meth:`~repro.serve.report.ServingReport.metrics`.
  Because it is a registered workload, serving runs drop into scenarios,
  sweep grids, the result cache and the benchmark suite like any layer
  workload.

Both adapters are plain frozen-field dataclasses: picklable across the sweep
pool and canonicalizable for content-hash caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from ..api.workload import BuiltWorkload, WorkloadBase, register_workload
from ..core.errors import ConfigError
from ..data.expert_routing import generate_routing_trace, representative_iteration
from ..platforms import resolve_platform
from ..schedules import Schedule
from ..sim import simulate
from ..sim.executors.common import HardwareConfig
from ..workloads.attention import AttentionConfig, build_attention_layer
from ..workloads.configs import ModelConfig
from ..workloads.moe import MoELayerConfig, build_moe_layer
from ..workloads.qkv import QKVConfig, build_qkv_layer
from .arrivals import ArrivalTrace
from .policy import ServePolicy, resolve_serve_policy


@register_workload
@dataclass
class ServeStepWorkload(WorkloadBase):
    """One continuous-batching engine step as a (composite) workload.

    ``num_tokens`` is the step's token batch — the QKV / MoE batch dimension
    (prompt tokens of prefilling requests plus one token per decoding
    request); ``kv_lengths`` carries one KV-cache length per *running
    request* — the attention batch.  ``routing_seed`` makes the MoE routing
    of the step deterministic without shipping per-token assignments.
    """

    kind: ClassVar[str] = "serve_step"

    model: ModelConfig
    num_tokens: int
    kv_lengths: Tuple[int, ...]
    routing_seed: int = 0
    num_layers: int = 1
    kv_tile_rows: int = 64
    moe_compute_bw: int = 8192
    attention_compute_bw: int = 256

    def __post_init__(self) -> None:
        object.__setattr__(self, "kv_lengths", tuple(int(v) for v in self.kv_lengths))
        if self.num_tokens < 1:
            raise ConfigError(f"serve step: num_tokens must be >= 1, got {self.num_tokens}")
        if not self.kv_lengths:
            raise ConfigError("serve step: at least one running request is required")
        if self.num_tokens < len(self.kv_lengths):
            raise ConfigError(
                f"serve step: {self.num_tokens} tokens cannot cover "
                f"{len(self.kv_lengths)} running requests (>= 1 token each)")

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        raise ConfigError("ServeStepWorkload is composite (three sub-layer programs); "
                          "use run() — there is no single Program to build")

    def run(self, schedule: Schedule,
            hardware: Optional[HardwareConfig] = None) -> Dict[str, float]:
        hardware = resolve_platform(hardware).hardware

        qkv = build_qkv_layer(QKVConfig(model=self.model, batch=self.num_tokens,
                                        compute_bw=self.moe_compute_bw))
        qkv_report = simulate(qkv.program, qkv.inputs(), hardware=hardware)

        par = schedule.parallelization
        attn = build_attention_layer(AttentionConfig(
            model=self.model, batch=len(self.kv_lengths), strategy=par.strategy,
            num_regions=par.num_regions, coarse_chunk=par.coarse_chunk,
            kv_tile_rows=self.kv_tile_rows, compute_bw=self.attention_compute_bw))
        attn_report = simulate(attn.program, attn.inputs(list(self.kv_lengths)),
                               hardware=hardware)

        # static schedules may carry tiles larger than this step's token batch
        tile_rows = schedule.moe_tile_rows
        if tile_rows is not None:
            tile_rows = min(tile_rows, self.num_tokens)
        assignments = representative_iteration(generate_routing_trace(
            self.model, batch_size=self.num_tokens, num_iterations=1,
            seed=self.routing_seed))
        moe = build_moe_layer(MoELayerConfig(
            model=self.model, batch=self.num_tokens, tile_rows=tile_rows,
            num_regions=schedule.moe_num_regions,
            combine_output=schedule.moe_num_regions is None,
            compute_bw=self.moe_compute_bw))
        moe_report = simulate(moe.program, moe.inputs(assignments), hardware=hardware)

        reports = {"qkv": qkv_report, "attention": attn_report, "moe": moe_report}
        layer_cycles = sum(r.cycles for r in reports.values())
        metrics: Dict[str, float] = {
            "cycles": float(layer_cycles * self.num_layers),
            "offchip_traffic_bytes": float(
                sum(r.offchip_traffic for r in reports.values()) * self.num_layers),
            "onchip_memory_bytes": float(
                sum(r.onchip_memory for r in reports.values())),
            "allocated_compute_flops_per_cycle": float(
                sum(r.allocated_compute for r in reports.values())),
            "num_layers": float(self.num_layers),
        }
        for sub, report in reports.items():
            metrics[f"step_{sub}_cycles"] = float(report.cycles)
        return metrics

    def label(self) -> str:
        return f"serve_step:{self.model.name}:t{self.num_tokens}:r{len(self.kv_lengths)}"


@register_workload
@dataclass
class ServeWorkload(WorkloadBase):
    """A whole open-loop serving run over an arrival trace.

    ``run`` executes the continuous-batching scheduler against ``trace`` under
    the given unified schedule and returns the flat serving metrics (TTFT /
    TPOT / e2e percentiles, goodput, queue depths — see
    :meth:`repro.serve.report.ServingReport.metrics`).  Use
    :func:`repro.api.serve` (or :func:`repro.serve.scheduler.simulate_serving`
    directly) when the full :class:`~repro.serve.report.ServingReport` —
    per-request records and the queue timeline — is needed.
    """

    kind: ClassVar[str] = "serve"

    model: ModelConfig
    trace: ArrivalTrace
    batch_cap: int = 8
    num_layers: int = 2
    kv_tile_rows: int = 64
    moe_compute_bw: int = 8192
    attention_compute_bw: int = 256
    seed: int = 0
    #: KV allocation discipline on capacity-bounded platforms
    kv_mode: str = "paged"
    #: preemption victim choice under memory pressure
    eviction_policy: str = "evict-lru"
    #: the scheduling discipline (admission × batching × priority);
    #: None = the default policy, the historical scheduler exactly
    policy: Optional[ServePolicy] = None
    #: ``"full"`` keeps every record/step; ``"streaming"`` reports through
    #: O(1)-memory sketches (:mod:`repro.serve.streaming`)
    report_mode: str = "full"
    #: streaming timeline window width, in cycles
    window_cycles: float = 100_000.0
    #: streaming percentile sketch relative-error bound
    sketch_accuracy: float = 0.01
    #: step-costing tier: ``"exact"`` simulates every step,
    #: ``"surrogate"`` predicts from a cost model
    engine: str = "exact"
    #: surrogate cost model (kind name, payload dict or CostModel);
    #: None under ``engine="surrogate"`` = adaptive ``"calibrated"``
    cost_model: Optional[object] = None
    #: distinct signatures probed exactly before the adaptive fit
    calibration_budget: int = 64

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        raise ConfigError("ServeWorkload simulates a request-level serving run; "
                          "use run() — there is no single Program to build")

    def report(self, schedule: Schedule,
               hardware: Optional[HardwareConfig] = None):
        """The full :class:`~repro.serve.report.ServingReport` of this run."""
        from .scheduler import ServeConfig, simulate_serving

        config = ServeConfig(model=self.model, batch_cap=self.batch_cap,
                             num_layers=self.num_layers,
                             kv_tile_rows=self.kv_tile_rows,
                             moe_compute_bw=self.moe_compute_bw,
                             attention_compute_bw=self.attention_compute_bw,
                             seed=self.seed, kv_mode=self.kv_mode,
                             eviction_policy=self.eviction_policy,
                             policy=resolve_serve_policy(self.policy),
                             report_mode=self.report_mode,
                             window_cycles=self.window_cycles,
                             sketch_accuracy=self.sketch_accuracy,
                             engine=self.engine, cost_model=self.cost_model,
                             calibration_budget=self.calibration_budget)
        return simulate_serving(config, self.trace, schedule, hardware=hardware)

    def run(self, schedule: Schedule,
            hardware: Optional[HardwareConfig] = None) -> Dict[str, float]:
        return self.report(schedule, hardware).metrics()

    def label(self) -> str:
        base = f"serve:{self.trace.name}:cap{self.batch_cap}"
        if self.policy is None:
            return base
        return f"{base}:{self.policy.label}"
