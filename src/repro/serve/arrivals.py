"""Open-loop request arrival processes for the serving simulator.

Every closed-loop scenario in :mod:`repro.api` evaluates one layer invocation
at a fixed batch; serving systems are instead driven by *requests arriving
over time*.  This module provides the request-level traffic model:

* :class:`Request` — one user request: an arrival time (in engine cycles), a
  prompt length (prefill tokens) and an output length (decode tokens),
* :class:`ArrivalTrace` — an ordered, immutable batch of requests plus a name;
  traces serialize symmetrically (:meth:`ArrivalTrace.to_dict` /
  :meth:`ArrivalTrace.from_dict`) so recorded traces can be stored as JSON and
  replayed (see :func:`load_trace`),
* :func:`poisson_trace` — the standard open-loop generator: exponential
  inter-arrival times at a configurable rate with log-normal prompt/output
  length distributions, fully determined by its seed,
* :func:`burst_trace` — a worst-case trace: requests arrive in synchronized
  bursts separated by idle gaps (same marginal rate as a Poisson trace, much
  harsher queueing),
* :func:`trace_from_lists` — explicit trace-driven arrivals for replaying
  recorded workloads or constructing hand-crafted test cases.

Rates are expressed in **requests per million cycles** (``rpmc``) so traffic
intensity is independent of any wall-clock assumption; the simulator's own
cycle count is the time base.  Prompt lengths are quantized to multiples of
``prompt_quantum`` (default 16, the hardware tile) — the simulator tiles
token batches anyway, and quantized prompts let the serving scheduler reuse
step-cost simulations across steps with near-identical composition.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError

#: one million cycles — the time base of arrival rates (requests per Mcycle)
MCYCLE = 1_000_000.0


@dataclass(frozen=True)
class Request:
    """One serving request: arrival time plus prompt/output token counts."""

    request_id: int
    #: arrival time in engine cycles (open-loop: independent of service times)
    arrival: float
    #: prefill length — tokens processed by the request's first step
    prompt_tokens: int
    #: decode length — tokens generated in total (>= 1; the first is produced
    #: by the prefill step, the remainder by one decode step each)
    output_tokens: int
    #: priority class recorded on the trace (0 = most urgent) — consumed by
    #: the ``"trace"`` priority policy; other policies override it at submit
    priority: int = 0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigError(f"request {self.request_id}: negative arrival time")
        if self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ConfigError(f"request {self.request_id}: prompt_tokens and "
                              f"output_tokens must be >= 1")
        if self.priority < 0:
            raise ConfigError(f"request {self.request_id}: priority must be "
                              f">= 0, got {self.priority}")

    def to_dict(self) -> Dict[str, Any]:
        return {"request_id": self.request_id, "arrival": self.arrival,
                "prompt_tokens": self.prompt_tokens,
                "output_tokens": self.output_tokens,
                "priority": self.priority}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Request":
        return cls(request_id=int(payload["request_id"]),
                   arrival=float(payload["arrival"]),
                   prompt_tokens=int(payload["prompt_tokens"]),
                   output_tokens=int(payload["output_tokens"]),
                   priority=int(payload.get("priority", 0)))


@dataclass(frozen=True)
class ArrivalTrace:
    """An ordered, immutable request trace (the input of a serving run)."""

    name: str
    requests: Tuple[Request, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("an arrival trace needs a non-empty name")
        object.__setattr__(self, "requests", tuple(self.requests))
        arrivals = [r.arrival for r in self.requests]
        if arrivals != sorted(arrivals):
            raise ConfigError(f"trace {self.name!r}: requests must be sorted by arrival")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def duration(self) -> float:
        """Cycles between the first and last arrival.

        0.0 when the trace has fewer than two requests (no span to measure)
        and also when every request arrives at the same cycle (a single
        burst) — distinguish the two via :attr:`mean_rate`, which is 0.0 for
        the former and ``inf`` for the latter.
        """
        if len(self.requests) < 2:
            return 0.0
        return self.requests[-1].arrival - self.requests[0].arrival

    @property
    def mean_rate(self) -> float:
        """Observed arrival rate in requests per million cycles.

        ``(n - 1) / duration``: the reciprocal of the mean inter-arrival gap.
        Degenerate traces are well-defined rather than silently zero: fewer
        than two requests carry no inter-arrival information at all, so the
        rate is 0.0, while two or more requests landing at the *same* cycle
        (a single burst) have a zero mean gap, so the rate is ``math.inf``.
        """
        if len(self.requests) < 2:
            return 0.0
        if self.duration <= 0:
            return math.inf
        return (len(self.requests) - 1) / self.duration * MCYCLE

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.requests)

    # -- serialization (JSON traces are the exchange format) ------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "requests": [r.to_dict() for r in self.requests]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ArrivalTrace":
        return cls(name=payload["name"],
                   requests=tuple(Request.from_dict(r) for r in payload["requests"]))


def load_trace(path: os.PathLike) -> ArrivalTrace:
    """Load a recorded arrival trace from a JSON file (see ``to_dict``)."""
    with open(path) as handle:
        return ArrivalTrace.from_dict(json.load(handle))


def save_trace(trace: ArrivalTrace, path: os.PathLike) -> None:
    """Write a trace as JSON, symmetric with :func:`load_trace`."""
    with open(path, "w") as handle:
        json.dump(trace.to_dict(), handle, indent=1)
        handle.write("\n")


#: version of the JSONL recorded-trace format (bump on layout changes; readers
#: reject versions they do not understand instead of misparsing)
TRACE_JSONL_VERSION = 1


def save_trace_jsonl(trace: ArrivalTrace, path: os.PathLike) -> None:
    """Write a trace as versioned JSONL: a header line, then one request per line.

    The scalable exchange format for recorded traces — unlike the
    pretty-printed JSON of :func:`save_trace`, readers can stream it
    (:func:`iter_trace_jsonl`) without materializing a million-request trace
    in memory.  The header pins the format name, version and request count so
    truncated files are detected on load.
    """
    with open(path, "w") as handle:
        header = {"format": "repro-trace", "version": TRACE_JSONL_VERSION,
                  "name": trace.name, "num_requests": len(trace)}
        handle.write(json.dumps(header) + "\n")
        for request in trace.requests:
            handle.write(json.dumps(request.to_dict()) + "\n")


def _read_jsonl_header(handle, path: os.PathLike) -> Dict[str, Any]:
    line = handle.readline()
    if not line.strip():
        raise ConfigError(f"{path}: not a JSONL trace (missing header line)")
    header = json.loads(line)
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise ConfigError(f"{path}: not a JSONL trace "
                          f"(header format is not 'repro-trace')")
    version = int(header.get("version", 0))
    if not 1 <= version <= TRACE_JSONL_VERSION:
        raise ConfigError(f"{path}: unsupported trace version {version} "
                          f"(this reader understands 1..{TRACE_JSONL_VERSION})")
    return header


def iter_trace_jsonl(path: os.PathLike):
    """Stream the requests of a JSONL trace, one :class:`Request` at a time.

    Validates the header, then yields requests lazily — the O(1)-memory read
    path for feeding huge recorded traces into a streaming-mode serving run
    without ever holding the full request list.
    """
    with open(path) as handle:
        _read_jsonl_header(handle, path)
        for line in handle:
            if line.strip():
                yield Request.from_dict(json.loads(line))


def load_trace_jsonl(path: os.PathLike) -> ArrivalTrace:
    """Load a JSONL trace fully, symmetric with :func:`save_trace_jsonl`."""
    with open(path) as handle:
        header = _read_jsonl_header(handle, path)
        requests = tuple(Request.from_dict(json.loads(line))
                         for line in handle if line.strip())
    declared = header.get("num_requests")
    if declared is not None and int(declared) != len(requests):
        raise ConfigError(f"{path}: header declares {declared} requests but "
                          f"the file holds {len(requests)} (truncated?)")
    return ArrivalTrace(name=header["name"], requests=requests)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def quantize_up(value: int, quantum: int) -> int:
    """Round ``value`` up to a positive multiple of ``quantum``.

    Shared by prompt-length generation here and the serving scheduler's
    KV-signature quantization — the two must agree on rounding semantics or
    step-memo signatures drift from the traces they serve.
    """
    return max(quantum, int(math.ceil(value / quantum)) * quantum)


def _lognormal_lengths(rng: np.random.Generator, count: int, mean: float,
                       sigma: float, minimum: int, maximum: int) -> np.ndarray:
    """Log-normal integer lengths with the requested mean, clipped to bounds."""
    mu = math.log(mean) - sigma ** 2 / 2.0
    lengths = rng.lognormal(mean=mu, sigma=sigma, size=count)
    return np.clip(np.round(lengths), minimum, maximum).astype(int)


#: the one source of truth for length-distribution defaults — referenced by
#: every trace generator (and the ``"serve"`` sweep task) so steady and bursty
#: traces can never silently drift onto different distributions
DEFAULT_PROMPT_MEAN = 96.0
DEFAULT_PROMPT_SIGMA = 0.5
DEFAULT_PROMPT_MAX = 512
DEFAULT_PROMPT_QUANTUM = 16
DEFAULT_OUTPUT_MEAN = 8.0
DEFAULT_OUTPUT_SIGMA = 0.4
DEFAULT_OUTPUT_MAX = 64


def poisson_trace(rate: float, num_requests: int, seed: int = 0,
                  prompt_mean: float = DEFAULT_PROMPT_MEAN,
                  prompt_sigma: float = DEFAULT_PROMPT_SIGMA,
                  prompt_max: int = DEFAULT_PROMPT_MAX,
                  prompt_quantum: int = DEFAULT_PROMPT_QUANTUM,
                  output_mean: float = DEFAULT_OUTPUT_MEAN,
                  output_sigma: float = DEFAULT_OUTPUT_SIGMA,
                  output_max: int = DEFAULT_OUTPUT_MAX,
                  name: Optional[str] = None) -> ArrivalTrace:
    """A Poisson arrival trace: the standard open-loop serving workload.

    ``rate`` is in requests per million cycles; inter-arrival times are
    exponential with mean ``1e6 / rate``.  Prompt and output lengths are
    log-normal (the heavy-tailed shape of production request traces — cf. the
    KV-length population in :mod:`repro.data.kv_traces`), prompts quantized to
    ``prompt_quantum`` tokens.  The same ``(rate, num_requests, seed, ...)``
    always produces the identical trace.
    """
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate}")
    if num_requests <= 0:
        raise ConfigError(f"num_requests must be positive, got {num_requests}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=MCYCLE / rate, size=num_requests)
    gaps[0] = 0.0  # the first request opens the trace
    arrivals = np.cumsum(gaps)
    prompts = _lognormal_lengths(rng, num_requests, prompt_mean, prompt_sigma,
                                 prompt_quantum, prompt_max)
    outputs = _lognormal_lengths(rng, num_requests, output_mean, output_sigma,
                                 1, output_max)
    requests = tuple(
        Request(request_id=i, arrival=float(round(arrivals[i], 3)),
                prompt_tokens=quantize_up(int(prompts[i]), prompt_quantum),
                output_tokens=int(outputs[i]))
        for i in range(num_requests))
    return ArrivalTrace(name=name or f"poisson-r{rate:g}-n{num_requests}-s{seed}",
                        requests=requests)


def burst_trace(rate: float, num_requests: int, burst_size: int = 4, seed: int = 0,
                name: Optional[str] = None, **length_kwargs) -> ArrivalTrace:
    """Synchronized bursts at the same marginal rate as a Poisson trace.

    ``burst_size`` requests arrive simultaneously, with the idle gap between
    bursts stretched so the long-run rate stays ``rate`` — the adversarial
    queueing counterpart of :func:`poisson_trace` (same offered load, much
    worse tail latency under a small batch cap).
    """
    if burst_size < 1:
        raise ConfigError(f"burst_size must be >= 1, got {burst_size}")
    base = poisson_trace(rate=rate / burst_size,
                         num_requests=max(1, math.ceil(num_requests / burst_size)),
                         seed=seed, **length_kwargs)
    prompt_mean = length_kwargs.get("prompt_mean", DEFAULT_PROMPT_MEAN)
    prompt_sigma = length_kwargs.get("prompt_sigma", DEFAULT_PROMPT_SIGMA)
    prompt_max = length_kwargs.get("prompt_max", DEFAULT_PROMPT_MAX)
    prompt_quantum = length_kwargs.get("prompt_quantum", DEFAULT_PROMPT_QUANTUM)
    output_mean = length_kwargs.get("output_mean", DEFAULT_OUTPUT_MEAN)
    output_sigma = length_kwargs.get("output_sigma", DEFAULT_OUTPUT_SIGMA)
    output_max = length_kwargs.get("output_max", DEFAULT_OUTPUT_MAX)
    rng = np.random.default_rng(seed + 1)
    count = max(0, num_requests)
    # One vectorized draw with per-request (prompt, output) parameters
    # interleaved — bit-identical to the former per-request size-1 draws
    # against the same generator state (pinned in tests/serve/test_arrivals).
    # This also stops after exactly `count` pairs, where the old loop kept
    # walking the remaining anchors (its break only left the inner loop).
    mu_prompt = math.log(prompt_mean) - prompt_sigma ** 2 / 2.0
    mu_output = math.log(output_mean) - output_sigma ** 2 / 2.0
    means = np.empty(2 * count)
    sigmas = np.empty(2 * count)
    means[0::2] = mu_prompt
    means[1::2] = mu_output
    sigmas[0::2] = prompt_sigma
    sigmas[1::2] = output_sigma
    draws = rng.lognormal(mean=means, sigma=sigmas, size=2 * count)
    prompts = np.clip(np.round(draws[0::2]), prompt_quantum, prompt_max).astype(int)
    outputs = np.clip(np.round(draws[1::2]), 1, output_max).astype(int)
    anchors = base.requests
    requests = tuple(
        Request(request_id=i, arrival=anchors[i // burst_size].arrival,
                prompt_tokens=quantize_up(int(prompts[i]), prompt_quantum),
                output_tokens=int(outputs[i]))
        for i in range(count))
    return ArrivalTrace(name=name or f"burst{burst_size}-r{rate:g}-n{len(requests)}-s{seed}",
                        requests=requests)


def trace_from_lists(arrivals: Sequence[float], prompt_tokens: Sequence[int],
                     output_tokens: Sequence[int],
                     name: str = "trace",
                     priorities: Optional[Sequence[int]] = None) -> ArrivalTrace:
    """A trace-driven arrival process from explicit per-request lists.

    ``priorities`` optionally records one priority class per request (0 =
    most urgent, the default) — the ``"trace"`` priority policy passes these
    through to the scheduler.
    """
    if not (len(arrivals) == len(prompt_tokens) == len(output_tokens)):
        raise ConfigError(
            f"trace {name!r}: arrivals ({len(arrivals)}), prompt_tokens "
            f"({len(prompt_tokens)}) and output_tokens ({len(output_tokens)}) "
            f"must have equal lengths")
    if priorities is not None and len(priorities) != len(arrivals):
        raise ConfigError(
            f"trace {name!r}: priorities ({len(priorities)}) must match "
            f"arrivals ({len(arrivals)})")
    requests = tuple(
        Request(request_id=i, arrival=float(arrivals[i]),
                prompt_tokens=int(prompt_tokens[i]),
                output_tokens=int(output_tokens[i]),
                priority=0 if priorities is None else int(priorities[i]))
        for i in range(len(arrivals)))
    return ArrivalTrace(name=name, requests=requests)
