"""Fleet-scale serving: multi-replica dispatch, routing policies, autoscaling.

One :class:`~repro.serve.scheduler.ReplicaEngine` is a single
continuous-batching server; production serving spreads open-loop traffic
across a *fleet* of them.  This module adds the dispatcher layer:

* **Routing policies** behind a registry (:func:`register_routing_policy` /
  :func:`get_routing_policy`): ``"round-robin"`` cycles over the active
  replicas, ``"least-loaded"`` picks the smallest queue depth
  (waiting + running requests), ``"least-kv"`` the smallest aggregate KV
  footprint (in ``kv_tile_rows``-quantized rows) and ``"most-free-kv"`` the
  most unreserved KV pages on capacity-bounded platforms — the serving
  analogue of the schedule registry pattern, so policies are a sweepable
  axis,
* **Warm-up cost**: every replica is cold until its first step and pays
  ``warmup_cycles`` once (weights loading / compilation), which is what makes
  reactive scale-up a latency trade-off instead of a free lunch,
* **A reactive autoscaler** (:class:`AutoscalerConfig`): at every arrival it
  smooths the per-replica queue depth with an EWMA and — outside a cooldown
  window — spawns a cold replica above ``scale_up_depth`` or retires the
  least-loaded one below ``scale_down_depth``, clamped to
  ``[min_replicas, max_replicas]``.  Retired replicas stop receiving traffic
  but drain what they already queued.

:func:`simulate_fleet` drives a trace through the dispatcher event loop:
advance every replica to each arrival, let the autoscaler react, route the
request, then drain the fleet.  The result is a
:class:`~repro.serve.report.FleetReport` — per-replica
:class:`~repro.serve.report.ServingReport`\\ s plus fleet-level latency
percentiles, utilization/imbalance and the scaling-event timeline.

Everything is deterministic: replicas are simulated engines sharing the step
memo, policies break ties by replica id, and the autoscaler's signal is a
pure function of the arrival sequence — the same ``(config, trace, schedule,
platform)`` reproduces the report bit-for-bit.  A fleet of **one** replica
with **zero** warm-up reproduces :func:`~repro.serve.scheduler.
simulate_serving` exactly (pinned by ``tests/serve/test_fleet.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence

from ..api.workload import WorkloadBase, register_workload
from ..core.errors import ConfigError
from ..platforms import PlatformLike
from ..schedules import Schedule
from ..sim.executors.common import HardwareConfig
from ..workloads.configs import ModelConfig
from .arrivals import ArrivalTrace, Request
from .policy import ServePolicy, resolve_serve_policy
from .registry import attach_registry, resolve_registered, seal_builtins
from .report import FleetReport, ReplicaReport, ScalingEvent
from .scheduler import ReplicaEngine, ServeConfig


# ---------------------------------------------------------------------------
# Routing policies
# ---------------------------------------------------------------------------

class RoutingPolicy:
    """Picks the replica a request is dispatched to.

    ``choose`` sees the *active* replicas (retired ones are excluded by the
    dispatcher) in spawn order and returns one of them.  Policies may keep
    state (round-robin's cursor) — one instance is created per fleet run.
    Implementations must be deterministic: equal load must break ties by
    ``replica_id`` so reruns reproduce the same assignment.
    """

    name: ClassVar[str] = ""

    def choose(self, replicas: Sequence[ReplicaEngine],
               request: Request) -> ReplicaEngine:
        raise NotImplementedError


#: policy name -> zero-argument factory producing a fresh policy instance
ROUTING_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = \
    attach_registry("routing", {})


def register_routing_policy(name: str):
    """Decorator registering a routing-policy class under ``name``."""

    def wrap(cls):
        if name in ROUTING_POLICIES:
            raise ConfigError(f"routing policy {name!r} is already registered")
        cls.name = name
        ROUTING_POLICIES[name] = cls
        return cls

    return wrap


def get_routing_policy(name: str) -> RoutingPolicy:
    """A fresh instance of the registered policy ``name``.

    Unknown names raise a :class:`ConfigError` listing the registered ones —
    the one shared error path of :func:`repro.serve.registry.resolve_registered`.
    """
    return resolve_registered("routing", name)()


def routing_policy_names() -> List[str]:
    """The registered routing-policy names, sorted."""
    return sorted(ROUTING_POLICIES)


@register_routing_policy("round-robin")
class RoundRobinPolicy(RoutingPolicy):
    """Cycle over the active replicas, blind to their load."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, replicas: Sequence[ReplicaEngine],
               request: Request) -> ReplicaEngine:
        chosen = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return chosen


@register_routing_policy("least-loaded")
class LeastLoadedPolicy(RoutingPolicy):
    """Dispatch to the replica with the fewest queued + running requests."""

    def choose(self, replicas: Sequence[ReplicaEngine],
               request: Request) -> ReplicaEngine:
        return min(replicas, key=lambda r: (r.queue_depth, r.replica_id))


@register_routing_policy("least-kv")
class LeastKVPolicy(RoutingPolicy):
    """Dispatch to the replica with the smallest aggregate KV footprint.

    Queue depth counts requests; the KV signal weighs them by context size,
    so one long-context request counts for many short ones — the
    memory-pressure view of load.  The signal
    (:attr:`~repro.serve.scheduler.ReplicaEngine.kv_load`) is each request's
    KV rows **quantized up to ``kv_tile_rows``** — the granularity the
    simulator actually allocates at — summed over running requests (current
    context) and waiting ones (the context their next fill materializes).
    Quantization makes near-equal footprints compare *equal*; ties then
    break on ``replica_id`` (lowest wins), so the assignment is deterministic
    and independent of Python hash seeds.
    """

    def choose(self, replicas: Sequence[ReplicaEngine],
               request: Request) -> ReplicaEngine:
        return min(replicas, key=lambda r: (r.kv_load, r.replica_id))


@register_routing_policy("most-free-kv")
class MostFreeKVPolicy(RoutingPolicy):
    """Dispatch to the replica with the most unreserved KV pages.

    The capacity-aware sibling of ``least-kv``: instead of comparing demand
    (KV rows queued per replica) it compares *supply* —
    :attr:`~repro.serve.scheduler.ReplicaEngine.free_kv_pages`, the pages the
    replica's pool has left — so requests steer away from replicas about to
    preempt.  Replicas on unbounded platforms report infinite free pages and
    therefore always win over capacity-bounded ones; among equals the
    quantized ``kv_load`` and then the ``replica_id`` break ties, which keeps
    the policy meaningful (it degrades to exactly ``least-kv``) when no
    replica has a pool at all.
    """

    def choose(self, replicas: Sequence[ReplicaEngine],
               request: Request) -> ReplicaEngine:
        return min(replicas,
                   key=lambda r: (-r.free_kv_pages, r.kv_load, r.replica_id))


seal_builtins("routing")


# ---------------------------------------------------------------------------
# Autoscaling
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive queue-depth autoscaling between ``min`` and ``max`` replicas.

    At every arrival the autoscaler observes the mean queue depth per active
    replica, smooths it with an EWMA (``smoothing`` is the weight of the new
    observation), and — if ``cooldown_cycles`` have passed since the last
    scaling event — spawns a cold replica when the smoothed signal exceeds
    ``scale_up_depth`` or retires the least-loaded replica when it falls
    below ``scale_down_depth``.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    #: smoothed per-replica queue depth above which a replica is added
    scale_up_depth: float = 4.0
    #: smoothed per-replica queue depth below which a replica is retired
    scale_down_depth: float = 0.5
    #: EWMA weight of the newest observation (1.0 = no smoothing)
    smoothing: float = 0.3
    #: minimum cycles between consecutive scaling events
    cooldown_cycles: float = 100_000.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ConfigError(f"max_replicas ({self.max_replicas}) must be >= "
                              f"min_replicas ({self.min_replicas})")
        if not 0.0 < self.smoothing <= 1.0:
            raise ConfigError(f"smoothing must be in (0, 1], got {self.smoothing}")
        if self.scale_down_depth >= self.scale_up_depth:
            raise ConfigError(f"scale_down_depth ({self.scale_down_depth}) must be "
                              f"below scale_up_depth ({self.scale_up_depth})")
        if self.cooldown_cycles < 0:
            raise ConfigError(f"cooldown_cycles must be >= 0, "
                              f"got {self.cooldown_cycles}")


class _Autoscaler:
    """The autoscaler's run state: EWMA signal + cooldown bookkeeping."""

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self.signal: Optional[float] = None
        self.last_event: Optional[float] = None
        self.events: List[ScalingEvent] = []

    def observe(self, cycle: float, active: Sequence[ReplicaEngine]) -> str:
        """Fold in one observation; returns ``"up"``, ``"down"`` or ``"hold"``."""
        depth = sum(r.queue_depth for r in active) / len(active)
        alpha = self.config.smoothing
        self.signal = depth if self.signal is None else \
            alpha * depth + (1.0 - alpha) * self.signal
        if self.last_event is not None and \
                cycle - self.last_event < self.config.cooldown_cycles:
            return "hold"
        if self.signal > self.config.scale_up_depth and \
                len(active) < self.config.max_replicas:
            return "up"
        if self.signal < self.config.scale_down_depth and \
                len(active) > self.config.min_replicas:
            return "down"
        return "hold"

    def record(self, cycle: float, action: str, num_active: int) -> None:
        self.last_event = cycle
        self.events.append(ScalingEvent(cycle=cycle, action=action,
                                        num_replicas=num_active,
                                        signal=float(self.signal)))


# ---------------------------------------------------------------------------
# The fleet simulation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FleetConfig:
    """Fleet-side configuration: replica template plus dispatcher knobs."""

    #: the per-replica server configuration (every replica is identical)
    serve: ServeConfig
    #: replicas at simulation start
    num_replicas: int = 1
    #: registered routing-policy name
    routing: str = "round-robin"
    #: cold-start penalty each replica pays before its first step
    warmup_cycles: float = 0.0
    #: reactive scaling; ``None`` keeps the fleet size fixed
    autoscaler: Optional[AutoscalerConfig] = None

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigError(f"num_replicas must be >= 1, got {self.num_replicas}")
        if self.warmup_cycles < 0:
            raise ConfigError(f"warmup_cycles must be >= 0, got {self.warmup_cycles}")
        resolve_registered("routing", self.routing)


@dataclass
class _FleetState:
    """Mutable dispatcher state while a fleet run is in flight."""

    replicas: List[ReplicaEngine] = field(default_factory=list)
    active: List[ReplicaEngine] = field(default_factory=list)
    retired_at: Dict[int, float] = field(default_factory=dict)


def simulate_fleet(config: FleetConfig, trace: ArrivalTrace,
                   schedule: Optional[Schedule] = None,
                   hardware: PlatformLike = None) -> FleetReport:
    """Serve ``trace`` on a replica fleet and collect the aggregate report.

    The dispatcher event loop, per arrival: (1) advance every replica's clock
    to the arrival (replicas step independently — each is its own
    continuous-batching server), (2) let the autoscaler react to the observed
    queue depths, (3) route the request to an active replica.  After the last
    arrival the fleet drains.  ``hardware`` resolves through
    :func:`repro.platforms.resolve_platform` exactly like the single-engine
    path.
    """
    schedule = schedule or Schedule.dynamic()
    state = _FleetState()

    def spawn(cycle: float) -> ReplicaEngine:
        replica = ReplicaEngine(config.serve, schedule, hardware,
                                warmup_cycles=config.warmup_cycles,
                                start_cycle=cycle,
                                replica_id=len(state.replicas))
        state.replicas.append(replica)
        state.active.append(replica)
        return replica

    for _ in range(config.num_replicas):
        spawn(0.0)
    policy = get_routing_policy(config.routing)
    scaler = _Autoscaler(config.autoscaler) if config.autoscaler else None

    for request in trace.requests:
        cycle = request.arrival
        for replica in state.replicas:
            replica.advance_to(cycle)
        if scaler is not None:
            decision = scaler.observe(cycle, state.active)
            if decision == "up":
                spawn(cycle)
                scaler.record(cycle, "scale-up", len(state.active))
            elif decision == "down":
                # retire the least-loaded active replica (newest on ties): it
                # stops receiving traffic but drains what it already holds
                victim = min(state.active,
                             key=lambda r: (r.queue_depth, -r.replica_id))
                state.active.remove(victim)
                state.retired_at[victim.replica_id] = cycle
                scaler.record(cycle, "scale-down", len(state.active))
        policy.choose(state.active, request).submit(request)

    for replica in state.replicas:
        replica.drain()

    total_cycles = max((r.now for r in state.replicas), default=0.0)
    replicas = tuple(
        ReplicaReport(replica_id=r.replica_id, spawned_at=r.spawned_at,
                      retired_at=state.retired_at.get(r.replica_id),
                      serving=r.report(trace.name))
        for r in state.replicas)
    return FleetReport(
        trace=trace.name,
        schedule=schedule.name,
        routing=config.routing,
        initial_replicas=config.num_replicas,
        warmup_cycles=config.warmup_cycles,
        replicas=replicas,
        scaling_events=tuple(scaler.events) if scaler is not None else (),
        total_cycles=total_cycles,
    )


# ---------------------------------------------------------------------------
# Scenario adapter
# ---------------------------------------------------------------------------

@register_workload
@dataclass
class FleetWorkload(WorkloadBase):
    """A whole fleet serving run as a scenario workload.

    The fleet counterpart of :class:`~repro.serve.workload.ServeWorkload`:
    ``run`` executes :func:`simulate_fleet` under the given unified schedule
    and reports the flat :meth:`~repro.serve.report.FleetReport.metrics`, so
    replica counts and routing policies drop into scenarios, sweep grids, the
    result cache and the benchmark suite like any other axis.  Use
    :meth:`report` (or :func:`repro.api.serve_fleet`) when the full
    :class:`~repro.serve.report.FleetReport` is needed.
    """

    kind: ClassVar[str] = "fleet"

    model: ModelConfig
    trace: ArrivalTrace
    num_replicas: int = 2
    routing: str = "round-robin"
    warmup_cycles: float = 0.0
    autoscaler: Optional[AutoscalerConfig] = None
    batch_cap: int = 8
    num_layers: int = 2
    kv_tile_rows: int = 64
    moe_compute_bw: int = 8192
    attention_compute_bw: int = 256
    seed: int = 0
    kv_mode: str = "paged"
    eviction_policy: str = "evict-lru"
    #: the per-replica scheduling discipline; None = the default policy
    policy: Optional[ServePolicy] = None
    #: per-replica report mode: ``"full"`` or ``"streaming"``
    report_mode: str = "full"
    #: streaming timeline window width, in cycles
    window_cycles: float = 100_000.0
    #: streaming percentile sketch relative-error bound
    sketch_accuracy: float = 0.01
    #: step-costing tier: ``"exact"`` simulates every step,
    #: ``"surrogate"`` predicts from a cost model
    engine: str = "exact"
    #: surrogate cost model (kind name, payload dict or CostModel);
    #: None under ``engine="surrogate"`` = adaptive ``"calibrated"``
    cost_model: Optional[object] = None
    #: distinct signatures probed exactly before the adaptive fit
    calibration_budget: int = 64

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None):
        raise ConfigError("FleetWorkload simulates a multi-replica serving run; "
                          "use run() — there is no single Program to build")

    def fleet_config(self) -> FleetConfig:
        serve = ServeConfig(model=self.model, batch_cap=self.batch_cap,
                            num_layers=self.num_layers,
                            kv_tile_rows=self.kv_tile_rows,
                            moe_compute_bw=self.moe_compute_bw,
                            attention_compute_bw=self.attention_compute_bw,
                            seed=self.seed, kv_mode=self.kv_mode,
                            eviction_policy=self.eviction_policy,
                            policy=resolve_serve_policy(self.policy),
                            report_mode=self.report_mode,
                            window_cycles=self.window_cycles,
                            sketch_accuracy=self.sketch_accuracy,
                            engine=self.engine, cost_model=self.cost_model,
                            calibration_budget=self.calibration_budget)
        return FleetConfig(serve=serve, num_replicas=self.num_replicas,
                           routing=self.routing,
                           warmup_cycles=self.warmup_cycles,
                           autoscaler=self.autoscaler)

    def report(self, schedule: Schedule,
               hardware: Optional[HardwareConfig] = None) -> FleetReport:
        """The full :class:`~repro.serve.report.FleetReport` of this run."""
        return simulate_fleet(self.fleet_config(), self.trace, schedule,
                              hardware=hardware)

    def run(self, schedule: Schedule,
            hardware: Optional[HardwareConfig] = None) -> Dict[str, Any]:
        return self.report(schedule, hardware).metrics()

    def label(self) -> str:
        base = f"fleet:{self.trace.name}:r{self.num_replicas}:{self.routing}"
        if self.policy is None:
            return base
        return f"{base}:{self.policy.label}"
