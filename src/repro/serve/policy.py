"""Pluggable scheduling policies — the :class:`ServePolicy` axis.

The continuous-batching engine (:mod:`repro.serve.scheduler`) used to
hard-code one scheduling discipline: FIFO admission feeding Orca-style
continuous batching.  This module factors that discipline into three
registries and one serializable spec, so scheduling becomes a named,
sweepable axis alongside workloads × schedules × platforms:

* **admission** — which queued request joins the batch next, and whether a
  more urgent arrival may preempt a runner (``"fifo"``,
  ``"priority-class"``, ``"slo-deadline"``),
* **batching** — which runners participate in a step and how many context
  tokens each contributes (``"orca-continuous"``, ``"chunked-prefill"``,
  ``"prefill-decode"``),
* **priority** — how a request's priority class is assigned at submit time
  (``"trace"``, ``"interactive-first"``, ``"short-prompt-first"``).

A :class:`ServePolicy` names one policy per registry plus its knobs
(``prefill_chunk``, ``class_slos``) and rides on
:class:`~repro.serve.scheduler.ServeConfig`, so policy identity flows into
sweep cache keys exactly like every other config field.  Named presets
(``"default"``, ``"chunked-prefill"``, ``"prefill-decode"``, ``"priority"``,
``"slo-preempt"``) make the common combinations addressable by string
everywhere a ``policy=`` argument is accepted; :func:`policy_grid` builds
the label → spec mapping that :class:`~repro.api.scenario.Scenario` and the
``policy-shootout`` experiment sweep over.

The default spec — ``ServePolicy()`` — reproduces the pre-registry
scheduler bit-identically (pinned in ``tests/serve/test_policy.py``): FIFO
admission never overtakes or preempts, the Orca plan runs every runner's
full remaining context, and trace priority passes the request's own class
through.

Custom policies register with the ``register_*_policy`` decorators and work
everywhere immediately, but a :class:`ServePolicy` naming one refuses
``to_dict`` — a fresh process could not rebuild it from JSON (see
:func:`repro.serve.registry.is_builtin`).

Policy objects are instantiated per engine with the :class:`ServePolicy` as
their only constructor argument and must be deterministic and stateless
across steps — everything they need arrives in the call (the waiting queue,
the running batch, the clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..core.errors import ConfigError
from .registry import (attach_registry, builtin_names, is_builtin,
                       resolve_registered, seal_builtins)

if TYPE_CHECKING:  # the engine's runner records; policies duck-type them
    from .scheduler import _Active

#: default context-token budget of the chunked-prefill batching policy
DEFAULT_PREFILL_CHUNK = 32
#: default per-class TTFT deadlines (cycles past arrival) of slo-deadline
#: admission; class i uses entry min(i, len - 1)
DEFAULT_CLASS_SLOS = (50_000.0, 200_000.0, 800_000.0)

#: admission policy name -> class (constructed with the ServePolicy)
ADMISSION_POLICIES: Dict[str, type] = attach_registry("admission", {})
#: batching policy name -> class (constructed with the ServePolicy)
BATCHING_POLICIES: Dict[str, type] = attach_registry("batching", {})
#: priority-assignment policy name -> class (constructed with the ServePolicy)
PRIORITY_POLICIES: Dict[str, type] = attach_registry("priority", {})


def _register(registry: Dict[str, type], kind: str, name: str):
    def wrap(cls: type) -> type:
        if name in registry:
            raise ConfigError(f"{kind} policy {name!r} is already registered")
        cls.name = name
        registry[name] = cls
        return cls

    return wrap


def register_admission_policy(name: str):
    """Decorator registering an :class:`AdmissionPolicy` subclass."""
    return _register(ADMISSION_POLICIES, "admission", name)


def register_batching_policy(name: str):
    """Decorator registering a :class:`BatchingPolicy` subclass."""
    return _register(BATCHING_POLICIES, "batching", name)


def register_priority_policy(name: str):
    """Decorator registering a :class:`PriorityPolicy` subclass."""
    return _register(PRIORITY_POLICIES, "priority", name)


def admission_policy_names() -> List[str]:
    return sorted(ADMISSION_POLICIES)


def batching_policy_names() -> List[str]:
    return sorted(BATCHING_POLICIES)


def priority_policy_names() -> List[str]:
    return sorted(PRIORITY_POLICIES)


# -- the spec ------------------------------------------------------------------------


@dataclass(frozen=True)
class ServePolicy:
    """One scheduling discipline: admission × batching × priority + knobs.

    Frozen and hash-stable so it can ride on
    :class:`~repro.serve.scheduler.ServeConfig` and participate in sweep
    cache keys.  The zero-argument spec is the engine's historical behavior.
    """

    admission: str = "fifo"
    batching: str = "orca-continuous"
    priority: str = "trace"
    #: context-token budget per chunked-prefill step (None = policy default)
    prefill_chunk: Optional[int] = None
    #: per-class TTFT deadlines for slo-deadline admission (() = default)
    class_slos: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        resolve_registered("admission", self.admission)
        resolve_registered("batching", self.batching)
        resolve_registered("priority", self.priority)
        if self.prefill_chunk is not None and self.prefill_chunk < 1:
            raise ConfigError(
                f"prefill_chunk must be >= 1, got {self.prefill_chunk}")
        object.__setattr__(self, "class_slos",
                           tuple(float(s) for s in self.class_slos))
        if any(s <= 0 for s in self.class_slos):
            raise ConfigError(
                f"class_slos must be positive, got {self.class_slos}")

    @property
    def label(self) -> str:
        """A compact grid label: the preset name if one matches, else the triple."""
        for name, preset in SERVE_POLICIES.items():
            if preset == self:
                return name
        return f"{self.admission}/{self.batching}/{self.priority}"

    def describe(self) -> Dict[str, Any]:
        """A plain descriptive payload (names + knobs, no registry coupling)."""
        return {"admission": self.admission, "batching": self.batching,
                "priority": self.priority, "prefill_chunk": self.prefill_chunk,
                "class_slos": list(self.class_slos)}

    def to_dict(self) -> Dict[str, Any]:
        """JSON payload — refused for custom-registered policy names.

        A spec naming a policy registered outside this module would load in
        a fresh process only if that process re-ran the registration; rather
        than emit a payload that fails later, fail here with the builtin
        alternatives listed.
        """
        for kind, name in (("admission", self.admission),
                           ("batching", self.batching),
                           ("priority", self.priority)):
            if not is_builtin(kind, name):
                raise ConfigError(
                    f"ServePolicy names custom-registered {kind} policy "
                    f"{name!r}, which a fresh process cannot rebuild from "
                    f"JSON; builtin {kind} policies: {builtin_names(kind)}. "
                    f"Construct the spec in code after re-registering.")
        return self.describe()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServePolicy":
        chunk = payload.get("prefill_chunk")
        return cls(admission=payload.get("admission", "fifo"),
                   batching=payload.get("batching", "orca-continuous"),
                   priority=payload.get("priority", "trace"),
                   prefill_chunk=None if chunk is None else int(chunk),
                   class_slos=tuple(payload.get("class_slos", ())))


# -- admission policies --------------------------------------------------------------


class AdmissionPolicy:
    """Chooses which queued request joins the running batch next.

    :meth:`select` returns an index into the waiting queue (the request to
    admit now) or ``None`` when nothing should be admitted.  Policies with
    ``preemptive = True`` additionally implement :meth:`preempt_victim`: when
    the batch is full, the engine asks whether admitting the selected request
    justifies evicting a runner (vLLM-style preempt-with-recompute).
    """

    name = ""
    preemptive = False

    def __init__(self, spec: ServePolicy) -> None:
        self.spec = spec

    def select(self, waiting: Sequence["_Active"], now: float) -> Optional[int]:
        raise NotImplementedError

    def preempt_victim(self, running: Sequence["_Active"],
                       head: "_Active") -> Optional["_Active"]:
        """The runner to evict for ``head``, or ``None`` to keep the batch."""
        return None


@register_admission_policy("fifo")
class FIFOAdmission(AdmissionPolicy):
    """Strict arrival order; the head blocks the queue (no overtaking)."""

    def select(self, waiting: Sequence["_Active"], now: float) -> Optional[int]:
        if waiting and waiting[0].request.arrival <= now:
            return 0
        return None


@register_admission_policy("priority-class")
class PriorityClassAdmission(AdmissionPolicy):
    """Lowest priority class first (0 = most urgent); FIFO within a class.

    Eligible requests (arrived by ``now``) may overtake the queue head, so a
    burst of interactive traffic jumps ahead of queued batch work — but
    runners are never evicted for it.
    """

    def select(self, waiting: Sequence["_Active"], now: float) -> Optional[int]:
        best: Optional[int] = None
        best_key = None
        for i, item in enumerate(waiting):
            if item.request.arrival > now:
                continue
            key = (item.priority, item.request.arrival, item.request.request_id)
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best


@register_admission_policy("slo-deadline")
class SLODeadlineAdmission(AdmissionPolicy):
    """Earliest TTFT deadline first, with preemption of later-deadline runners.

    A request's deadline is ``arrival + class_slos[priority]`` (the last
    entry covers every lower class).  When the batch is full, the runner
    with the *latest* deadline is evicted — preempt-with-recompute — iff the
    waiting request's deadline is strictly earlier, so swaps strictly tighten
    the running batch and the engine cannot livelock.
    """

    preemptive = True

    def deadline(self, item: "_Active") -> float:
        slos = self.spec.class_slos or DEFAULT_CLASS_SLOS
        return item.request.arrival + slos[min(item.priority, len(slos) - 1)]

    def select(self, waiting: Sequence["_Active"], now: float) -> Optional[int]:
        best: Optional[int] = None
        best_key = None
        for i, item in enumerate(waiting):
            if item.request.arrival > now:
                continue
            key = (self.deadline(item), item.request.request_id)
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def preempt_victim(self, running: Sequence["_Active"],
                       head: "_Active") -> Optional["_Active"]:
        victim = max(running,
                     key=lambda a: (self.deadline(a), a.request.request_id))
        if self.deadline(victim) > self.deadline(head):
            return victim
        return None


# -- batching policies ---------------------------------------------------------------


class BatchingPolicy:
    """Plans one step: which runners participate and with how many tokens.

    :meth:`plan` maps the running batch to ``(runner, tokens)`` pairs.  A
    runner still prefilling contributes *context* tokens (capped by what
    remains); a decoded runner contributes exactly one token.  Runners left
    out of the plan sit the step out (they keep their KV but neither cost
    nor produce anything).  Plan order doubles as the KV-securing priority
    under memory pressure: earlier entries are evicted last.
    """

    name = ""

    def __init__(self, spec: ServePolicy) -> None:
        self.spec = spec

    def plan(self, running: Sequence["_Active"]) -> List[Tuple["_Active", int]]:
        raise NotImplementedError


@register_batching_policy("orca-continuous")
class OrcaContinuousBatching(BatchingPolicy):
    """The classic iteration plan: full prefills plus one decode token each."""

    def plan(self, running: Sequence["_Active"]) -> List[Tuple["_Active", int]]:
        return [(a, a.kv_length - a.context_done if a.needs_prefill else 1)
                for a in running]


@register_batching_policy("chunked-prefill")
class ChunkedPrefillBatching(BatchingPolicy):
    """Sarathi-style chunking: decodes always run, prefills share a budget.

    Decodes come first (they are furthest along and their latency is the
    interactive tail); prefilling runners then consume the per-step context
    budget (``spec.prefill_chunk``, default ``DEFAULT_PREFILL_CHUNK``) in
    admission order.  A prefill that exhausts the budget waits; its context
    progress persists across steps (``context_done``) unless it is preempted.
    """

    def plan(self, running: Sequence["_Active"]) -> List[Tuple["_Active", int]]:
        plan = [(a, 1) for a in running if not a.needs_prefill]
        budget = self.spec.prefill_chunk or DEFAULT_PREFILL_CHUNK
        for a in running:
            if budget <= 0:
                break
            if a.needs_prefill:
                chunk = min(a.kv_length - a.context_done, budget)
                plan.append((a, chunk))
                budget -= chunk
        return plan


@register_batching_policy("prefill-decode")
class PrefillDecodeBatching(BatchingPolicy):
    """Disaggregated phases: prefill-only steps drain before any decode step.

    While any runner still needs prefill the step runs *only* prefills (full
    remaining context each); otherwise it decodes every runner.  Models the
    prefill/decode-disaggregation discipline where the two phases never mix
    in one iteration.
    """

    def plan(self, running: Sequence["_Active"]) -> List[Tuple["_Active", int]]:
        prefills = [a for a in running if a.needs_prefill]
        if prefills:
            return [(a, a.kv_length - a.context_done) for a in prefills]
        return [(a, 1) for a in running]


# -- priority-assignment policies ----------------------------------------------------


class PriorityPolicy:
    """Assigns a request's priority class (0 = most urgent) at submit time."""

    name = ""

    def __init__(self, spec: ServePolicy) -> None:
        self.spec = spec

    def assign(self, request) -> int:
        raise NotImplementedError


@register_priority_policy("trace")
class TracePriority(PriorityPolicy):
    """Pass through the class recorded on the request (default 0)."""

    def assign(self, request) -> int:
        return request.priority


@register_priority_policy("interactive-first")
class InteractiveFirstPriority(PriorityPolicy):
    """Short-output (interactive) requests outrank long (batch) generations."""

    #: outputs at most this long count as interactive
    interactive_output_tokens = 8

    def assign(self, request) -> int:
        return 0 if request.output_tokens <= self.interactive_output_tokens else 1


@register_priority_policy("short-prompt-first")
class ShortPromptFirstPriority(PriorityPolicy):
    """Short prompts (cheap prefills) outrank long-context requests."""

    #: prompts at most this long count as short
    short_prompt_tokens = 64

    def assign(self, request) -> int:
        return 0 if request.prompt_tokens <= self.short_prompt_tokens else 1


# -- named presets -------------------------------------------------------------------

#: preset name -> ServePolicy (the "policy" registry kind)
SERVE_POLICIES: Dict[str, ServePolicy] = attach_registry("policy", {})


def register_serve_policy(name: str, policy: ServePolicy) -> ServePolicy:
    """Register a named :class:`ServePolicy` preset (addressable by string)."""
    if name in SERVE_POLICIES:
        raise ConfigError(f"serve policy {name!r} is already registered")
    SERVE_POLICIES[name] = policy
    return policy


def get_serve_policy(name: str) -> ServePolicy:
    """The preset registered under ``name`` (ConfigError lists the presets)."""
    return resolve_registered("policy", name)


def serve_policy_names() -> List[str]:
    return sorted(SERVE_POLICIES)


#: the engine's historical discipline; ServeConfig's policy default
DEFAULT_POLICY = register_serve_policy("default", ServePolicy())
register_serve_policy("chunked-prefill",
                      ServePolicy(batching="chunked-prefill"))
register_serve_policy("prefill-decode",
                      ServePolicy(batching="prefill-decode"))
register_serve_policy("priority",
                      ServePolicy(admission="priority-class",
                                  priority="interactive-first"))
register_serve_policy("slo-preempt",
                      ServePolicy(admission="slo-deadline",
                                  priority="interactive-first"))


def resolve_serve_policy(policy: Union[None, str, ServePolicy,
                                       Mapping[str, Any]]) -> ServePolicy:
    """The one ``policy=`` resolution path every serve entry point uses.

    ``None`` → the default policy; a string → the registered preset; a
    mapping → :meth:`ServePolicy.from_dict`; a :class:`ServePolicy` passes
    through.  Mirrors :func:`repro.platforms.resolve_platform`.
    """
    if policy is None:
        return DEFAULT_POLICY
    if isinstance(policy, ServePolicy):
        return policy
    if isinstance(policy, str):
        return get_serve_policy(policy)
    if isinstance(policy, Mapping):
        return ServePolicy.from_dict(policy)
    raise ConfigError(f"cannot resolve a serve policy from "
                      f"{type(policy).__name__!r}; expected None, a "
                      f"registered name, a mapping or a ServePolicy")


def policy_grid(*policies: Union[str, ServePolicy,
                                 Mapping[str, Any]]) -> Dict[str, ServePolicy]:
    """A label → :class:`ServePolicy` mapping for scenario/experiment grids.

    With no arguments, every named preset (the full builtin policy space);
    otherwise each argument resolves like ``policy=`` and is labeled by its
    preset name (or the admission/batching/priority triple).  Mirrors
    :func:`repro.platforms.platform_grid`.
    """
    if not policies:
        return {name: SERVE_POLICIES[name] for name in serve_policy_names()}
    grid: Dict[str, ServePolicy] = {}
    for entry in policies:
        resolved = resolve_serve_policy(entry)
        label = entry if isinstance(entry, str) else resolved.label
        if label in grid and grid[label] != resolved:
            raise ConfigError(f"policy_grid label {label!r} is ambiguous: "
                              f"two distinct specs share it")
        grid[label] = resolved
    return grid


for _kind in ("admission", "batching", "priority", "policy"):
    seal_builtins(_kind)
del _kind
