"""Synthetic KV-cache-length traces (AzureLLMInference substitute, Appendix B.3).

The paper's attention experiments sample per-request KV-cache lengths from the
AzureLLMInference production dataset: 5,000 requests inside a time window are
batched, the per-batch standard deviation of KV lengths is computed, and the
experiments use (a) batches whose deviation matches that of the full window
("medium"), (b) the top-10% most variable batches ("high") and (c) the
least variable ("low").

This module generates a synthetic request population with the same heavy-tailed
character (log-normal prompt lengths clipped to a maximum context), forms
batches the same way, and classifies them into the same three variance
classes.  Everything downstream (Figures 14, 15, 21) only consumes the list of
per-request KV lengths per batch, so the substitution preserves the
experiments' structure.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np


class VarianceClass(enum.Enum):
    """KV-cache-length variability classes used in Figures 14 and 21."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class KVTrace:
    """One batch of decode requests: a KV-cache length per request."""

    lengths: tuple
    variance_class: VarianceClass
    seed: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.lengths)

    @property
    def mean(self) -> float:
        return float(np.mean(self.lengths))

    @property
    def std(self) -> float:
        return float(np.std(self.lengths))

    @property
    def total_tokens(self) -> int:
        return int(np.sum(self.lengths))

    def __iter__(self):
        return iter(self.lengths)


def generate_request_lengths(num_requests: int = 5000, mean_length: float = 700.0,
                             sigma: float = 1.0, max_length: int = 8192,
                             min_length: int = 16, seed: int = 0) -> np.ndarray:
    """A synthetic request population with log-normal KV-cache lengths."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    mu = math.log(mean_length) - sigma ** 2 / 2.0
    lengths = rng.lognormal(mean=mu, sigma=sigma, size=num_requests)
    lengths = np.clip(np.round(lengths), min_length, max_length).astype(int)
    return lengths


def make_batch(lengths: Sequence[int], batch_size: int, start: int = 0) -> List[int]:
    """A contiguous batch of requests from the population (wrapping around)."""
    count = len(lengths)
    if not count:
        raise ValueError("empty request population")
    return [int(lengths[(start + i) % count]) for i in range(batch_size)]


def _classify_batches(population: np.ndarray, batch_size: int,
                      num_candidates: int = 200, seed: int = 0) -> Dict[VarianceClass, List[List[int]]]:
    """Form candidate batches and split them into low/medium/high variance classes."""
    rng = np.random.default_rng(seed + 1)
    candidates: List[List[int]] = []
    for _ in range(num_candidates):
        start = int(rng.integers(0, len(population)))
        candidates.append(make_batch(population, batch_size, start=start))
    stds = np.array([np.std(batch) for batch in candidates])
    order = np.argsort(stds)
    decile = max(1, len(candidates) // 10)
    population_std = float(np.std(population))
    # medium: batches whose std is closest to the population std
    medium_order = np.argsort(np.abs(stds - population_std))
    return {
        VarianceClass.LOW: [candidates[i] for i in order[:decile]],
        VarianceClass.HIGH: [candidates[i] for i in order[-decile:]],
        VarianceClass.MEDIUM: [candidates[i] for i in medium_order[:decile]],
    }


@lru_cache(maxsize=64)
def _classified_batches(batch_size: int, num_requests: int, seed: int,
                        mean_length: float, sigma: float,
                        max_length: int) -> Dict[VarianceClass, tuple]:
    """Cached candidate generation + classification (immutable tuples).

    Forming and classifying the candidate batches costs far more than any
    simulation-side consumer of the result, and the experiments re-derive the
    same traces for every figure run, so the classified population is memoized
    on its full parameterization.
    """
    population = generate_request_lengths(num_requests=num_requests, seed=seed,
                                          mean_length=mean_length, sigma=sigma,
                                          max_length=max_length)
    classified = _classify_batches(population, batch_size, seed=seed)
    return {cls: tuple(tuple(batch) for batch in batches)
            for cls, batches in classified.items()}


def make_batches_by_variance(batch_size: int = 64, num_requests: int = 5000,
                             samples_per_class: int = 3, seed: int = 0,
                             mean_length: float = 700.0, sigma: float = 1.0,
                             max_length: int = 8192) -> Dict[VarianceClass, List[KVTrace]]:
    """Batches grouped by KV-length variance class (Appendix B.3 methodology)."""
    classified = _classified_batches(batch_size, num_requests, seed,
                                     float(mean_length), float(sigma), int(max_length))
    result: Dict[VarianceClass, List[KVTrace]] = {}
    for cls, batches in classified.items():
        picked = batches[:samples_per_class]
        result[cls] = [KVTrace(tuple(batch), cls, seed=seed) for batch in picked]
    return result


def representative_trace(batch_size: int = 64, variance: VarianceClass = VarianceClass.MEDIUM,
                         seed: int = 0, **kwargs) -> KVTrace:
    """A single representative batch of the requested variance class."""
    batches = make_batches_by_variance(batch_size=batch_size, samples_per_class=1,
                                       seed=seed, **kwargs)
    return batches[variance][0]
