"""Synthetic expert-routing traces (HH-RLHF substitute, Appendix B.3).

The MoE experiments use expert-routing decisions collected by running
Qwen3-30B-A3B and Mixtral-8x7B on the HH-RLHF request trace; the experiments
consume, per iteration (decode step), which top-k experts every token in the
batch activates, summarised as per-expert bin counts.  To pick representative
iterations the paper measures the standard deviation of expert bin counts
across iterations/layers and selects the one closest to the overall average.

The generator below reproduces those statistics: expert popularity follows a
Zipf-like distribution (controlled by the model's ``routing_skew``), each token
picks ``experts_per_token`` distinct experts, and iterations are selected by
the same representative-deviation rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.configs import ModelConfig


@dataclass(frozen=True)
class RoutingTrace:
    """Routing decisions for a sequence of iterations.

    ``assignments[i][t]`` is the tuple of expert indices activated by token
    ``t`` of the batch at iteration ``i``.
    """

    num_experts: int
    experts_per_token: int
    assignments: Tuple[Tuple[Tuple[int, ...], ...], ...]

    @property
    def num_iterations(self) -> int:
        return len(self.assignments)

    @property
    def batch_size(self) -> int:
        return len(self.assignments[0]) if self.assignments else 0

    def iteration(self, index: int) -> Tuple[Tuple[int, ...], ...]:
        return self.assignments[index]

    def bin_counts(self, index: int) -> np.ndarray:
        return expert_bin_counts(self.iteration(index), self.num_experts)

    def bin_count_std(self, index: int) -> float:
        return float(np.std(self.bin_counts(index)))


def _expert_popularity(num_experts: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """A Zipf-like popularity distribution over experts (skew=0 → uniform)."""
    ranks = np.arange(1, num_experts + 1, dtype=float)
    weights = 1.0 / np.power(ranks, max(0.0, skew))
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_routing_trace(model: ModelConfig, batch_size: int, num_iterations: int = 16,
                           seed: int = 0, skew: Optional[float] = None) -> RoutingTrace:
    """Generate top-k routing decisions for ``num_iterations`` decode steps."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    rng = np.random.default_rng(seed)
    skew = model.routing_skew if skew is None else skew
    popularity = _expert_popularity(model.num_experts, skew, rng)
    iterations: List[Tuple[Tuple[int, ...], ...]] = []
    for _ in range(num_iterations):
        tokens: List[Tuple[int, ...]] = []
        for _ in range(batch_size):
            chosen = rng.choice(model.num_experts, size=model.experts_per_token,
                                replace=False, p=popularity)
            tokens.append(tuple(int(e) for e in sorted(chosen)))
        iterations.append(tuple(tokens))
    return RoutingTrace(model.num_experts, model.experts_per_token, tuple(iterations))


def expert_bin_counts(assignments: Sequence[Sequence[int]], num_experts: int) -> np.ndarray:
    """Tokens routed to each expert in one iteration."""
    counts = np.zeros(num_experts, dtype=int)
    for token_experts in assignments:
        for expert in token_experts:
            counts[expert] += 1
    return counts


def representative_iteration(trace: RoutingTrace) -> Tuple[Tuple[int, ...], ...]:
    """The iteration whose expert-bin-count deviation is closest to the average.

    This mirrors the paper's methodology for selecting a representative case
    from the collected routing data (Appendix B.3).
    """
    stds = [trace.bin_count_std(i) for i in range(trace.num_iterations)]
    target = float(np.mean(stds))
    best = int(np.argmin([abs(s - target) for s in stds]))
    return trace.iteration(best)


def tokens_per_expert(assignments: Sequence[Sequence[int]], num_experts: int) -> List[int]:
    """Convenience: bin counts as a plain list."""
    return expert_bin_counts(assignments, num_experts).tolist()


def active_experts(assignments: Sequence[Sequence[int]], num_experts: int) -> List[int]:
    """Indices of experts that receive at least one token."""
    counts = expert_bin_counts(assignments, num_experts)
    return [int(i) for i in np.nonzero(counts)[0]]
