"""Synthetic trace generators replacing the paper's proprietary datasets.

* :mod:`repro.data.kv_traces` replaces the AzureLLMInference KV-cache-length
  traces used by the attention experiments (Appendix B.3),
* :mod:`repro.data.expert_routing` replaces the HH-RLHF-derived expert-routing
  traces used by the MoE experiments.

Both generators reproduce the statistical structure the experiments consume:
per-request KV lengths grouped into batches by variance class, and per-batch
expert bin counts with calibrated skew and variance.
"""

from .kv_traces import (
    KVTrace,
    VarianceClass,
    generate_request_lengths,
    make_batch,
    make_batches_by_variance,
)
from .expert_routing import (
    RoutingTrace,
    expert_bin_counts,
    generate_routing_trace,
    representative_iteration,
)

__all__ = [
    "KVTrace",
    "VarianceClass",
    "generate_request_lengths",
    "make_batch",
    "make_batches_by_variance",
    "RoutingTrace",
    "expert_bin_counts",
    "generate_routing_trace",
    "representative_iteration",
]
