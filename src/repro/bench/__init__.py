"""Performance tracking for the simulation engine (``python -m repro.bench``).

The bench subsystem runs a curated suite of registered scenarios, records
wall-clock time, simulated cycles per second and result-cache statistics per
scenario, and emits a schema-versioned JSON report (``BENCH_*.json``).  A
comparison mode diffs two reports and flags regressions, which CI uses to gate
merges against the committed baseline.

Usage::

    python -m repro.bench --scale smoke --json bench.json
    python -m repro.bench --compare BENCH_PR10.json bench.json --threshold 0.2

See the README's "Benchmarking" section for the full workflow.
"""

from .report import (SCHEMA_VERSION, CaseComparison, ComparisonResult, build_report,
                     compare_reports, load_report, measure_calibration, write_report)
from .runner import BenchResult, run_case, run_suite
from .suite import BenchCase, bench_cases, get_case, register_case

__all__ = [
    "SCHEMA_VERSION",
    "BenchCase",
    "BenchResult",
    "CaseComparison",
    "ComparisonResult",
    "bench_cases",
    "build_report",
    "compare_reports",
    "get_case",
    "load_report",
    "measure_calibration",
    "register_case",
    "run_case",
    "run_suite",
    "write_report",
]
