"""Command-line entry point: ``python -m repro.bench``.

Measure::

    python -m repro.bench --scale smoke --json bench.json
    python -m repro.bench --suite figure15-batch-sweep --repeat 5

Compare (exit code 1 on regression; used by the CI gate)::

    python -m repro.bench --compare BENCH_PR10.json bench.json --threshold 0.2
"""

from __future__ import annotations

import argparse
import sys

from .report import (build_report, compare_reports, format_comparison, load_report,
                     write_report)
from .runner import run_suite
from .suite import SCALES, bench_cases


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the scenario benchmark suite or compare two bench reports")
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="benchmark scale (default: smoke)")
    parser.add_argument("--suite", action="append", default=None, metavar="NAME",
                        help="benchmark case to run (repeatable; default: all)")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="timed repetitions per case; the minimum is reported")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="sweep worker processes per case (default: 1)")
    parser.add_argument("--json", dest="json_path", default=None, metavar="PATH",
                        help="write the schema-versioned report here")
    parser.add_argument("--no-cache-stats", action="store_true",
                        help="skip the cold+warm result-cache measurement")
    parser.add_argument("--list", action="store_true", help="list benchmark cases")
    parser.add_argument("--compare", nargs=2, metavar=("BASELINE", "CURRENT"),
                        help="compare two bench reports instead of measuring")
    parser.add_argument("--threshold", type=float, default=0.2, metavar="FRAC",
                        help="regression threshold for --compare (default: 0.2 = 20%%)")
    parser.add_argument("--metric", default="wall_time_s",
                        choices=("wall_time_s", "cycles_per_second", "cache_warm_s"),
                        help="comparison metric (default: wall_time_s)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw values (skip calibration normalization)")
    parser.add_argument("--min-delta", type=float, default=0.01, metavar="SECONDS",
                        help="ignore wall-time regressions smaller than this "
                             "absolute difference (default: 0.01)")
    args = parser.parse_args(argv)

    if args.list:
        for case in bench_cases():
            print(f"{case.name:32s} {case.description}")
        return 0

    if args.compare:
        baseline = load_report(args.compare[0])
        current = load_report(args.compare[1])
        result = compare_reports(baseline, current, threshold=args.threshold,
                                 metric=args.metric, normalize=not args.no_normalize,
                                 min_delta_s=args.min_delta)
        print(format_comparison(result, metric=args.metric))
        return 0 if result.ok else 1

    def progress(case):
        print(f"bench: {case.name} ({args.scale}, repeat={args.repeat}) ...",
              flush=True)

    results = run_suite(names=args.suite, scale=args.scale, repeat=args.repeat,
                        jobs=args.jobs, cache_stats=not args.no_cache_stats,
                        progress=progress)
    for result in results:
        line = (f"  {result.name}: {result.wall_time_s:.4f}s "
                f"({result.points} points, {result.sim_cycles:.0f} cycles, "
                f"{result.cycles_per_second:,.0f} cyc/s")
        if result.cache_warm_s is not None:
            line += (f"; cache warm {result.cache_warm_s:.4f}s "
                     f"{result.cache_warm_hits}/{result.points} hits")
        print(line + ")")

    if args.json_path:
        report = build_report(results, scale=args.scale, repeat=args.repeat,
                              jobs=args.jobs)
        write_report(args.json_path, report)
        print(f"bench report written to {args.json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
