"""The curated benchmark suite: named scenario factories per scale.

Each :class:`BenchCase` names one benchmark and builds the
:class:`~repro.api.Scenario` to run for a given scale (``"smoke"`` or
``"full"``).  The default suite covers the engine's distinct hot paths:

* ``figure15-batch-sweep`` — attention with dynamic parallelization across
  batch sizes (the paper's headline sweep; EagerMerge / Partition / feedback
  loop heavy).  This is the suite the PR-3 optimization pass was tuned on.
* ``figure14-dynamic-parallelization`` — the three parallelization strategies
  over variance-classed KV traces.
* ``figure9-dynamic-tiling`` — the MoE tiling Pareto grid (Bufferize /
  Streamify / off-chip loads dominate).
* ``figure12-timemux`` — configuration time-multiplexing region sweep.
* ``dense-ffn`` — the dense SwiGLU FFN tiling baseline from the scenario
  library (compute-operator bound).
* ``serve-poisson`` / ``serve-burst`` — request-level serving runs from
  :mod:`repro.serve` (continuous-batching scheduler + step-cost simulation;
  dominated by the serving step memoization and replay path).
* ``serve-chunked-prefill`` — the chunked-prefill scheduling policy
  (:mod:`repro.serve.policy`): budgeted prefill streaming across steps, the
  policy-dispatch hot path the default-policy cases never leave.
* ``serve-overload`` — the same engine under finite HBM
  (:mod:`repro.serve.memory`): per-step KV page-pool accounting,
  memory-aware admission and preemption-with-recompute.
* ``serve-streaming-large`` — a large heavy-tailed trace under the
  ``"streaming"`` report mode (:mod:`repro.serve.streaming`): every
  completion folds into percentile sketches and the windowed timeline, the
  O(1)-memory path production-sized traces ride.
* ``fleet-grid`` / ``fleet-autoscale`` — multi-replica fleet dispatch runs
  (:mod:`repro.serve.fleet`; dispatcher event loop, routing-policy selection
  and the reactive autoscaler on top of the serving replay path).
* ``fleet-surrogate-sweep`` — a production-sized fleet trace on the
  two-tier engine (:mod:`repro.costmodel`): adaptive calibrated step-cost
  prediction instead of per-signature simulation, streaming reports — the
  fast tier fleet-scale sweeps ride.  The ≥10x two-tier headline is its
  first-run wall against the exact twin of the same trace.

New benchmarks register with :func:`register_case`; anything expressible as a
Scenario participates for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..api import Scenario, get_scenario
from ..core.errors import ConfigError
from ..experiments import figure9_10, figure12_13, figure14, figure15
from ..experiments.common import DEFAULT_SCALE, SMOKE_SCALE, ExperimentScale

#: the benchmark scales (mirrors the experiments CLI)
SCALES: Dict[str, ExperimentScale] = {
    "smoke": SMOKE_SCALE,
    "full": DEFAULT_SCALE,
}


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark: a scenario factory parameterized by scale name."""

    name: str
    description: str
    build: Callable[[str], Scenario]

    def scenario(self, scale: str = "smoke") -> Scenario:
        if scale not in SCALES:
            raise ConfigError(f"unknown bench scale {scale!r}; expected one of {sorted(SCALES)}")
        return self.build(scale)


#: case name -> BenchCase, in registration (= report) order
CASES: Dict[str, BenchCase] = {}


def register_case(name: str, description: str):
    """Decorator registering a scenario factory (``scale name -> Scenario``)."""

    def wrap(build: Callable[[str], Scenario]) -> Callable[[str], Scenario]:
        if name in CASES:
            raise ConfigError(f"bench case {name!r} is already registered")
        CASES[name] = BenchCase(name=name, description=description, build=build)
        return build

    return wrap


def bench_cases(names: Optional[List[str]] = None) -> List[BenchCase]:
    """The selected (or all) benchmark cases, in registration order."""
    if names is None:
        return list(CASES.values())
    return [get_case(name) for name in names]


def get_case(name: str) -> BenchCase:
    try:
        return CASES[name]
    except KeyError:
        raise ConfigError(
            f"unknown bench case {name!r}; registered: {sorted(CASES)}") from None


# ---------------------------------------------------------------------------
# Default suite
# ---------------------------------------------------------------------------

@register_case("figure15-batch-sweep",
               "dynamic vs static coarse parallelization across batch sizes")
def _figure15(scale: str) -> Scenario:
    return figure15.scenario(SCALES[scale])


@register_case("figure14-dynamic-parallelization",
               "parallelization strategies over variance-classed KV traces")
def _figure14(scale: str) -> Scenario:
    return figure14.scenario(SCALES[scale])


@register_case("figure9-dynamic-tiling",
               "MoE static-tile Pareto grid vs dynamic tiling")
def _figure9(scale: str) -> Scenario:
    return figure9_10.scenario(SCALES[scale], large_batch=False)


@register_case("figure12-timemux",
               "configuration time-multiplexing region sweep")
def _figure12(scale: str) -> Scenario:
    return figure12_13.scenario(SCALES[scale])


@register_case("dense-ffn",
               "dense SwiGLU FFN tiling baseline (library scenario)")
def _dense_ffn(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("dense-ffn", model_scale=16, batch=64, tiles=(8, 16, 32, 64))
    return get_scenario("dense-ffn")


# The serving cases time the continuous-batching scheduler's replay path:
# after the warmup run the step-cost memo is hot, so the repeats measure the
# request/queue bookkeeping over hundreds of steps (the serving hot loop)
# rather than re-simulating steps the figure cases already cover.

@register_case("serve-poisson",
               "open-loop Poisson serving, light vs overload arrival rates")
def _serve_poisson(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("serve-poisson", num_requests=96, batch_cap=8)
    return get_scenario("serve-poisson", rates=(40.0, 640.0), num_requests=48,
                        output_max=12)


@register_case("serve-burst",
               "bursty vs steady request arrivals at equal offered load")
def _serve_burst(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("serve-burst", num_requests=96, batch_cap=8)
    return get_scenario("serve-burst", num_requests=48, output_max=12)


# serve-chunked-prefill times the policy layer's heaviest batching discipline:
# prefills stream in fixed token chunks across many steps (more steps, more
# plan/bookkeeping work per request than one-shot orca prefill), so the case
# covers the ServePolicy dispatch path the default-policy cases never leave.

@register_case("serve-chunked-prefill",
               "chunked-prefill scheduling policy: budgeted prefill streaming")
def _serve_chunked_prefill(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("serve-policies", num_requests=96, batch_cap=8,
                            policies=("default", "chunked-prefill"))
    return get_scenario("serve-policies", num_requests=48, output_max=12,
                        policies=("chunked-prefill",))


# serve-overload exercises the memory-pressure path the other serving cases
# never touch: KV page-pool accounting on every step, admission gating and
# (on the bounded platform) eviction + requeue + prefill recompute.

@register_case("serve-overload",
               "load ladder on unbounded vs capacity-bounded HBM (paged KV)")
def _serve_overload(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("serve-overload", num_requests=48, rates=(160.0, 640.0))
    return get_scenario("serve-overload", num_requests=24, rates=(640.0,))


# serve-streaming-large times the O(1)-memory report path on a trace big
# enough that full mode would dominate the profile with record/step list
# growth: only the streaming cell runs, so every completion folds into the
# percentile sketches and the windowed timeline instead of materializing.

@register_case("serve-streaming-large",
               "large heavy-tailed trace under the O(1)-memory streaming report")
def _serve_streaming_large(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("serve-streaming", num_requests=4000,
                            arrival_rate=2000.0, batch_cap=8, output_max=8,
                            modes=("streaming",))
    return get_scenario("serve-streaming", num_requests=2000,
                        arrival_rate=2000.0, batch_cap=8, output_max=4,
                        modes=("streaming",))


# The fleet cases add the dispatcher on top: N replica engines advanced in
# lockstep per arrival, routing-policy selection and (for the autoscale case)
# the reactive scaling loop with cold-start warm-ups — the fleet hot loop.

@register_case("fleet-grid",
               "multi-replica dispatch: replicas x routing x arrival rates")
def _fleet_grid(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("fleet-grid", replicas=(1, 2, 4), num_requests=48,
                            batch_cap=4)
    return get_scenario("fleet-grid", num_requests=24, output_max=12)


@register_case("fleet-autoscale",
               "reactive autoscaling vs fixed fleets under bursty load")
def _fleet_autoscale(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("fleet-autoscale", num_requests=64, batch_cap=4,
                            max_replicas=4)
    return get_scenario("fleet-autoscale", num_requests=24, output_max=12)


# fleet-surrogate-sweep times the two-tier engine's fast path: a
# production-sized heavy-tailed trace (wide prompt tail, fine KV tiling —
# hundreds of distinct step signatures) on a replica fleet where only the
# first calibration_budget distinct signatures are simulated exactly and
# the rest are predicted by the adaptive cost model, with streaming
# reports so nothing materializes per request.  The warm-repeat
# cycles_per_second recorded here guards the fast path against regression;
# the >= 10x two-tier headline is the *first-run* wall against the exact
# twin of the same trace (engine="exact"), where the exact engine pays one
# full simulation per distinct signature — see README "Cost models".

@register_case("fleet-surrogate-sweep",
               "fleet-scale heavy-tailed trace on the surrogate cost-model engine")
def _fleet_surrogate_sweep(scale: str) -> Scenario:
    if scale == "full":
        return get_scenario("fleet-surrogate", num_requests=8000,
                            arrival_rate=4000.0)
    return get_scenario("fleet-surrogate", num_requests=2000,
                        arrival_rate=4000.0)
