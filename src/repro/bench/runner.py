"""Benchmark execution: timed scenario runs plus cache-path statistics."""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..api import run as run_scenario
from ..sweep import ResultCache, SweepRunner
from .suite import BenchCase, bench_cases


@dataclass
class BenchResult:
    """Measurements for one benchmark case.

    Wall times are uncached end-to-end scenario runs (scenario expansion +
    simulation) after one untimed warmup; ``wall_time_s`` is the lower
    quartile over the repeats — on shared machines (CI runners) a low quantile
    is far more stable than the minimum (which rewards one lucky
    quiet-machine sample) while staying robust to slow-burst outliers, and a
    real regression shifts the whole distribution anyway.  ``cycles_per_second``
    is simulated cycles per wall-clock second — the engine's throughput
    figure, comparable across commits on the same machine.  The cache fields
    come from one cold+warm pair against a throwaway on-disk cache and track
    the result-cache path (a warm run must satisfy every point from cache).
    """

    name: str
    description: str
    scale: str
    points: int
    wall_time_s: float
    wall_times_s: List[float]
    sim_cycles: float
    cycles_per_second: float
    simulated: int
    cache_hits: int
    #: machine-speed probe taken adjacent to this case's timing loop (min of a
    #: before and an after spin); the comparison gate normalizes with it
    calibration_s: Optional[float] = None
    cache_cold_s: Optional[float] = None
    cache_warm_s: Optional[float] = None
    cache_warm_hits: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "description": self.description,
            "scale": self.scale,
            "points": self.points,
            "wall_time_s": self.wall_time_s,
            "wall_times_s": self.wall_times_s,
            "sim_cycles": self.sim_cycles,
            "cycles_per_second": self.cycles_per_second,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "calibration_s": self.calibration_s,
        }
        if self.cache_cold_s is not None:
            payload["cache_cold_s"] = self.cache_cold_s
            payload["cache_warm_s"] = self.cache_warm_s
            payload["cache_warm_hits"] = self.cache_warm_hits
        return payload


#: keep repeating a case until this much wall time is accumulated (noise
#: floor for sub-50ms cases) ...
_MIN_MEASURE_S = 0.5
#: ... but never beyond this many repetitions
_MAX_REPEAT = 15


def _lower_quartile(values: List[float]) -> float:
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 4]


def run_case(case: BenchCase, scale: str = "smoke", repeat: int = 3, jobs: int = 1,
             cache_stats: bool = True) -> BenchResult:
    """Measure one benchmark case.

    The case runs at least ``repeat`` times and keeps repeating (up to a cap,
    which an explicit larger ``repeat`` raises) until ``_MIN_MEASURE_S`` of
    wall time has been accumulated, so tiny cases are not noise-dominated; the
    lower quartile of the samples is reported (see :class:`BenchResult`).
    """
    from .report import measure_calibration

    scenario = case.scenario(scale)
    wall_times: List[float] = []
    last = None
    simulated = cache_hits = 0
    spent = 0.0
    cal_before = measure_calibration(repeat=2)
    run_scenario(scenario, runner=SweepRunner(jobs=jobs, cache=None))  # warmup
    while True:
        runner = SweepRunner(jobs=jobs, cache=None)
        started = time.perf_counter()
        last = run_scenario(scenario, runner=runner)
        elapsed = time.perf_counter() - started
        wall_times.append(elapsed)
        spent += elapsed
        simulated = last.stats.simulated
        cache_hits = last.stats.cache_hits
        wanted = max(1, repeat)
        if len(wall_times) >= max(_MAX_REPEAT, wanted):
            break
        if len(wall_times) >= wanted and spent >= _MIN_MEASURE_S:
            break
    cal_after = measure_calibration(repeat=2)
    sim_cycles = float(sum(row.metrics.get("cycles", 0.0) for row in last.rows))
    best = _lower_quartile(wall_times)
    result = BenchResult(
        name=case.name,
        description=case.description,
        scale=scale,
        points=len(last.rows),
        wall_time_s=best,
        wall_times_s=wall_times,
        sim_cycles=sim_cycles,
        cycles_per_second=sim_cycles / best if best > 0 else 0.0,
        simulated=simulated,
        cache_hits=cache_hits,
        calibration_s=min(cal_before, cal_after),
    )
    if cache_stats:
        _measure_cache_path(scenario, jobs, result)
    return result


def _measure_cache_path(scenario, jobs: int, result: BenchResult) -> None:
    """One cold+warm pair against a throwaway cache (the warm run must not
    re-simulate anything)."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        runner = SweepRunner(jobs=jobs, cache=cache)
        started = time.perf_counter()
        run_scenario(scenario, runner=runner)
        result.cache_cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_scenario(scenario, runner=SweepRunner(jobs=1, cache=cache))
        result.cache_warm_s = time.perf_counter() - started
        result.cache_warm_hits = warm.stats.cache_hits


def run_suite(names: Optional[List[str]] = None, scale: str = "smoke", repeat: int = 3,
              jobs: int = 1, cache_stats: bool = True,
              progress=None) -> List[BenchResult]:
    """Run the selected benchmark cases and collect their measurements."""
    results = []
    for case in bench_cases(names):
        if progress is not None:
            progress(case)
        results.append(run_case(case, scale=scale, repeat=repeat, jobs=jobs,
                                cache_stats=cache_stats))
    return results
