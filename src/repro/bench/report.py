"""Schema-versioned benchmark reports and the regression comparison gate.

A report is a plain JSON document::

    {
      "schema": "repro.bench/v1",
      "created": "...", "scale": "smoke", "repeat": 3, "jobs": 1,
      "python": "3.11.7", "platform": "...",
      "calibration_s": 0.0123,
      "suites": {"figure15-batch-sweep": {"wall_time_s": ..., ...}, ...}
    }

``calibration_s`` times a fixed pure-Python workload (independent of the
simulator) at report-creation time.  Comparing two reports computes both the
raw ratio and the ratio normalized by the calibration (machine-speed) factor,
and flags a regression only when the suite is slower than the threshold under
*both* views: normalization makes a baseline recorded on a fast developer
machine meaningful on a slower CI runner, while the raw ratio guards against
calibration noise flagging same-machine runs.  Genuine engine slow-downs
inflate both ratios, so they are always caught.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .runner import BenchResult

SCHEMA_VERSION = "repro.bench/v1"

#: iterations of the calibration spin (fixed forever for comparability)
_CALIBRATION_ITERS = 100_000


def measure_calibration(repeat: int = 3) -> float:
    """Seconds for a fixed, simulator-independent pure-Python workload."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        acc = 0
        table = {}
        for i in range(_CALIBRATION_ITERS):
            table[i & 255] = acc
            acc += i ^ (acc >> 3)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def build_report(results: List[BenchResult], scale: str, repeat: int,
                 jobs: int) -> Dict[str, object]:
    """Assemble the schema-versioned report document."""
    return {
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": scale,
        "repeat": repeat,
        "jobs": jobs,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_s": measure_calibration(),
        "suites": {result.name: result.to_dict() for result in results},
    }


def write_report(path: str, report: Dict[str, object]) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, object]:
    with open(path) as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench report schema {schema!r} "
            f"(expected {SCHEMA_VERSION!r})")
    if not isinstance(report.get("suites"), dict):
        raise ValueError(f"{path}: malformed bench report (missing 'suites')")
    return report


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

@dataclass
class CaseComparison:
    """Baseline-vs-current numbers for one suite."""

    name: str
    baseline_s: Optional[float]
    current_s: Optional[float]
    #: effective current/baseline ratio (> 1 means slower); the minimum of the
    #: raw and machine-normalized ratios when a calibration is available
    ratio: Optional[float]
    regressed: bool
    note: str = ""
    #: whether this case's ratio used calibration normalization (cases without
    #: probes in either report compare raw even when others normalize)
    normalized: bool = False


@dataclass
class ComparisonResult:
    """The full comparison; ``ok`` is False when any suite regressed."""

    threshold: float
    normalized: bool
    cases: List[CaseComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(case.regressed for case in self.cases)

    @property
    def regressions(self) -> List[CaseComparison]:
        return [case for case in self.cases if case.regressed]


def compare_reports(baseline: Dict[str, object], current: Dict[str, object],
                    threshold: float = 0.2, metric: str = "wall_time_s",
                    normalize: bool = True,
                    min_delta_s: float = 0.01) -> ComparisonResult:
    """Compare two reports; a suite regresses when its (normalized) metric
    grew by more than ``threshold`` (0.2 = 20%).

    ``min_delta_s`` is an absolute floor for wall-time metrics: sub-10ms
    differences are scheduler jitter, not engine regressions, and a real
    hot-path regression also shows on the larger suites.  Suites present only
    in the current report are informational; suites that disappeared relative
    to the baseline are flagged as regressions (the gate must not pass because
    a benchmark silently stopped running).
    """
    scale_factor = 1.0
    normalized = False
    if normalize:
        base_cal = baseline.get("calibration_s")
        cur_cal = current.get("calibration_s")
        if base_cal and cur_cal:
            scale_factor = float(base_cal) / float(cur_cal)
            normalized = True

    result = ComparisonResult(threshold=threshold, normalized=normalized)
    base_suites: Dict[str, dict] = baseline["suites"]  # type: ignore[assignment]
    cur_suites: Dict[str, dict] = current["suites"]  # type: ignore[assignment]

    for name, base in base_suites.items():
        base_value = base.get(metric)
        cur = cur_suites.get(name)
        if cur is None:
            result.cases.append(CaseComparison(
                name=name, baseline_s=base_value, current_s=None, ratio=None,
                regressed=True, note="missing from current report"))
            continue
        cur_value = cur.get(metric)
        if not base_value or not cur_value:
            result.cases.append(CaseComparison(
                name=name, baseline_s=base_value, current_s=cur_value, ratio=None,
                regressed=False, note=f"metric {metric!r} unavailable"))
            continue
        # prefer calibrations measured adjacent to this case's timing loop:
        # they track machine-speed drift *within* a bench run, which a single
        # report-level factor cannot — and they enable normalization even for
        # reports that carry no report-level probe at all
        case_factor = scale_factor
        case_normalized = normalized
        base_cal = base.get("calibration_s")
        cur_cal = cur.get("calibration_s")
        if normalize and base_cal and cur_cal:
            case_factor = float(base_cal) / float(cur_cal)
            case_normalized = True
            result.normalized = True
        # slower-than-baseline ratio: wall times grow on slower machines,
        # throughput shrinks.  case_factor = base_cal/cur_cal is the current
        # machine's relative speed (< 1 when slower), and it corrects both
        # metrics the same way: expected wall time scales by 1/case_factor and
        # expected throughput scales by case_factor.
        if metric == "cycles_per_second":
            raw = float(base_value) / float(cur_value)
        else:
            raw = float(cur_value) / float(base_value)
        norm = raw * case_factor
        # regression only when slower under BOTH views: normalization corrects
        # for machine speed across hosts, the raw ratio guards against
        # calibration noise on the same host; real slow-downs inflate both
        ratio = min(raw, norm) if case_normalized else raw
        regressed = ratio > 1.0 + threshold
        if regressed and metric != "cycles_per_second" and \
                float(cur_value) - float(base_value) < min_delta_s:
            regressed = False
        result.cases.append(CaseComparison(
            name=name, baseline_s=float(base_value), current_s=float(cur_value),
            ratio=ratio, regressed=regressed, normalized=case_normalized))

    for name, cur in cur_suites.items():
        if name not in base_suites:
            result.cases.append(CaseComparison(
                name=name, baseline_s=None, current_s=cur.get(metric), ratio=None,
                regressed=False, note="new suite (no baseline)"))
    return result


def format_comparison(result: ComparisonResult, metric: str = "wall_time_s") -> str:
    """A human-readable comparison table.

    The header reports how ratios were computed; when only some cases carried
    calibration probes the table says so and marks the raw-compared cases.
    """
    compared = [case for case in result.cases if case.ratio is not None]
    if not result.normalized:
        mode = "raw"
    elif all(case.normalized for case in compared):
        mode = "machine-normalized"
    else:
        mode = "partially machine-normalized ('raw' marks unnormalized cases)"
    lines = [f"bench comparison ({metric}; threshold {result.threshold:.0%}; {mode})"]
    width = max((len(case.name) for case in result.cases), default=4)
    for case in result.cases:
        if case.ratio is None:
            lines.append(f"  {case.name:<{width}}  --        {case.note}")
            continue
        direction = "REGRESSED" if case.regressed else (
            "improved" if case.ratio < 1.0 else "unchanged")
        marker = "" if (case.normalized or not result.normalized) else "  (raw)"
        lines.append(
            f"  {case.name:<{width}}  {case.baseline_s:9.4f} -> {case.current_s:9.4f}"
            f"  x{case.ratio:5.2f}  {direction}{marker}")
    lines.append("OK" if result.ok else
                 f"FAIL: {len(result.regressions)} suite(s) regressed")
    return "\n".join(lines)
