"""Small helpers for exercising programs in tests and examples.

These wrappers build a one-output :class:`~repro.core.graph.Program` around a
stream handle and run it through the simulator, so tests can assert on the
produced token stream without repeating the boilerplate.  They live in the
package (rather than in ``tests/conftest.py``) so both the ``tests/`` and
``benchmarks/`` trees — and downstream users writing their own checks — can
import them absolutely.
"""

from __future__ import annotations

from typing import Dict, List

from .core.graph import Program, StreamHandle
from .core.stream import Token, data_values
from .sim import run_functional, simulate


def execute(output: StreamHandle, inputs: Dict, timed: bool = False) -> List[Token]:
    """Build a program around ``output`` and return its collected token list."""
    program = Program([output], name="test")
    runner = simulate if timed else run_functional
    report = runner(program, inputs)
    return report.output_tokens(output.name)


def execute_values(output: StreamHandle, inputs: Dict, timed: bool = False) -> list:
    """Like :func:`execute` but returns only the data payloads."""
    return data_values(execute(output, inputs, timed=timed))
