"""repro — a from-scratch reproduction of *Streaming Tensor Programs* (ASPLOS 2026).

The package provides

* the STeP streaming abstraction (:mod:`repro.core`, :mod:`repro.ops`),
* the symbolic analysis of off-chip traffic / on-chip memory (:mod:`repro.analysis`),
* a cycle-approximate dataflow simulator (:mod:`repro.sim`) and an
  HDL-substitute reference simulator (:mod:`repro.hdl`),
* the paper's workloads, schedules and trace generators
  (:mod:`repro.workloads`, :mod:`repro.schedules`, :mod:`repro.data`),
* and the experiment harness that regenerates every figure
  (:mod:`repro.experiments`).

See ``examples/quickstart.py`` for a complete program.
"""

from . import core, ops
from .core import (
    Dim,
    Program,
    Selector,
    StreamShape,
    Tile,
    TileType,
)
from .ops import (
    Accum,
    Bufferize,
    EagerMerge,
    Expand,
    FlatMap,
    Flatten,
    LinearOffChipLoad,
    LinearOffChipLoadRef,
    LinearOffChipStore,
    Map,
    Partition,
    Promote,
    RandomOffChipLoad,
    RandomOffChipStore,
    Reassemble,
    Repeat,
    Reshape,
    Scan,
    Streamify,
    Zip,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "ops",
    "Dim",
    "Program",
    "Selector",
    "StreamShape",
    "Tile",
    "TileType",
    "Accum",
    "Bufferize",
    "EagerMerge",
    "Expand",
    "FlatMap",
    "Flatten",
    "LinearOffChipLoad",
    "LinearOffChipLoadRef",
    "LinearOffChipStore",
    "Map",
    "Partition",
    "Promote",
    "RandomOffChipLoad",
    "RandomOffChipStore",
    "Reassemble",
    "Repeat",
    "Reshape",
    "Scan",
    "Streamify",
    "Zip",
    "__version__",
]
