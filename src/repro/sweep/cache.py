"""On-disk result cache for sweep runs.

Every simulated design point is identified by a *stable hash* of its complete
description — the task name, its parameters (model configuration, schedule
knobs, workload inputs), the hardware configuration and the per-point seed.
The hash is computed over a canonical JSON form, so logically identical points
hash identically across processes and Python versions, and any change to a
parameter (or to :data:`CACHE_VERSION`, bumped when simulator semantics
change) produces a fresh key.

Cached payloads are small JSON metric dictionaries (cycles, traffic, memory,
utilization — see :func:`repro.sweep.tasks.report_metrics`), which keeps the
cache cheap to store and safe to load.  Writes are atomic (temp file +
``os.replace``) so concurrent sweep processes sharing a cache directory never
observe torn entries.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: bump when simulator timing/metric semantics change so stale entries miss
CACHE_VERSION = 1

#: environment variable overriding the default cache root
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"

#: subpackages whose sources determine simulation results; their content hash
#: is folded into every cache key so code changes invalidate stale entries
#: automatically (experiments/analysis only post-process and are excluded)
_FINGERPRINTED_SUBPACKAGES = ("api", "core", "costmodel", "data", "hdl", "ops",
                              "schedules", "serve", "sim", "workloads")


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """A content hash of the simulator and workload sources.

    Editing anything under the fingerprinted subpackages (or the sweep task
    definitions) changes every cache key, so a simulator fix can never be
    masked by stale cached figures — no manual ``CACHE_VERSION`` bump needed
    for routine changes.
    """
    root = Path(__file__).resolve().parent.parent
    files = [Path(__file__).parent / "tasks.py",
             root / "platforms.py", root / "serialize.py"]
    for sub in _FINGERPRINTED_SUBPACKAGES:
        files.extend(sorted((root / sub).rglob("*.py")))
    hasher = hashlib.sha256()
    for path in files:
        try:
            payload = path.read_bytes()
        except OSError:
            continue
        hasher.update(str(path.relative_to(root)).encode("utf-8"))
        hasher.update(payload)
    return hasher.hexdigest()


def default_cache_root() -> Path:
    """The default on-disk cache location (override with ``REPRO_SWEEP_CACHE``)."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "sweeps"


def canonicalize(obj: Any) -> Any:
    """Recursively convert ``obj`` into a deterministic JSON-able structure.

    Dataclasses are tagged with their qualified class name so two different
    config types with the same field values do not collide; enums collapse to
    their values; tuples/sets become lists (sets sorted); mapping keys are
    emitted in sorted order by :func:`stable_hash`'s ``sort_keys``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tag = f"{type(obj).__module__}.{type(obj).__qualname__}"
        # compare=False fields (e.g. Platform.description) are presentation
        # data, not identity: they stay out of the hash exactly as they stay
        # out of dataclass equality
        fields = {f.name: canonicalize(getattr(obj, f.name))
                  for f in dataclasses.fields(obj) if f.compare}
        return {"__dataclass__": tag, **fields}
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__qualname__}", "value": canonicalize(obj.value)}
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if hasattr(obj, "tolist") and callable(obj.tolist):
        # numpy scalars collapse to Python numbers, arrays to (nested) lists
        return canonicalize(obj.tolist())
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for cache hashing")


def stable_hash(obj: Any) -> str:
    """A hex digest stable across processes for any canonicalizable object."""
    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of ``<key>.json`` metric payloads with hit/miss accounting."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        # shard by the first two hex chars so huge sweeps don't create one
        # directory with tens of thousands of entries
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on any negative path.

        A missing, unreadable, truncated, corrupted or wrong-shaped entry is a
        *miss*, never an error: the caller recomputes (and ``put`` overwrites
        the bad entry).  A cache must not be able to fail a sweep.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            # OSError covers missing/unreadable entries (and a directory or
            # other non-file squatting on the path); ValueError covers
            # truncated/corrupted JSON and undecodable bytes
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            # valid JSON of the wrong shape is still corruption
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` atomically (temp file + ``os.replace``).

        Concurrent writers of the same key are safe: each writes its own temp
        file and the last rename wins with a complete payload — readers never
        observe a torn entry.  Filesystem failures are swallowed (a cache
        store is an optimization, not a result); serialization errors still
        raise, since an unserializable payload is a caller bug.
        """
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
