"""Registered simulation tasks — the picklable unit of sweep work.

A *task* is a module-level function mapping plain, picklable parameters
(model/hardware dataclasses, batch sizes, routing assignments, KV-length
lists) to a flat metrics dictionary.  Workers rebuild the dataflow program
from those parameters inside their own process, so nothing unpicklable (token
streams, lowered programs, executor generators) ever crosses the pool
boundary, and the returned dictionary is exactly what the result cache
stores.

Tasks are looked up by name via :data:`TASKS` / :func:`get_task`; new
subsystems register theirs with :func:`register_task`.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Dict, Optional, Sequence

from ..core.errors import ConfigError
from ..sim import simulate
from ..sim.executors.common import HardwareConfig
from ..sim.runner import SimReport
from ..workloads.attention import AttentionConfig, build_attention_layer
from ..workloads.configs import ModelConfig
from ..workloads.moe import MoELayerConfig, build_moe_layer

#: task name -> callable(**params) -> metrics dict
TASKS: Dict[str, Callable[..., Dict[str, float]]] = {}


def register_task(name: str):
    """Decorator registering a sweep task under ``name``.

    Tasks must accept picklable keyword arguments only and return a flat,
    JSON-able metrics dictionary (see :func:`report_metrics`).  A task that
    accepts a ``seed`` parameter (directly or via ``**kwargs``) receives the
    point's deterministic derived seed when the spec does not set one.
    """

    def wrap(func: Callable[..., Dict[str, float]]):
        if name in TASKS:
            raise ConfigError(f"sweep task {name!r} is already registered")
        TASKS[name] = func
        # a pre-registration query may have cached "unknown task ⇒ seedless"
        task_accepts_seed.cache_clear()
        return func

    return wrap


def get_task(name: str) -> Callable[..., Dict[str, float]]:
    try:
        return TASKS[name]
    except KeyError:
        raise ConfigError(f"unknown sweep task {name!r}; "
                          f"registered: {sorted(TASKS)}") from None


@functools.lru_cache(maxsize=None)
def task_accepts_seed(name: str) -> bool:
    """Whether the task consumes a ``seed`` keyword (directly or via ``**kwargs``).

    Tasks that don't are pure functions of their other parameters: the runner
    skips seed injection and :meth:`SweepPoint.cache_key` leaves the derived
    seed out of their keys, so identical simulations share cache entries
    across spec seeds.  Returns False for unregistered names (the run itself
    reports those).
    """
    if name not in TASKS:
        return False
    params = inspect.signature(TASKS[name]).parameters
    return "seed" in params or any(p.kind is inspect.Parameter.VAR_KEYWORD
                                   for p in params.values())


def report_metrics(report: SimReport) -> Dict[str, float]:
    """The flat, JSON-able metric payload every task returns (and the cache stores)."""
    return {
        "cycles": float(report.cycles),
        "offchip_traffic_bytes": float(report.offchip_traffic),
        "onchip_memory_bytes": float(report.onchip_memory),
        "total_flops": float(report.total_flops),
        "allocated_compute_flops_per_cycle": float(report.allocated_compute),
        "compute_utilization": float(report.compute_utilization),
        "offchip_bw_utilization": float(report.offchip_bw_utilization),
    }


@register_task("moe_layer")
def moe_layer(model: ModelConfig, batch: int, assignments: Sequence[Sequence[int]],
              hardware: HardwareConfig, tile_rows: Optional[int] = 32,
              num_regions: Optional[int] = None,
              combine_output: bool = True) -> Dict[str, float]:
    """Simulate one MoE-layer design point (Figures 9/10/12/13/19/20).

    Deliberately seedless: the routing ``assignments`` fully determine the
    result (``MoELayerConfig.seed`` only shapes payload weights, which timing
    sweeps never materialize), so cache entries are shared across spec seeds.
    """
    config = MoELayerConfig(model=model, batch=batch, tile_rows=tile_rows,
                            num_regions=num_regions, combine_output=combine_output)
    program = build_moe_layer(config)
    assignments = [list(a) for a in assignments]
    report = simulate(program.program, program.inputs(assignments), hardware=hardware)
    return report_metrics(report)


@register_task("attention_layer")
def attention_layer(model: ModelConfig, batch: int, strategy: str,
                    lengths: Sequence[int], hardware: HardwareConfig,
                    kv_tile_rows: int = 64,
                    coarse_chunk: int = 16) -> Dict[str, float]:
    """Simulate one decode-attention design point (Figures 14/15/21).

    ``lengths`` may be longer than ``batch``; the first ``batch`` entries are
    used, so batch-size sweeps can share one base trace.  Deliberately
    seedless: the KV trace fully determines the result, so cache entries are
    shared across spec seeds.
    """
    lengths = list(lengths)[:batch]
    if len(lengths) < batch:
        raise ConfigError(f"attention_layer: {len(lengths)} KV lengths for "
                          f"batch {batch}")
    config = AttentionConfig(model=model, batch=batch, strategy=strategy,
                             kv_tile_rows=kv_tile_rows, coarse_chunk=coarse_chunk)
    program = build_attention_layer(config)
    report = simulate(program.program, program.inputs(lengths), hardware=hardware)
    return report_metrics(report)
