"""Registered simulation tasks — the picklable unit of sweep work.

A *task* is a module-level function mapping plain, picklable parameters to a
flat metrics dictionary.  Workers rebuild the dataflow program from those
parameters inside their own process, so nothing unpicklable (token streams,
lowered programs, executor generators) ever crosses the pool boundary, and
the returned dictionary is exactly what the result cache stores.

Since the unified scenario API (:mod:`repro.api`) there is one shipped task:
``"workload"``, which runs any :class:`repro.api.workload.Workload` adapter
under a unified :class:`repro.schedules.Schedule`.  The per-workload wrappers
that used to live here (``moe_layer``, ``attention_layer``) are gone — their
parameters now travel as workload/schedule value objects, which pickle and
content-hash like any other dataclass.

Tasks are looked up by name via :data:`TASKS` / :func:`get_task`; new
subsystems register theirs with :func:`register_task`.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Dict

from ..core.errors import ConfigError
from ..sim.runner import SimReport

#: task name -> callable(**params) -> metrics dict
TASKS: Dict[str, Callable[..., Dict[str, float]]] = {}


def register_task(name: str):
    """Decorator registering a sweep task under ``name``.

    Tasks must accept picklable keyword arguments only and return a flat,
    JSON-able metrics dictionary (see :func:`report_metrics`).  A task that
    accepts a ``seed`` parameter (directly or via ``**kwargs``) receives the
    point's deterministic derived seed when the spec does not set one.
    """

    def wrap(func: Callable[..., Dict[str, float]]):
        if name in TASKS:
            raise ConfigError(f"sweep task {name!r} is already registered")
        TASKS[name] = func
        # a pre-registration query may have cached "unknown task ⇒ seedless"
        task_accepts_seed.cache_clear()
        return func

    return wrap


def get_task(name: str) -> Callable[..., Dict[str, float]]:
    try:
        return TASKS[name]
    except KeyError:
        raise ConfigError(f"unknown sweep task {name!r}; "
                          f"registered: {sorted(TASKS)}") from None


@functools.lru_cache(maxsize=None)
def task_accepts_seed(name: str) -> bool:
    """Whether the task consumes a ``seed`` keyword (directly or via ``**kwargs``).

    Tasks that don't are pure functions of their other parameters: the runner
    skips seed injection and :meth:`SweepPoint.cache_key` leaves the derived
    seed out of their keys, so identical simulations share cache entries
    across spec seeds.  Returns False for unregistered names (the run itself
    reports those).
    """
    if name not in TASKS:
        return False
    params = inspect.signature(TASKS[name]).parameters
    return "seed" in params or any(p.kind is inspect.Parameter.VAR_KEYWORD
                                   for p in params.values())


def report_metrics(report: SimReport) -> Dict[str, float]:
    """The flat, JSON-able metric payload every task returns (and the cache stores)."""
    return report.to_dict()


@register_task("workload")
def workload(workload, schedule, platform=None, hardware=None) -> Dict[str, float]:
    """The generic scenario task: any workload adapter under a unified schedule.

    ``workload`` is a :class:`repro.api.workload.Workload` value object,
    ``schedule`` a :class:`repro.schedules.Schedule`; both pickle cleanly and
    canonicalize for cache hashing as tagged dataclasses.  The hardware axis
    arrives as ``platform`` (a :class:`repro.platforms.Platform`, whose *name*
    participates in the cache key alongside its hardware fields — two named
    platforms are distinct design points even with equal hardware); ``hardware``
    remains accepted for hand-built specs predating the platform axis.  The
    *full* platform is handed to the workload — adapters resolve it down to
    the raw :class:`HardwareConfig` themselves — so platform-level fields the
    hardware config doesn't carry (``hbm_capacity_bytes``) survive the trip
    into capacity-aware workloads like serving.  Deliberately seedless: the
    workload's data (routing assignments, KV traces) fully determines the
    result, so cache entries are shared across spec seeds.
    """
    if hardware is None:
        from ..platforms import resolve_platform

        hardware = resolve_platform(platform)
    return workload.run(schedule, hardware)
