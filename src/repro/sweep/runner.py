"""Parallel execution of sweep specs with caching.

:class:`SweepRunner` expands a :class:`~repro.sweep.spec.SweepSpec` into
points, satisfies as many as possible from the on-disk
:class:`~repro.sweep.cache.ResultCache`, fans the remainder out across a
``multiprocessing`` pool (``jobs > 1``) or runs them inline (``jobs = 1``),
stores fresh results back to the cache and returns everything in grid order.

Worker safety: the pool executes the module-level :func:`execute_point`
function on :class:`SweepPoint` instances, both of which pickle cleanly (a
point carries only dataclasses and plain data; the worker rebuilds the
program graph itself — see :mod:`repro.sweep.tasks`).  Results are plain
metric dictionaries, so the pool round-trip is cheap.  Points execute with
deterministic per-point seeds, making pooled runs bit-identical to serial
runs (covered by ``tests/sweep/test_runner.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from .cache import ResultCache
from .spec import SweepPoint, SweepSpec
from .tasks import get_task, task_accepts_seed

#: environment variable providing the default worker count
JOBS_ENV_VAR = "REPRO_SWEEP_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_SWEEP_JOBS`` (defaults to 1 = serial)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV_VAR, "1")))
    except ValueError:
        return 1


def execute_point(point: SweepPoint) -> Dict[str, float]:
    """Run one sweep point in the current process (the pool worker entry).

    The point's derived seed is passed as ``seed=`` when the task accepts one
    (directly or via ``**kwargs``); tasks without a seed parameter simply run
    without it.
    """
    task = get_task(point.task)
    kwargs = point.kwargs()
    if "seed" not in kwargs and task_accepts_seed(point.task):
        kwargs["seed"] = point.seed
    return task(**kwargs)


@dataclass
class SweepResult:
    """One executed (or cache-restored) sweep point."""

    point: SweepPoint
    metrics: Dict[str, float]
    cached: bool = False

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


@dataclass
class SweepStats:
    """Execution accounting for :meth:`SweepRunner.run` calls.

    ``points`` may exceed ``simulated + cache_hits``: duplicate points within
    one run (same cache key) are simulated once and share the result.
    """

    points: int = 0
    simulated: int = 0
    cache_hits: int = 0
    elapsed_seconds: float = 0.0

    def add(self, other: "SweepStats") -> None:
        self.points += other.points
        self.simulated += other.simulated
        self.cache_hits += other.cache_hits
        self.elapsed_seconds += other.elapsed_seconds


class SweepRunner:
    """Executes sweep specs across workers with an optional result cache."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Union[ResultCache, os.PathLike, str, None] = None,
                 mp_context: Optional[str] = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self._mp_context = mp_context
        self.last_stats = SweepStats()
        #: running totals over every run() on this runner (the CLI reports these)
        self.cumulative_stats = SweepStats()

    # -- execution ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> List[SweepResult]:
        """Execute every point of ``spec``; results come back in grid order."""
        return self.run_points(spec.points())

    def run_points(self, points: Sequence[SweepPoint]) -> List[SweepResult]:
        started = time.time()
        results: List[Optional[SweepResult]] = [None] * len(points)
        # points with the same cache key are the same simulation (identical
        # task, params and seed) — simulate each distinct point once
        pending: Dict[str, List[int]] = {}
        for i, point in enumerate(points):
            key = point.cache_key()
            if key in pending:
                pending[key].append(i)
                continue
            metrics = self.cache.get(key) if self.cache is not None else None
            if metrics is not None:
                results[i] = SweepResult(point=point, metrics=metrics, cached=True)
            else:
                pending[key] = [i]

        fresh = self._execute([points[indices[0]] for indices in pending.values()])
        for (key, indices), metrics in zip(pending.items(), fresh):
            for i in indices:
                results[i] = SweepResult(point=points[i], metrics=metrics, cached=False)
            if self.cache is not None:
                self.cache.put(key, metrics)

        cached = sum(1 for r in results if r is not None and r.cached)
        self.last_stats = SweepStats(
            points=len(points), simulated=len(pending), cache_hits=cached,
            elapsed_seconds=time.time() - started)
        self.cumulative_stats.add(self.last_stats)
        return results  # type: ignore[return-value]

    def metrics(self, spec: SweepSpec) -> List[Dict[str, float]]:
        """Convenience: just the metric dictionaries, in grid order."""
        return [result.metrics for result in self.run(spec)]

    def _execute(self, points: Sequence[SweepPoint]) -> List[Dict[str, float]]:
        if not points:
            return []
        if self.jobs == 1 or len(points) == 1:
            return [execute_point(point) for point in points]
        # prefer fork only where it is the safe platform default (Linux);
        # macOS forks can crash in Objective-C/Accelerate runtimes
        method = self._mp_context or \
            ("fork" if sys.platform.startswith("linux") else None)
        context = multiprocessing.get_context(method)
        workers = min(self.jobs, len(points))
        with context.Pool(processes=workers) as pool:
            return pool.map(execute_point, points)


#: shared serial, uncached runner used when callers do not provide one
DEFAULT_RUNNER = SweepRunner(jobs=1, cache=None)


def resolve_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    """The runner to use: the caller's, or the serial uncached default."""
    return runner if runner is not None else DEFAULT_RUNNER


def build_runner(jobs: Optional[int] = None,
                 cache: Union[ResultCache, os.PathLike, str, None] = None,
                 runner: Optional[SweepRunner] = None) -> SweepRunner:
    """The one resolution of the (jobs, cache, runner) execution keywords.

    An explicit ``runner`` wins; otherwise ``jobs``/``cache`` build a fresh
    runner, and with neither set the shared serial, uncached default is used.
    Shared by :func:`repro.api.run` and :func:`repro.api.run_experiment` so
    the two facades can never drift on execution defaults.
    """
    if runner is not None:
        return runner
    if jobs or cache is not None:
        return SweepRunner(jobs=jobs, cache=cache)
    return resolve_runner(None)
