"""Parallel design-space sweep subsystem.

The paper's evaluation is sweep-shaped — static-tile sweeps against dynamic
tiling (Figures 9/10/19/20), parallel-region sweeps for configuration
time-multiplexing (Figures 12/13), batch-size and strategy grids for dynamic
parallelization (Figures 14/15/21).  This package turns those loops into
declarative :class:`SweepSpec` grids executed by a :class:`SweepRunner` that
fans points out over a process pool and memoizes results in an on-disk
:class:`ResultCache` keyed by a stable content hash, so repeated sweeps are
near-instant and bigger grids cost only fresh points.

Most callers declare a :class:`repro.api.Scenario` and let the scenario API
build the spec; direct use looks like::

    from repro.api import MoEWorkload, Schedule
    from repro.sweep import ResultCache, SweepRunner, SweepSpec

    spec = SweepSpec(name="tiles", task="workload",
                     base={"workload": MoEWorkload(model=model, batch=64,
                                                   assignments=assignments),
                           "hardware": hw},
                     axes={"schedule": [Schedule.static(f"tile={t}", t)
                                        for t in (8, 16, 32, 64)]
                           + [Schedule.dynamic()]})
    runner = SweepRunner(jobs=4, cache=ResultCache())
    for result in runner.run(spec):
        print(result.point.label(), result["cycles"])
"""

from .cache import CACHE_VERSION, ResultCache, canonicalize, code_fingerprint, \
    default_cache_root, stable_hash
from .runner import DEFAULT_RUNNER, SweepResult, SweepRunner, SweepStats, \
    build_runner, default_jobs, execute_point, resolve_runner
from .spec import SweepPoint, SweepSpec
from .tasks import TASKS, get_task, register_task, report_metrics, task_accepts_seed

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_RUNNER",
    "ResultCache",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStats",
    "TASKS",
    "canonicalize",
    "code_fingerprint",
    "default_cache_root",
    "build_runner",
    "default_jobs",
    "execute_point",
    "get_task",
    "register_task",
    "report_metrics",
    "resolve_runner",
    "stable_hash",
    "task_accepts_seed",
]
