"""Declarative parameter grids for simulation sweeps.

A :class:`SweepSpec` names a registered simulation *task* (see
:mod:`repro.sweep.tasks`), a set of ``base`` parameters shared by every point
and a set of swept ``axes``.  ``mode="cartesian"`` takes the cross product of
the axes (the tiling sweeps of Figures 9/10, the region sweeps of Figures
12/13); ``mode="zip"`` pairs the axes element-wise (the irregular grids of
Figures 14 and 21, where each point carries its own KV-length trace).

Expanding a spec yields an ordered list of :class:`SweepPoint`\\ s.  Each
point's ``seed`` is derived from a stable hash of the spec seed and the
point's own parameters — *not* from its position in the grid — so a point
keeps its seed (and therefore its cache key) when axes are reordered or a
grid grows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..core.errors import ConfigError
from .cache import CACHE_VERSION, code_fingerprint, stable_hash
from .tasks import task_accepts_seed

#: parameters whose value may legitimately be large (KV traces, routing
#: assignments); kept out of point labels
_LABEL_MAX_LEN = 24


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved design point of a sweep."""

    spec_name: str
    task: str
    index: int
    params: Tuple[Tuple[str, Any], ...]
    seed: int

    def kwargs(self) -> Dict[str, Any]:
        """The task keyword arguments for this point."""
        return dict(self.params)

    def cache_key(self) -> str:
        """Stable identity of this point: task + params (+ seed) + code state.

        Deliberately excludes ``spec_name`` and ``index`` so identical points
        reached through different sweeps share one cache entry; the derived
        seed participates only for tasks that actually consume a seed, and the
        simulator-source fingerprint invalidates entries when code changes.
        """
        payload = {
            "task": self.task,
            "params": dict(self.params),
            "cache_version": CACHE_VERSION,
            "code": code_fingerprint(),
        }
        if task_accepts_seed(self.task):
            payload["seed"] = self.seed
        return stable_hash(payload)

    def label(self) -> str:
        """A short human-readable description of the swept values."""
        parts = []
        for key, value in self.params:
            text = repr(value)
            if len(text) > _LABEL_MAX_LEN:
                continue
            parts.append(f"{key}={text}")
        return f"{self.spec_name}[{self.index}]({', '.join(parts)})"


def _derive_seed(spec_seed: int, task: str, params: Mapping[str, Any]) -> int:
    """A deterministic 32-bit per-point seed independent of grid ordering."""
    digest = stable_hash({"seed": spec_seed, "task": task, "params": dict(params)})
    return int(digest[:8], 16)


@dataclass(frozen=True)
class SweepSpec:
    """A named parameter grid over one registered simulation task."""

    name: str
    task: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: "cartesian" (cross product of axes) or "zip" (element-wise pairing)
    mode: str = "cartesian"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("cartesian", "zip"):
            raise ConfigError(f"{self.name}: mode must be 'cartesian' or 'zip', "
                              f"got {self.mode!r}")
        overlap = set(self.base) & set(self.axes)
        if overlap:
            raise ConfigError(f"{self.name}: parameters {sorted(overlap)} appear in "
                              f"both base and axes")
        if self.mode == "zip" and self.axes:
            lengths = {key: len(values) for key, values in self.axes.items()}
            if len(set(lengths.values())) > 1:
                raise ConfigError(f"{self.name}: zip-mode axes must have equal "
                                  f"lengths, got {lengths}")

    def grid(self) -> List[Dict[str, Any]]:
        """The ordered list of swept-parameter combinations (axes only)."""
        if not self.axes:
            return [{}]
        keys = list(self.axes)
        if self.mode == "zip":
            return [dict(zip(keys, values))
                    for values in zip(*(self.axes[key] for key in keys))]
        return [dict(zip(keys, values))
                for values in itertools.product(*(self.axes[key] for key in keys))]

    def points(self) -> List[SweepPoint]:
        """Expand the grid into ordered, seeded :class:`SweepPoint`\\ s."""
        points: List[SweepPoint] = []
        for index, combo in enumerate(self.grid()):
            params = {**dict(self.base), **combo}
            points.append(SweepPoint(
                spec_name=self.name,
                task=self.task,
                index=index,
                params=tuple(sorted(params.items())),
                seed=_derive_seed(self.seed, self.task, params),
            ))
        return points

    def __len__(self) -> int:
        if not self.axes:
            return 1
        if self.mode == "zip":
            return len(next(iter(self.axes.values())))
        result = 1
        for values in self.axes.values():
            result *= len(values)
        return result
