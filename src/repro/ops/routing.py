"""Dynamic routing and merging operators (Section 3.2.3, Table 6, Figure 4).

These operators implement data-dependent control flow:

* :class:`Partition` routes chunks of the input stream to one of several
  output streams according to a (multi-hot) selector stream,
* :class:`Reassemble` is its inverse: it merges chunks from several input
  streams in selector order,
* :class:`EagerMerge` merges chunks in arrival order and additionally emits a
  selector stream recording where each chunk came from.

A *chunk* is the data up to (and including) the first stop token of level
``rank``; the selector stream has one element per chunk.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.dims import Dim
from ..core.dtypes import SelectorType
from ..core.errors import ShapeError
from ..core.graph import StreamHandle
from ..core.shape import StreamShape
from .base import Operator


class Partition(Operator):
    """Route data up to the first ``S_rank`` to the selected output stream(s).

    The selector stream carries one multi-hot vector per chunk; a multi-hot
    selector broadcasts the chunk to every selected consumer.  Each output
    stream collects its chunks under a fresh dynamic outer dimension
    (e.g. the number of tokens routed to an expert).
    """

    kind = "Partition"

    def __init__(self, in_stream: StreamHandle, selector: StreamHandle,
                 rank: int = 1, num_consumers: int = 2, name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Partition input")
        selector = self._require_handle(selector, "Partition selector")
        if rank < 1:
            raise ShapeError(f"Partition rank must be >= 1, got {rank}")
        if num_consumers < 1:
            raise ShapeError(f"Partition needs at least one consumer, got {num_consumers}")
        self._require_rank_at_least(in_stream, rank, "Partition")
        expected_sel_ndims = in_stream.shape.ndims - rank
        if selector.shape.ndims != expected_sel_ndims:
            raise ShapeError(
                f"Partition selector shape {selector.shape} must have "
                f"{expected_sel_ndims} dimensions (input {in_stream.shape}, rank {rank})")
        self.rank = int(rank)
        self.num_consumers = int(num_consumers)
        self._set_inputs([in_stream, selector])
        inner = in_stream.shape.inner(rank)
        for consumer in range(self.num_consumers):
            out_shape = StreamShape((Dim.dynamic(name="P"),) + inner)
            self._add_output(out_shape, in_stream.dtype, name=f"branch{consumer}")

    @property
    def branches(self) -> List[StreamHandle]:
        return list(self.outputs)


class Reassemble(Operator):
    """Merge chunks from many input streams in selector order (Figure 4).

    For every multi-hot vector in the selector stream, data up to the first
    ``S_rank`` is collected from each selected input stream (in arrival order,
    without interleaving within a chunk); after all selected inputs have been
    drained the operator closes the group by incrementing the stop token,
    adding a new dimension.
    """

    kind = "Reassemble"

    def __init__(self, in_streams: Sequence[StreamHandle], selector: StreamHandle,
                 rank: int = 1, name: Optional[str] = None):
        super().__init__(name=name)
        in_streams = [self._require_handle(h, "Reassemble input") for h in in_streams]
        selector = self._require_handle(selector, "Reassemble selector")
        if not in_streams:
            raise ShapeError("Reassemble requires at least one input stream")
        if rank < 1:
            raise ShapeError(f"Reassemble rank must be >= 1, got {rank}")
        ranks = {h.shape.ndims for h in in_streams}
        if len(ranks) != 1:
            raise ShapeError(
                f"Reassemble input streams must all have the same rank, got shapes "
                f"{[str(h.shape) for h in in_streams]}")
        for handle in in_streams:
            self._require_rank_at_least(handle, rank, "Reassemble")
        self.rank = int(rank)
        self.num_producers = len(in_streams)
        self._set_inputs(list(in_streams) + [selector])
        inner = in_streams[0].shape.inner(rank)
        out_shape = StreamShape(
            selector.shape.dims + (Dim.dynamic(name="G"),) + inner)
        self._add_output(out_shape, in_streams[0].dtype)

    @property
    def data_inputs(self) -> List[StreamHandle]:
        return self.inputs[:-1]

    @property
    def selector_input(self) -> StreamHandle:
        return self.inputs[-1]


class EagerMerge(Operator):
    """Merge chunks from many input streams in arrival order.

    Produces two output streams: the merged data stream and a selector stream
    recording, for each chunk, the index of the input stream it came from.
    Used by configuration time-multiplexing (Section 5.3) and by the
    availability feedback loop of dynamic parallelization (Section 5.4).
    """

    kind = "EagerMerge"

    def __init__(self, in_streams: Sequence[StreamHandle], rank: Optional[int] = None,
                 name: Optional[str] = None):
        super().__init__(name=name)
        in_streams = [self._require_handle(h, "EagerMerge input") for h in in_streams]
        if not in_streams:
            raise ShapeError("EagerMerge requires at least one input stream")
        ndims = {h.shape.ndims for h in in_streams}
        if len(ndims) != 1:
            raise ShapeError(
                f"EagerMerge input streams must all have the same rank, got shapes "
                f"{[str(h.shape) for h in in_streams]}")
        self.num_producers = len(in_streams)
        #: chunk granularity; defaults to the full input rank (whole tensors)
        self.rank = int(rank) if rank is not None else in_streams[0].rank
        if self.rank < 0 or self.rank > in_streams[0].rank:
            raise ShapeError(
                f"EagerMerge rank {self.rank} out of range for inputs of rank "
                f"{in_streams[0].rank}")
        self._set_inputs(list(in_streams))
        inner = in_streams[0].shape.inner(self.rank) if self.rank else ()
        merged_outer = Dim.dynamic(name="M")
        data_shape = StreamShape((merged_outer,) + inner)
        self._add_output(data_shape, in_streams[0].dtype, name="data")
        self._add_output(StreamShape((merged_outer,)), SelectorType(self.num_producers),
                         name="selector")

    @property
    def data(self) -> StreamHandle:
        return self.outputs[0]

    @property
    def selector(self) -> StreamHandle:
        return self.outputs[1]
