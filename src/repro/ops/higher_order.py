"""Higher-order operators (Section 3.2.4, Table 5): Map, Accum, Scan, FlatMap.

Each higher-order operator takes a hardware-supported function
(:mod:`repro.ops.functions`) and an allocated compute bandwidth in
FLOPs/cycle.  The simulator charges each input element the Roofline latency of
Section 4.3: ``max(in_bytes / onchip_bw, flops / compute_bw, out_bytes /
onchip_bw)``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..core.dims import Dim
from ..core.dtypes import DataType
from ..core.errors import ShapeError, TypeMismatchError
from ..core.graph import StreamHandle
from .base import Operator
from .functions import AccumFunction, FlatMapFunction, MapFunction

#: Default allocated compute bandwidth (FLOPs/cycle) when the programmer does
#: not specify one; matches the 16x16 BF16 compute tile of Section 4.5
#: (one 16x16x16 MAC tile per cycle would be 8192 FLOPs/cycle; we default to a
#: single tile's worth of multiply-adds per cycle).
DEFAULT_COMPUTE_BW = 512


def _common_input_spec(handles: Sequence[StreamHandle], what: str) -> StreamHandle:
    first = handles[0]
    for other in handles[1:]:
        if other.shape.ndims != first.shape.ndims:
            raise ShapeError(
                f"{what} input streams must have matching dimensionality, "
                f"got {first.shape} vs {other.shape}")
    return first


class Map(Operator):
    """Apply an element-wise function without changing the stream shape.

    Map accepts one or more input streams (e.g. ``Map((a, b), Matmul())``);
    multiple inputs are consumed in lock step and must carry the same logical
    structure.
    """

    kind = "Map"

    def __init__(self, in_streams: Union[StreamHandle, Sequence[StreamHandle]],
                 fn: MapFunction, compute_bw: int = DEFAULT_COMPUTE_BW,
                 out_dtype: Optional[DataType] = None, name: Optional[str] = None):
        super().__init__(name=name)
        if isinstance(in_streams, StreamHandle):
            in_streams = [in_streams]
        in_streams = [self._require_handle(h, "Map input") for h in in_streams]
        if not in_streams:
            raise ShapeError("Map requires at least one input stream")
        if not isinstance(fn, MapFunction):
            raise TypeMismatchError(f"Map fn must be a MapFunction, got {fn!r}")
        first = _common_input_spec(in_streams, "Map")
        self.fn = fn
        self.compute_bw = int(compute_bw)
        self._set_inputs(in_streams)
        self._add_output(first.shape, out_dtype or first.dtype)


class Accum(Operator):
    """Reduce over the ``rank`` innermost dimensions of a stream.

    The accumulator can be larger than the input tile (e.g. RetileRow), and,
    crucially for dynamic tiling, it can have a dynamic size: together with
    Promote this enables accumulating dynamically shaped tiles (Section 5.2).
    """

    kind = "Accum"

    def __init__(self, in_stream: StreamHandle, fn: AccumFunction, rank: int = 1,
                 compute_bw: int = DEFAULT_COMPUTE_BW,
                 out_dtype: Optional[DataType] = None, name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Accum input")
        if not isinstance(fn, AccumFunction):
            raise TypeMismatchError(f"Accum fn must be an AccumFunction, got {fn!r}")
        if rank < 1:
            raise ShapeError(f"Accum rank must be >= 1, got {rank}")
        self._require_rank_at_least(in_stream, rank, "Accum")
        self.fn = fn
        self.rank = int(rank)
        self.compute_bw = int(compute_bw)
        self._set_inputs([in_stream])
        self._add_output(in_stream.shape.drop_inner(self.rank), out_dtype or in_stream.dtype)


class Scan(Operator):
    """Like Accum but emits the accumulator state on every input element."""

    kind = "Scan"

    def __init__(self, in_stream: StreamHandle, fn: AccumFunction, rank: int = 1,
                 compute_bw: int = DEFAULT_COMPUTE_BW,
                 out_dtype: Optional[DataType] = None, name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Scan input")
        if not isinstance(fn, AccumFunction):
            raise TypeMismatchError(f"Scan fn must be an AccumFunction, got {fn!r}")
        if rank < 1:
            raise ShapeError(f"Scan rank must be >= 1, got {rank}")
        self._require_rank_at_least(in_stream, rank, "Scan")
        self.fn = fn
        self.rank = int(rank)
        self.compute_bw = int(compute_bw)
        self._set_inputs([in_stream])
        self._add_output(in_stream.shape, out_dtype or in_stream.dtype)


class FlatMap(Operator):
    """Expand each element into a rank-``rank`` sub-stream and concatenate.

    The output stream gains ``rank`` new innermost dimensions.  When the
    expansion length is data dependent (e.g. splitting a dynamically sized
    tile), the new dimensions are fresh ragged symbols; a static
    ``expansion`` hint can be supplied for the common case of a fixed fan-out.
    """

    kind = "FlatMap"

    def __init__(self, in_stream: StreamHandle, fn: FlatMapFunction, rank: int = 1,
                 compute_bw: int = DEFAULT_COMPUTE_BW,
                 expansion: Optional[Sequence[int]] = None,
                 out_dtype: Optional[DataType] = None, name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "FlatMap input")
        if not isinstance(fn, MapFunction):
            raise TypeMismatchError(f"FlatMap fn must be a MapFunction, got {fn!r}")
        if rank < 1:
            raise ShapeError(f"FlatMap rank must be >= 1, got {rank}")
        self.fn = fn
        self.rank = int(rank)
        self.compute_bw = int(compute_bw)
        self._set_inputs([in_stream])
        if expansion is not None:
            if len(expansion) != rank:
                raise ShapeError(
                    f"FlatMap expansion hint must have {rank} entries, got {len(expansion)}")
            new_dims = [Dim.static(e) for e in expansion]
        else:
            new_dims = [Dim.ragged(name="E") for _ in range(rank)]
        self._add_output(in_stream.shape.append(new_dims), out_dtype or in_stream.dtype)
