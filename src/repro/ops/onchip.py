"""On-chip memory operators (Section 3.2.2, Table 4, Figure 3).

Bufferize stores portions of a stream to on-chip memory and emits a stream of
*buffers* (read-only references); Streamify reads buffers back out, possibly
multiple times, driven by a reference stream.  Together they expose the
trade-off between on-chip memory usage and off-chip traffic / recomputation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.dims import Dim
from ..core.dtypes import BufferType
from ..core.errors import ShapeError, TypeMismatchError
from ..core.graph import StreamHandle
from ..core.shape import StreamShape
from .base import Operator


class Bufferize(Operator):
    """Store the innermost ``rank`` dimensions of the input stream on chip.

    The operator accumulates incoming tiles into on-chip memory until it sees
    a stop token of level >= ``rank``, then enqueues a buffer handle on its
    output and starts filling a new buffer (Figure 3).  The bufferized inner
    dimensions may be dynamic-regular, and the outermost bufferized dimension
    may be dynamic-ragged.
    """

    kind = "Bufferize"

    def __init__(self, in_stream: StreamHandle, rank: int = 1,
                 name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Bufferize input")
        if rank < 1:
            raise ShapeError(f"Bufferize rank must be >= 1, got {rank}")
        if isinstance(in_stream.dtype, BufferType):
            raise TypeMismatchError("Bufferize cannot buffer a stream of buffers")
        self._require_rank_at_least(in_stream, rank, "Bufferize")
        self.rank = int(rank)
        self._set_inputs([in_stream])
        buffered_dims = in_stream.shape.inner(self.rank)
        out_shape = in_stream.shape.drop_inner(self.rank)
        self._add_output(out_shape, BufferType(in_stream.dtype, buffered_dims))

    @property
    def buffer_type(self) -> BufferType:
        return self.outputs[0].dtype  # type: ignore[return-value]


class Streamify(Operator):
    """Read buffers back into a stream, a dynamic number of times.

    For each buffer in the input stream, the reference stream supplies a
    subtree of ``ref_extra_rank`` additional dimensions; every reference data
    element triggers one read of the buffer.  When the buffer shape is fully
    static, the read can be an affine view described by ``stride`` and
    ``out_shape`` (like LinearOffChipLoad); otherwise the buffer contents are
    streamed linearly with their original structure.
    """

    kind = "Streamify"

    def __init__(self, buffers: StreamHandle, ref: Optional[StreamHandle] = None, *,
                 count: int = 1,
                 stride: Optional[Sequence[int]] = None,
                 out_shape: Optional[Sequence[int]] = None,
                 name: Optional[str] = None):
        super().__init__(name=name)
        buffers = self._require_handle(buffers, "Streamify buffer stream")
        if not isinstance(buffers.dtype, BufferType):
            raise TypeMismatchError(
                f"Streamify expects a stream of buffers, got {buffers.dtype}")
        self.buffer_type: BufferType = buffers.dtype
        self.count = int(count)
        self.stride = tuple(int(v) for v in stride) if stride else None
        self.out_shape = tuple(int(v) for v in out_shape) if out_shape else None
        if self.out_shape is not None and not all(
                d.is_static for d in self.buffer_type.dims):
            raise ShapeError(
                "Streamify affine reads (out_shape/stride) require a statically "
                "shaped buffer; dynamic buffers are streamed linearly")

        inputs = [buffers]
        if ref is not None:
            ref = self._require_handle(ref, "Streamify reference")
            if ref.shape.ndims < buffers.shape.ndims:
                raise ShapeError(
                    f"Streamify reference shape {ref.shape} must refine the buffer "
                    f"stream shape {buffers.shape}")
            inputs.append(ref)
            self.ref_extra_rank = ref.shape.ndims - buffers.shape.ndims
            outer_dims = ref.shape.dims
        else:
            if self.count <= 0:
                raise ShapeError(f"Streamify count must be positive, got {self.count}")
            self.ref_extra_rank = 1 if self.count > 1 else 0
            outer_dims = buffers.shape.dims
            if self.count > 1:
                outer_dims = outer_dims + (Dim.static(self.count),)
        self._set_inputs(inputs)

        if self.out_shape is not None:
            read_dims = tuple(Dim.static(d) for d in self.out_shape)
        else:
            read_dims = self.buffer_type.dims
        self._add_output(StreamShape(tuple(outer_dims) + read_dims), self.buffer_type.element)

    @property
    def has_ref(self) -> bool:
        return len(self.inputs) == 2
