"""STeP operators (paper Section 3.2, Tables 3-7).

The operators fall into five categories:

* off-chip memory operators (:mod:`repro.ops.offchip`),
* on-chip memory operators (:mod:`repro.ops.onchip`),
* dynamic routing and merging operators (:mod:`repro.ops.routing`),
* higher-order operators (:mod:`repro.ops.higher_order`),
* shape operators (:mod:`repro.ops.shape_ops`),

plus the hardware-function library used by the higher-order operators
(:mod:`repro.ops.functions`).
"""

from .base import Operator
from .offchip import (
    LinearOffChipLoad,
    LinearOffChipLoadRef,
    LinearOffChipStore,
    RandomOffChipLoad,
    RandomOffChipStore,
)
from .onchip import Bufferize, Streamify
from .routing import EagerMerge, Partition, Reassemble
from .higher_order import Accum, FlatMap, Map, Scan
from .shape_ops import Expand, Flatten, Promote, Repeat, Reshape, Zip

__all__ = [
    "Operator",
    "LinearOffChipLoad",
    "LinearOffChipLoadRef",
    "LinearOffChipStore",
    "RandomOffChipLoad",
    "RandomOffChipStore",
    "Bufferize",
    "Streamify",
    "Partition",
    "Reassemble",
    "EagerMerge",
    "Map",
    "Accum",
    "Scan",
    "FlatMap",
    "Flatten",
    "Reshape",
    "Promote",
    "Expand",
    "Repeat",
    "Zip",
]
