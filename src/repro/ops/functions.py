"""Hardware function library for the higher-order operators (Section 3.2.4).

Higher-order operators (Map, Accum, Scan, FlatMap) take a *function supported
by the hardware* as an argument.  This module provides the functions used by
the paper's workloads:

* element-wise and activation functions (``ElemAdd``, ``ElemMul``, ``SiLU``,
  ``SwiGLUGate``, ``Exp``, ``Scale``),
* matrix multiplication (``Matmul``) with FLOP accounting,
* softmax building blocks (``RowMax``, ``RowSumExp``),
* the retiling functions from the simplified-MoE walk-through
  (``RetileRow``, ``RetileCol``, ``RetileStreamify``),
* accumulator initializers (``ZeroTile``, ``EmptyTile``).

Each function reports the floating-point operations it performs
(:meth:`MapFunction.flops`), which the simulator's Roofline timing model
(Section 4.3) divides by the operator's allocated compute bandwidth.

All functions operate on :class:`~repro.core.dtypes.Tile` values and support
metadata-only tiles: if any input lacks a payload, the result is a
metadata-only tile of the correct shape so large sweeps avoid real arithmetic.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..core.dtypes import Tile, TupleValue
from ..core.errors import ShapeError, TypeMismatchError

#: shared metadata-only result tiles (interned per shape/dtype in core.dtypes)
_meta_tile = Tile.meta_shared


def _payloads_available(*tiles: Tile) -> bool:
    return all(isinstance(t, Tile) and t.has_data for t in tiles)


def _as_tile(value) -> Tile:
    if isinstance(value, Tile):
        return value
    if isinstance(value, TupleValue):
        raise TypeMismatchError("expected a Tile, got a TupleValue; unpack it first")
    raise TypeMismatchError(f"expected a Tile, got {type(value).__name__}")


class MapFunction:
    """Base class for functions passed to Map/Scan/FlatMap."""

    #: human readable name
    name: str = "fn"

    def __call__(self, *inputs):
        raise NotImplementedError

    def flops(self, *inputs) -> int:
        """Floating-point operations performed for these inputs."""
        return 0

    def output_bytes(self, *inputs) -> int:
        """Bytes produced (defaults to the byte size of the computed output)."""
        out = self(*inputs)
        if isinstance(out, (list, tuple)):
            return sum(o.nbytes for o in out)
        return out.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class AccumFunction(MapFunction):
    """Base class for Accum/Scan update functions: ``update(value, state) -> state``."""

    def init(self):
        """Initial accumulator state (called at the start of every group)."""
        return None

    def __call__(self, value, state):
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Element-wise functions
# ---------------------------------------------------------------------------

class ElemWise(MapFunction):
    """Element-wise binary function over two equally shaped tiles."""

    name = "elemwise"
    _np_op: Callable = None
    _flops_per_element = 1

    def __call__(self, a, b):
        a, b = _as_tile(a), _as_tile(b)
        if a.shape != b.shape:
            raise ShapeError(f"{self.name} requires equal tile shapes, got {a.shape} vs {b.shape}")
        if _payloads_available(a, b):
            return Tile.from_array(type(self)._np_op(a.to_array(), b.to_array()), a.dtype)
        return _meta_tile(a.rows, a.cols, a.dtype)

    def flops(self, a, b) -> int:
        return _as_tile(a).num_elements * self._flops_per_element


class ElemAdd(ElemWise):
    name = "elem_add"
    _np_op = staticmethod(np.add)


class ElemMul(ElemWise):
    name = "elem_mul"
    _np_op = staticmethod(np.multiply)


class Scale(MapFunction):
    """Multiply a tile by a scalar."""

    name = "scale"

    def __init__(self, factor: float):
        self.factor = float(factor)

    def __call__(self, a):
        a = _as_tile(a)
        if a.has_data:
            return Tile.from_array(a.to_array() * self.factor, a.dtype)
        return _meta_tile(a.rows, a.cols, a.dtype)

    def flops(self, a) -> int:
        return _as_tile(a).num_elements


class SiLU(MapFunction):
    """The SiLU / swish activation ``x * sigmoid(x)`` used by SwiGLU."""

    name = "silu"

    def __call__(self, a):
        a = _as_tile(a)
        if a.has_data:
            x = a.to_array().astype(np.float64)
            return Tile.from_array(x / (1.0 + np.exp(-x)), a.dtype)
        return _meta_tile(a.rows, a.cols, a.dtype)

    def flops(self, a) -> int:
        # sigmoid (≈4 ops) + multiply
        return 5 * _as_tile(a).num_elements


class SwiGLUGate(MapFunction):
    """``silu(gate) * up`` — the SwiGLU gating combination (two tile inputs)."""

    name = "swiglu_gate"

    def __call__(self, gate, up):
        gate, up = _as_tile(gate), _as_tile(up)
        if gate.shape != up.shape:
            raise ShapeError(f"SwiGLU gate/up shapes differ: {gate.shape} vs {up.shape}")
        if _payloads_available(gate, up):
            g = gate.to_array().astype(np.float64)
            return Tile.from_array((g / (1.0 + np.exp(-g))) * up.to_array(), gate.dtype)
        return _meta_tile(gate.rows, gate.cols, gate.dtype)

    def flops(self, gate, up) -> int:
        return 6 * _as_tile(gate).num_elements


class Exp(MapFunction):
    name = "exp"

    def __call__(self, a):
        a = _as_tile(a)
        if a.has_data:
            return Tile.from_array(np.exp(a.to_array().astype(np.float64)), a.dtype)
        return _meta_tile(a.rows, a.cols, a.dtype)

    def flops(self, a) -> int:
        return 4 * _as_tile(a).num_elements


# ---------------------------------------------------------------------------
# Matrix multiplication and reductions
# ---------------------------------------------------------------------------

class Matmul(MapFunction):
    """Matrix multiplication ``A @ B`` of two tiles.

    ``transpose_b`` computes ``A @ B^T`` (used by attention scores Q·K^T).
    """

    name = "matmul"

    def __init__(self, transpose_b: bool = False):
        self.transpose_b = bool(transpose_b)

    def _check(self, a: Tile, b: Tile) -> tuple:
        k_b = b.cols if self.transpose_b else b.rows
        n = b.rows if self.transpose_b else b.cols
        if a.cols != k_b:
            raise ShapeError(
                f"matmul inner dimensions differ: ({a.rows}x{a.cols}) @ "
                f"({b.rows}x{b.cols}){'^T' if self.transpose_b else ''}")
        return a.rows, a.cols, n

    def __call__(self, a, b):
        a, b = _as_tile(a), _as_tile(b)
        m, k, n = self._check(a, b)
        if _payloads_available(a, b):
            rhs = b.to_array().T if self.transpose_b else b.to_array()
            return Tile.from_array(a.to_array() @ rhs, a.dtype)
        return _meta_tile(m, n, a.dtype)

    def flops(self, a, b) -> int:
        a, b = _as_tile(a), _as_tile(b)
        m, k, n = self._check(a, b)
        return 2 * m * k * n


class RowMax(MapFunction):
    """Row-wise maximum (a [R,C] tile -> [R,1] tile), used by softmax."""

    name = "row_max"

    def __call__(self, a):
        a = _as_tile(a)
        if a.has_data:
            return Tile.from_array(a.to_array().max(axis=1, keepdims=True), a.dtype)
        return _meta_tile(a.rows, 1, a.dtype)

    def flops(self, a) -> int:
        return _as_tile(a).num_elements


class RowSum(MapFunction):
    """Row-wise sum (a [R,C] tile -> [R,1] tile)."""

    name = "row_sum"

    def __call__(self, a):
        a = _as_tile(a)
        if a.has_data:
            return Tile.from_array(a.to_array().sum(axis=1, keepdims=True), a.dtype)
        return _meta_tile(a.rows, 1, a.dtype)

    def flops(self, a) -> int:
        return _as_tile(a).num_elements


# ---------------------------------------------------------------------------
# Accumulator functions
# ---------------------------------------------------------------------------

class SumAccum(AccumFunction):
    """Element-wise running sum of equally shaped tiles."""

    name = "sum_accum"

    def init(self):
        return None

    def __call__(self, value, state):
        value = _as_tile(value)
        if state is None:
            return value
        state = _as_tile(state)
        if state.shape != value.shape:
            raise ShapeError(f"SumAccum shapes differ: {state.shape} vs {value.shape}")
        if _payloads_available(value, state):
            return Tile.from_array(state.to_array() + value.to_array(), value.dtype)
        return _meta_tile(value.rows, value.cols, value.dtype)

    def flops(self, value, state) -> int:
        return _as_tile(value).num_elements


class MatmulAccum(AccumFunction):
    """Inner-product matmul accumulation: ``state += A @ B`` over (A, B) tuples.

    Used when the reduction (K) dimension of a matrix multiplication is tiled:
    the operator receives a stream of ``Zip``-ped (A-tile, B-tile) pairs and
    accumulates partial products.
    """

    name = "matmul_accum"

    def __init__(self, transpose_b: bool = False):
        self.matmul = Matmul(transpose_b=transpose_b)
        self.adder = ElemAdd()

    def init(self):
        return None

    def __call__(self, value, state):
        if not isinstance(value, TupleValue) or len(value) != 2:
            raise TypeMismatchError("MatmulAccum expects (A, B) tuple values; use Zip")
        partial = self.matmul(value[0], value[1])
        if state is None:
            return partial
        return self.adder(state, partial)

    def flops(self, value, state) -> int:
        flops = self.matmul.flops(value[0], value[1])
        if state is not None:
            flops += _as_tile(state).num_elements
        return flops


class RetileRow(AccumFunction):
    """Concatenate tiles row-wise into a larger tile (Pack-to-Tile in Fig. 7)."""

    name = "retile_row"

    def init(self):
        return None

    def __call__(self, value, state):
        value = _as_tile(value)
        if state is None:
            return value
        state = _as_tile(state)
        if state.cols != value.cols:
            raise ShapeError(
                f"RetileRow requires equal column counts, got {state.cols} vs {value.cols}")
        if _payloads_available(value, state):
            return Tile.from_array(np.vstack([state.to_array(), value.to_array()]), value.dtype)
        return _meta_tile(state.rows + value.rows, value.cols, value.dtype)

    def flops(self, value, state) -> int:
        return 0  # data movement only


class RetileCol(AccumFunction):
    """Concatenate tiles column-wise into a larger tile (Pack-Tile in Fig. 7)."""

    name = "retile_col"

    def init(self):
        return None

    def __call__(self, value, state):
        value = _as_tile(value)
        if state is None:
            return value
        state = _as_tile(state)
        if state.rows != value.rows:
            raise ShapeError(
                f"RetileCol requires equal row counts, got {state.rows} vs {value.rows}")
        if _payloads_available(value, state):
            return Tile.from_array(np.hstack([state.to_array(), value.to_array()]), value.dtype)
        return _meta_tile(value.rows, state.cols + value.cols, value.dtype)

    def flops(self, value, state) -> int:
        return 0


# ---------------------------------------------------------------------------
# FlatMap functions
# ---------------------------------------------------------------------------

class FlatMapFunction(MapFunction):
    """Base class for FlatMap functions: ``__call__`` returns a list of values."""

    def __call__(self, value) -> List:
        raise NotImplementedError


class RetileStreamify(FlatMapFunction):
    """Split a tile row-wise into ``rows_per_tile``-row tiles (Unpack-Tile in Fig. 7)."""

    name = "retile_streamify"

    def __init__(self, rows_per_tile: int = 1):
        if rows_per_tile <= 0:
            raise ShapeError(f"rows_per_tile must be positive, got {rows_per_tile}")
        self.rows_per_tile = int(rows_per_tile)

    def __call__(self, value) -> List[Tile]:
        value = _as_tile(value)
        pieces: List[Tile] = []
        for start in range(0, value.rows, self.rows_per_tile):
            rows = min(self.rows_per_tile, value.rows - start)
            if value.has_data:
                pieces.append(Tile.from_array(value.to_array()[start:start + rows], value.dtype))
            else:
                pieces.append(_meta_tile(rows, value.cols, value.dtype))
        return pieces

    def flops(self, value) -> int:
        return 0


class SplitCols(FlatMapFunction):
    """Split a tile column-wise into ``cols_per_tile``-column tiles."""

    name = "split_cols"

    def __init__(self, cols_per_tile: int):
        if cols_per_tile <= 0:
            raise ShapeError(f"cols_per_tile must be positive, got {cols_per_tile}")
        self.cols_per_tile = int(cols_per_tile)

    def __call__(self, value) -> List[Tile]:
        value = _as_tile(value)
        pieces: List[Tile] = []
        for start in range(0, value.cols, self.cols_per_tile):
            cols = min(self.cols_per_tile, value.cols - start)
            if value.has_data:
                pieces.append(
                    Tile.from_array(value.to_array()[:, start:start + cols], value.dtype))
            else:
                pieces.append(_meta_tile(value.rows, cols, value.dtype))
        return pieces

    def flops(self, value) -> int:
        return 0


# ---------------------------------------------------------------------------
# Initializers / misc helpers
# ---------------------------------------------------------------------------

def zero_tile(rows: int, cols: int, dtype="bf16", with_data: bool = False) -> Tile:
    """A zero tile of the given shape, optionally carrying a real payload."""
    if with_data:
        return Tile.zeros(rows, cols, dtype)
    return _meta_tile(rows, cols, dtype)
