"""Operator base class and registry.

Every STeP operator is a graph node (:class:`~repro.core.graph.OperatorBase`)
whose constructor implements the shape semantics of Tables 3-7: it validates
its input stream shapes/data types and creates output handles with the derived
shapes.  The functional and timing semantics live in the simulator executors
(:mod:`repro.sim.executors`), which are looked up through the registry defined
here.
"""

from __future__ import annotations

from typing import Dict, Type

from ..core.graph import OperatorBase, StreamHandle
from ..core.errors import GraphError, TypeMismatchError


class Operator(OperatorBase):
    """Base class for all STeP operators.

    Subclasses set :attr:`kind` and, in their constructor, call
    ``self._set_inputs(...)`` and ``self._add_output(...)`` after deriving the
    output shapes.  Operator-specific parameters are stored as plain
    attributes so the simulator executors (and tests) can read them.
    """

    #: class-level registry: kind name -> operator class
    registry: Dict[str, Type["Operator"]] = {}

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.kind and cls.kind != "Operator":
            Operator.registry[cls.kind] = cls

    # -- helpers shared by operator constructors ----------------------------------
    @staticmethod
    def _require_handle(handle, what: str) -> StreamHandle:
        if not isinstance(handle, StreamHandle):
            raise GraphError(f"{what} must be a StreamHandle, got {type(handle).__name__}")
        return handle

    @staticmethod
    def _require_rank_at_least(handle: StreamHandle, rank: int, what: str) -> None:
        if handle.rank < rank:
            raise TypeMismatchError(
                f"{what} requires a stream of rank >= {rank}, got rank {handle.rank} "
                f"({handle.shape})")


def operator_kinds() -> list:
    """All registered operator kind names (sorted)."""
    return sorted(Operator.registry)
