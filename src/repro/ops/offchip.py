"""Off-chip memory operators (Section 3.2.1, Table 3, Figure 2).

These operators express the interface between on-chip and off-chip memory.
Because off-chip traffic only occurs here, the symbolic frontend can derive a
program's total off-chip traffic (and hence operational intensity) by summing
``||output stream|| * |output dtype|`` over the off-chip operators
(Section 4.2).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core.dims import Dim
from ..core.dtypes import ElemType, TileType, elem_type
from ..core.errors import ShapeError
from ..core.graph import StreamHandle
from ..core.shape import StreamShape
from .base import Operator


def _check_tiling(in_mem_shape: Sequence[int], tile_shape: Sequence[int], what: str) -> None:
    if len(in_mem_shape) != 2 or len(tile_shape) != 2:
        raise ShapeError(f"{what} expects 2-D in-memory and tile shapes")
    for full, tile in zip(in_mem_shape, tile_shape):
        if tile <= 0 or full <= 0:
            raise ShapeError(f"{what} shapes must be positive, got {in_mem_shape}/{tile_shape}")
        if full % tile != 0:
            raise ShapeError(
                f"{what} tile shape {tuple(tile_shape)} must divide the stored tensor "
                f"shape {tuple(in_mem_shape)}")


class LinearOffChipLoad(Operator):
    """Affine (strided) load of a tiled tensor from off-chip memory (Figure 2).

    The stored tensor of shape ``in_mem_shape`` is read as ``tile_shape`` tiles;
    ``stride_tiled``/``shape_tiled`` describe the affine read pattern *in units
    of tiles*.  The read is triggered once per element of the reference stream
    (the reference data itself is ignored); the static variant replaces the
    reference stream with a ``count`` argument.

    Parameters mirror the paper's frontend: ``underlying`` optionally provides
    the stored tensor's payload so functional tests can check real numerics.
    """

    kind = "LinearOffChipLoad"

    def __init__(self, ref: Optional[StreamHandle] = None, *, base_addr: int = 0,
                 in_mem_shape: Sequence[int], tile_shape: Sequence[int],
                 stride_tiled: Optional[Sequence[int]] = None,
                 shape_tiled: Optional[Sequence[int]] = None,
                 dtype: Union[str, ElemType] = "bf16",
                 underlying: Optional[np.ndarray] = None,
                 count: int = 1, name: Optional[str] = None):
        super().__init__(name=name)
        _check_tiling(in_mem_shape, tile_shape, "LinearOffChipLoad")
        self.base_addr = int(base_addr)
        self.in_mem_shape = tuple(int(v) for v in in_mem_shape)
        self.tile_shape = tuple(int(v) for v in tile_shape)
        tiles_grid = (self.in_mem_shape[0] // self.tile_shape[0],
                      self.in_mem_shape[1] // self.tile_shape[1])
        self.shape_tiled = tuple(int(v) for v in (shape_tiled or tiles_grid))
        self.stride_tiled = tuple(int(v) for v in (stride_tiled or (tiles_grid[1], 1)))
        self.dtype = elem_type(dtype)
        self.count = int(count)
        if underlying is not None:
            underlying = np.asarray(underlying)
            if underlying.shape != self.in_mem_shape:
                raise ShapeError(
                    f"underlying tensor shape {underlying.shape} does not match "
                    f"in_mem_shape {self.in_mem_shape}")
        self.underlying = underlying

        inputs = []
        if ref is not None:
            ref = self._require_handle(ref, "LinearOffChipLoad reference")
            inputs.append(ref)
            outer_dims = ref.shape.dims
        else:
            if self.count < 0:
                raise ShapeError(f"count must be non-negative, got {count}")
            outer_dims = (Dim.static(self.count),)
        self._set_inputs(inputs)
        read_dims = tuple(Dim.static(d) for d in self.shape_tiled)
        out_shape = StreamShape(outer_dims + read_dims)
        self._add_output(out_shape, TileType(self.tile_shape[0], self.tile_shape[1], self.dtype))

    @property
    def has_ref(self) -> bool:
        return bool(self.inputs)

    @property
    def tiles_per_read(self) -> int:
        total = 1
        for dim in self.shape_tiled:
            total *= dim
        return total

    @property
    def tile_nbytes(self) -> int:
        return self.tile_shape[0] * self.tile_shape[1] * self.dtype.nbytes


class LinearOffChipLoadRef(LinearOffChipLoad):
    """Alias used by the paper's frontend when the read count is a reference stream."""

    kind = "LinearOffChipLoadRef"

    def __init__(self, ref: StreamHandle, **kwargs):
        if ref is None:
            raise ShapeError("LinearOffChipLoadRef requires a reference stream")
        super().__init__(ref=ref, **kwargs)


class LinearOffChipStore(Operator):
    """Linearly store the input stream's tiles to off-chip memory."""

    kind = "LinearOffChipStore"

    def __init__(self, in_stream: StreamHandle, base_addr: int = 0,
                 name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "LinearOffChipStore input")
        self.base_addr = int(base_addr)
        self._set_inputs([in_stream])
        # A store is a sink: no output streams.  The stored tokens are exposed
        # through the simulator report for functional checks.


class RandomOffChipLoad(Operator):
    """Random-access load: one tile per address in the read-address stream.

    Used by configuration time-multiplexing to fetch the weights of whichever
    expert is currently selected (Section 5.3, Figure 11).
    """

    kind = "RandomOffChipLoad"

    def __init__(self, raddr: StreamHandle, *, base_addr: int = 0,
                 tile_shape: Sequence[int], in_mem_shape: Optional[Sequence[int]] = None,
                 dtype: Union[str, ElemType] = "bf16",
                 underlying: Optional[np.ndarray] = None,
                 tiles_per_access: int = 1, name: Optional[str] = None):
        super().__init__(name=name)
        raddr = self._require_handle(raddr, "RandomOffChipLoad address stream")
        if len(tile_shape) != 2 or min(tile_shape) <= 0:
            raise ShapeError(f"RandomOffChipLoad tile shape must be positive 2-D, got {tile_shape}")
        self.base_addr = int(base_addr)
        self.tile_shape = tuple(int(v) for v in tile_shape)
        self.in_mem_shape = tuple(int(v) for v in in_mem_shape) if in_mem_shape else None
        self.dtype = elem_type(dtype)
        #: how many tiles a single address fetches (a whole weight block for
        #: time-multiplexed experts); the output stream gains an inner static
        #: dimension when > 1.
        self.tiles_per_access = int(tiles_per_access)
        self.underlying = None if underlying is None else np.asarray(underlying)
        self._set_inputs([raddr])
        if self.tiles_per_access > 1:
            out_shape = raddr.shape.append([self.tiles_per_access])
        else:
            out_shape = raddr.shape
        self._add_output(out_shape, TileType(self.tile_shape[0], self.tile_shape[1], self.dtype))

    @property
    def tile_nbytes(self) -> int:
        return self.tile_shape[0] * self.tile_shape[1] * self.dtype.nbytes


class RandomOffChipStore(Operator):
    """Random-access store: write-data tiles at addresses from the address stream."""

    kind = "RandomOffChipStore"

    def __init__(self, waddr: StreamHandle, wdata: StreamHandle, *, base_addr: int = 0,
                 in_mem_shape: Optional[Sequence[int]] = None, name: Optional[str] = None):
        super().__init__(name=name)
        waddr = self._require_handle(waddr, "RandomOffChipStore address stream")
        wdata = self._require_handle(wdata, "RandomOffChipStore data stream")
        self.base_addr = int(base_addr)
        self.in_mem_shape = tuple(int(v) for v in in_mem_shape) if in_mem_shape else None
        self._set_inputs([waddr, wdata])
        self._add_output(waddr.shape, TileType(1, 1, "bool"), name="ack")
