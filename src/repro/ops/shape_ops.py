"""Shape operators (Section 3.2.5, Table 7).

Shape operators only modify stop tokens — they never alter the data contents of
stream elements.  They are: Flatten, Reshape, Promote, Expand (plus its static
variant Repeat) and Zip.
"""

from __future__ import annotations

from typing import Optional


from ..core.dtypes import TileType, TupleType
from ..core.errors import ShapeError
from ..core.graph import StreamHandle
from .base import Operator


class Flatten(Operator):
    """Flatten a contiguous range of dimensions into one.

    ``min_level`` / ``max_level`` are counted from the innermost dimension
    (level 0), matching the ``(0D, 1D)`` notation in Figure 7.  If a ragged
    dimension participates, the flattened dimension is a fresh ragged symbol
    (the absorbing property of Section 3.1).
    """

    kind = "Flatten"

    def __init__(self, in_stream: StreamHandle, min_level: int, max_level: int,
                 name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Flatten input")
        if min_level > max_level:
            raise ShapeError(f"Flatten requires min <= max, got {min_level} > {max_level}")
        self.min_level = int(min_level)
        self.max_level = int(max_level)
        self._set_inputs([in_stream])
        out_shape = in_stream.shape.flatten(self.min_level, self.max_level)
        self._add_output(out_shape, in_stream.dtype)


class Reshape(Operator):
    """Split dimension ``level`` into statically sized chunks.

    When splitting the innermost dimension (``level == 0``) the operator takes
    a ``pad`` value and pads the last chunk; it produces two output streams,
    the data stream and a boolean *padding stream* marking padded elements.
    Splitting an outer dimension requires a static dimension divisible by the
    chunk size and produces no padding.
    """

    kind = "Reshape"

    def __init__(self, in_stream: StreamHandle, chunk_size: int, level: int = 0,
                 pad=None, name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Reshape input")
        if chunk_size <= 0:
            raise ShapeError(f"Reshape chunk size must be positive, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self.level = int(level)
        self.pad = pad
        if self.level == 0 and pad is None:
            raise ShapeError("Reshape of the innermost dimension requires a pad value")
        self._set_inputs([in_stream])
        out_shape = in_stream.shape.reshape_split(self.level, self.chunk_size)
        self._add_output(out_shape, in_stream.dtype, name="data")
        self._add_output(out_shape, TileType(1, 1, "bool"), name="padding")

    @property
    def data(self) -> StreamHandle:
        return self.outputs[0]

    @property
    def padding(self) -> StreamHandle:
        return self.outputs[1]


class Promote(Operator):
    """Add a new outermost dimension of size 1 (0 for an empty input stream)."""

    kind = "Promote"

    def __init__(self, in_stream: StreamHandle, name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Promote input")
        self._set_inputs([in_stream])
        self._add_output(in_stream.shape.promote(), in_stream.dtype)


class Expand(Operator):
    """Repeat input elements according to a reference stream (Figure 5).

    ``rank`` is set to the smallest stop-token level of the input stream: the
    input provides one element per reference subtree of depth ``rank``; that
    element is emitted once for every reference data element in the subtree.
    The output stream has the shape of the reference stream.
    """

    kind = "Expand"

    def __init__(self, in_stream: StreamHandle, ref: StreamHandle, rank: int,
                 name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Expand input")
        ref = self._require_handle(ref, "Expand reference")
        if rank < 1:
            raise ShapeError(f"Expand rank must be >= 1, got {rank}")
        if ref.rank < rank:
            raise ShapeError(
                f"Expand rank {rank} exceeds reference stream rank {ref.rank}")
        self.rank = int(rank)
        self._set_inputs([in_stream, ref])
        self._add_output(ref.shape, in_stream.dtype)


class Repeat(Operator):
    """Static variant of Expand: repeat every element ``count`` times.

    Adds a new innermost dimension of size ``count`` (used by the hierarchical
    tiling transformation in Figure 18).  All STeP operators with an input
    reference stream have a static variant (footnote 6); Repeat is the static
    variant of Expand.
    """

    kind = "Repeat"

    def __init__(self, in_stream: StreamHandle, count: int, name: Optional[str] = None):
        super().__init__(name=name)
        in_stream = self._require_handle(in_stream, "Repeat input")
        if count <= 0:
            raise ShapeError(f"Repeat count must be positive, got {count}")
        self.count = int(count)
        self._set_inputs([in_stream])
        self._add_output(in_stream.shape.append([self.count]), in_stream.dtype)


class Zip(Operator):
    """Group two streams with the same shape into a single tuple-typed stream."""

    kind = "Zip"

    def __init__(self, left: StreamHandle, right: StreamHandle, name: Optional[str] = None):
        super().__init__(name=name)
        left = self._require_handle(left, "Zip left input")
        right = self._require_handle(right, "Zip right input")
        if left.shape.ndims != right.shape.ndims:
            raise ShapeError(
                f"Zip requires equal stream dimensionality, got {left.shape} vs {right.shape}")
        if not left.shape.compatible_with(right.shape):
            raise ShapeError(f"Zip stream shapes are incompatible: {left.shape} vs {right.shape}")
        self._set_inputs([left, right])
        self._add_output(left.shape, TupleType([left.dtype, right.dtype]))
