"""The calibration harness: sample the step-signature space, fit, validate.

Offline counterpart of the engine's per-run adaptive calibration
(:mod:`repro.costmodel.runtime`): :func:`probe_signatures` lays a
deterministic grid over the step-signature space (token-batch sizes ×
request counts × ``kv_tile_rows``-quantized KV lengths, geometric ladders
so the extremes are always covered), :func:`run_probes` costs each
signature through the exact event engine (sharing the process-wide step
memo, so calibration warms the exact path for free), and
:func:`calibrate_model` fits the requested surrogate kind and validates its
residuals on a held-out slice of the probes.  ``python -m repro.costmodel
calibrate`` wraps this into a CLI that writes the fitted artifact as JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ConfigError
from ..platforms import PlatformLike, resolve_platform
from ..schedules import Schedule
from ..serve.arrivals import quantize_up
from .models import (CostModel, Probe, fit_from_probes, signature_features)

#: distinct step signatures an adaptive surrogate probes through the exact
#: engine before fitting itself (and the CLI's default probe budget)
DEFAULT_PROBE_BUDGET = 64

#: one probe signature: (num_tokens, quantized kv_lengths)
Signature = Tuple[int, Tuple[int, ...]]


def _geometric_ladder(lo: int, hi: int) -> List[int]:
    """``lo, 2*lo, 4*lo, ...`` capped at (and always including) ``hi``."""
    values: List[int] = []
    value = lo
    while value < hi:
        values.append(value)
        value *= 2
    values.append(hi)
    return values


def probe_signatures(budget: int, *, batch_cap: int = 8,
                     kv_tile_rows: int = 64, max_tokens: int = 256,
                     max_kv_rows: int = 4096) -> List[Signature]:
    """A deterministic, budgeted sample of the step-signature space.

    The full grid crosses request counts (1..\\ ``batch_cap``, geometric)
    with per-request KV lengths (one tile..\\ ``max_kv_rows``, geometric)
    for decode-shaped steps (one token per request), plus prefill-shaped
    steps (one prefill of 1..\\ ``max_tokens`` context joining the batch).
    When the grid exceeds ``budget``, evenly spaced grid points are kept —
    the range extremes survive any budget, so a fitted model's probed
    ranges cover the space and extrapolation guards rarely fire.
    """
    if budget < 1:
        raise ConfigError(f"probe budget must be >= 1 (an empty probe "
                          f"budget cannot calibrate anything), got {budget}")
    if batch_cap < 1:
        raise ConfigError(f"batch_cap must be >= 1, got {batch_cap}")
    if max_tokens < 1:
        raise ConfigError(f"max_tokens must be >= 1, got {max_tokens}")
    if max_kv_rows < kv_tile_rows:
        raise ConfigError(f"max_kv_rows ({max_kv_rows}) must be >= "
                          f"kv_tile_rows ({kv_tile_rows})")
    requests = _geometric_ladder(1, batch_cap)
    kv_rows = _geometric_ladder(kv_tile_rows, quantize_up(max_kv_rows,
                                                          kv_tile_rows))
    prefills = _geometric_ladder(1, max_tokens)
    grid: List[Signature] = []
    seen = set()

    def add(num_tokens: int, kv_lengths: Tuple[int, ...]) -> None:
        signature = (num_tokens, tuple(sorted(kv_lengths)))
        if signature not in seen:
            seen.add(signature)
            grid.append(signature)

    for num_requests in requests:
        for kv in kv_rows:
            # decode-shaped: every runner contributes one token
            add(num_requests, (kv,) * num_requests)
            # prefill-shaped: one request prefills `chunk` context tokens
            # while the rest decode at `kv`
            for chunk in prefills:
                context = quantize_up(max(chunk, 1), kv_tile_rows)
                add(chunk + (num_requests - 1),
                    (context,) + (kv,) * (num_requests - 1))
    grid.sort(key=lambda s: (signature_features(*s), s))
    if budget >= len(grid):
        return grid
    if budget == 1:
        return [grid[0]]
    # evenly spaced ranks over the feature-sorted grid keep both extremes
    picks = sorted({round(i * (len(grid) - 1) / (budget - 1))
                    for i in range(budget)})
    return [grid[i] for i in picks]


def run_probes(signatures: List[Signature], *, model, schedule: Schedule,
               platform: PlatformLike = None, num_layers: int = 2,
               kv_tile_rows: int = 64, moe_compute_bw: int = 8192,
               attention_compute_bw: int = 256,
               seed: int = 0) -> Tuple[List[Probe], str]:
    """Cost each signature through the exact engine; returns (probes, context).

    Probes share the process-wide step memo with real serving runs, so
    calibration doubles as a warm-up of the exact path.
    """
    # deferred: the scheduler binds cost models lazily through this package
    from ..serve import scheduler

    config = scheduler.ServeConfig(
        model=model, num_layers=num_layers, kv_tile_rows=kv_tile_rows,
        moe_compute_bw=moe_compute_bw,
        attention_compute_bw=attention_compute_bw, seed=seed)
    hardware = resolve_platform(platform).hardware
    context = scheduler._context_key(config, schedule, hardware)
    probes: List[Probe] = []
    for num_tokens, kv_lengths in signatures:
        cycles = scheduler._step_cycles(config, schedule, hardware, context,
                                        num_tokens, kv_lengths, {})
        probes.append((num_tokens, kv_lengths, cycles))
    return probes, context


def calibrate_model(model, schedule: Optional[Schedule] = None,
                    platform: PlatformLike = None, *,
                    kind: str = "calibrated",
                    budget: int = DEFAULT_PROBE_BUDGET,
                    batch_cap: int = 8, max_tokens: int = 256,
                    max_kv_rows: int = 4096, num_layers: int = 2,
                    kv_tile_rows: int = 64, moe_compute_bw: int = 8192,
                    attention_compute_bw: int = 256, seed: int = 0,
                    extrapolation: str = "clamp",
                    holdout_every: int = 4) -> Tuple[CostModel,
                                                     Dict[str, Any]]:
    """Probe, fit and validate one (platform × schedule) cost model.

    Every ``holdout_every``-th probe is held out of the fit and used to
    validate residuals on signatures the model never saw (skipped when the
    budget is too small to spare probes).  Returns the fitted model plus a
    validation report: probe counts, fit metadata, and the mean/max
    relative residuals on both the fit and held-out sets.
    """
    schedule = schedule or Schedule.dynamic()
    signatures = probe_signatures(budget, batch_cap=batch_cap,
                                  kv_tile_rows=kv_tile_rows,
                                  max_tokens=max_tokens,
                                  max_kv_rows=max_kv_rows)
    probes, context = run_probes(
        signatures, model=model, schedule=schedule, platform=platform,
        num_layers=num_layers, kv_tile_rows=kv_tile_rows,
        moe_compute_bw=moe_compute_bw,
        attention_compute_bw=attention_compute_bw, seed=seed)
    if holdout_every > 1 and len(probes) >= 2 * holdout_every:
        held_out = probes[holdout_every - 1::holdout_every]
        fit_set = [p for i, p in enumerate(probes)
                   if (i + 1) % holdout_every != 0]
    else:
        held_out = []
        fit_set = probes
    fitted = fit_from_probes(fit_set, kind=kind, context_hash=context,
                             kv_tile_rows=kv_tile_rows,
                             extrapolation=extrapolation)
    residuals = [abs(fitted.predict(t, k) - c) / max(c, 1.0)
                 for t, k, c in held_out]
    report: Dict[str, Any] = {
        "kind": fitted.kind,
        "context": context,
        "schedule": schedule.name,
        "platform": resolve_platform(platform).name,
        "probes": len(probes),
        "fit_probes": len(fit_set),
        "holdout_probes": len(held_out),
        "holdout_mean_rel": (sum(residuals) / len(residuals)
                             if residuals else 0.0),
        "holdout_max_rel": max(residuals, default=0.0),
    }
    if hasattr(fitted, "fit_metadata"):
        report["fit"] = fitted.fit_metadata()
    return fitted, report
