"""``python -m repro.costmodel calibrate`` — fit and validate a cost model.

Samples the step-signature space for one platform × schedule, costs every
probe through the exact event engine, fits the requested surrogate kind
(``calibrated`` by default, ``table`` for the lookup model), validates the
residuals on a held-out probe slice and writes the artifact as JSON.  The
artifact plugs straight into ``ServeConfig(engine="surrogate",
cost_model=load_cost_model(path))`` or the ``serve``/``fleet`` sweep tasks
(pass the ``to_dict()`` payload).

Example::

    python -m repro.costmodel calibrate --model-scale 32 --platform sda \\
        --schedule dynamic --budget 64 --output costmodel.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..core.errors import ConfigError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.costmodel",
        description="Calibrate a serving step-cost surrogate against the "
                    "exact event engine.")
    commands = parser.add_subparsers(dest="command", required=True)
    cal = commands.add_parser(
        "calibrate", help="probe the exact engine, fit, validate residuals")
    cal.add_argument("--model-scale", type=int, default=32,
                     help="Qwen3-30B-A3B down-scale factor (default 32)")
    cal.add_argument("--max-experts", type=int, default=16,
                     help="cap on the scaled model's expert pool (default 16)")
    cal.add_argument("--platform", default=None,
                     help="registered platform name (default: sda)")
    cal.add_argument("--schedule", choices=("dynamic", "static"),
                     default="dynamic", help="unified schedule (default "
                     "dynamic)")
    cal.add_argument("--kind", choices=("calibrated", "table"),
                     default="calibrated", help="surrogate kind to fit")
    cal.add_argument("--budget", type=int, default=None,
                     help="probe budget: exact-engine steps to sample "
                          "(default 64)")
    cal.add_argument("--batch-cap", type=int, default=8)
    cal.add_argument("--max-tokens", type=int, default=256,
                     help="largest prefill token batch to probe")
    cal.add_argument("--max-kv-rows", type=int, default=4096,
                     help="largest per-request KV length to probe")
    cal.add_argument("--num-layers", type=int, default=2)
    cal.add_argument("--kv-tile-rows", type=int, default=64)
    cal.add_argument("--seed", type=int, default=0)
    cal.add_argument("--extrapolation", choices=("clamp", "raise"),
                     default="clamp",
                     help="what the model does outside the probed ranges")
    cal.add_argument("--tolerance", type=float, default=None,
                     help="fail (exit 1) when the held-out max relative "
                          "residual exceeds this bound")
    cal.add_argument("--output", default=None,
                     help="write the fitted model as JSON here")
    return parser


def _calibrate(args: argparse.Namespace) -> int:
    from ..schedules import Schedule
    from ..workloads.configs import QWEN3_30B_A3B, cap_experts, scaled_config
    from .calibrate import DEFAULT_PROBE_BUDGET, calibrate_model
    from .models import save_cost_model

    model = cap_experts(scaled_config(QWEN3_30B_A3B, scale=args.model_scale),
                        args.max_experts)
    schedule = (Schedule.dynamic() if args.schedule == "dynamic"
                else Schedule.static("static", tile_rows=4))
    budget = DEFAULT_PROBE_BUDGET if args.budget is None else args.budget
    fitted, report = calibrate_model(
        model, schedule, args.platform, kind=args.kind, budget=budget,
        batch_cap=args.batch_cap, max_tokens=args.max_tokens,
        max_kv_rows=args.max_kv_rows, num_layers=args.num_layers,
        kv_tile_rows=args.kv_tile_rows, seed=args.seed,
        extrapolation=args.extrapolation)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        save_cost_model(fitted, args.output)
        print(f"wrote {fitted.kind} cost model to {args.output}")
    if args.tolerance is not None and \
            report["holdout_max_rel"] > args.tolerance:
        print(f"FAIL: held-out max relative residual "
              f"{report['holdout_max_rel']:.4f} exceeds the tolerance "
              f"{args.tolerance}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "calibrate":
            return _calibrate(args)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
