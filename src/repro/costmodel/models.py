"""Cost-model artifacts behind a registry: exact, table and calibrated.

A *cost model* answers one question — how many cycles does a serving step
with a given **step signature** (token-batch size plus the multiset of
``kv_tile_rows``-quantized per-request KV lengths) take — without running
the dataflow event engine.  Three builtin kinds, behind the shared registry
index of :mod:`repro.serve.registry` (kind ``"costmodel"``):

* ``"exact"`` — delegates every signature to the event engine through the
  process-wide step memo; bit-identical to ``engine="exact"``, the anchor
  every surrogate is validated against,
* ``"table"`` — interpolated lookup over probed step signatures: exact
  matches replay the probed cycles, unseen signatures interpolate over the
  nearest probes in feature space,
* ``"calibrated"`` — an affine model over the signature features
  ``(1, tokens, requests, kv_rows)`` fit by least squares from a budgeted
  set of exact-engine probes per platform × schedule, serializable to/from
  JSON with its fit metadata (probe count, coefficients, residuals).

**Documented error bound.** A step's exact cost is the sum of the QKV, MoE
(both driven by the token count) and attention (driven by the quantized KV
multiset) sub-simulations — close to affine in the signature features, but
with tiling steps and routing noise the fit cannot express.  The residual
metadata on every fitted model records the observed probe error;
:data:`SURROGATE_TOLERANCE` is the bound the tier-1 error-bound test pins
surrogate TTFT/TPOT/e2e percentiles to, across platforms and policies
(``tests/costmodel/test_surrogate_engine.py``).

**Extrapolation is never silent** (the probed ranges are part of every
artifact): a signature outside the probed feature ranges either raises a
:class:`~repro.core.errors.ConfigError` (``extrapolation="raise"``) or is
clamped to the probed range with a :class:`CostModelExtrapolationWarning`
(``extrapolation="clamp"``, the default).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..serve.registry import attach_registry, resolve_registered, seal_builtins

#: relative tolerance on serving percentiles (TTFT/TPOT/e2e) that the
#: surrogate engine is pinned to reproduce the exact engine within, across
#: platforms and scheduling policies.  Adaptive calibration keeps probed
#: signatures exact and only predicts unprobed ones, so observed errors are
#: far smaller in practice; this is the documented, tier-1-enforced bound.
SURROGATE_TOLERANCE = 0.20

#: the affine feature basis of a step signature ``(num_tokens, kv_lengths)``
FEATURE_NAMES: Tuple[str, ...] = ("intercept", "tokens", "requests", "kv_rows")

EXTRAPOLATION_MODES: Tuple[str, ...] = ("clamp", "raise")

#: one exact-engine probe: (num_tokens, quantized kv_lengths, cycles)
Probe = Tuple[int, Tuple[int, ...], float]


class CostModelExtrapolationWarning(UserWarning):
    """A signature fell outside the probed range and was clamped to it."""


def signature_features(num_tokens: int,
                       kv_lengths: Sequence[int]) -> Tuple[float, ...]:
    """The affine feature vector of one step signature.

    ``tokens`` drives the QKV/MoE cost, ``requests`` the attention batch
    width and ``kv_rows`` (the summed quantized KV lengths) the attention
    context volume — the three axes the step-cost composition is nearly
    linear in.
    """
    return (1.0, float(num_tokens), float(len(kv_lengths)),
            float(sum(kv_lengths)))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: kind name -> cost-model class (the shared serve registry index, so the
#: "unknown costmodel" error path lists names exactly like every policy kind)
COST_MODELS: Dict[str, type] = attach_registry("costmodel", {})


def register_cost_model(name: str):
    """Decorator registering a cost-model class under ``name``."""

    def wrap(cls):
        if name in COST_MODELS:
            raise ConfigError(f"cost model {name!r} is already registered")
        cls.kind = name
        COST_MODELS[name] = cls
        return cls

    return wrap


def get_cost_model_class(name: str) -> type:
    """The registered cost-model class, or a listing :class:`ConfigError`."""
    return resolve_registered("costmodel", name)


def cost_model_names() -> List[str]:
    """The registered cost-model names, sorted."""
    return sorted(COST_MODELS)


# ---------------------------------------------------------------------------
# Base + shared range guard
# ---------------------------------------------------------------------------

class CostModel:
    """Predicts one step's cycles from its signature.

    Fitted artifacts carry the ``context_hash`` of the (model, schedule,
    platform, seed) they were calibrated for — :func:`check_context` refuses
    to apply a model to a different context — plus the probed feature ranges
    that gate extrapolation.
    """

    kind: ClassVar[str] = ""

    def predict(self, num_tokens: int, kv_lengths: Sequence[int]) -> float:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CostModel":
        raise NotImplementedError


def check_context(model: CostModel, context: str) -> None:
    """Refuse to apply a fitted model to a context it was not calibrated for."""
    calibrated_for = getattr(model, "context_hash", "")
    if calibrated_for and calibrated_for != context:
        raise ConfigError(
            f"cost model ({model.kind!r}) was calibrated for context "
            f"{calibrated_for!r} but this run's context is {context!r} "
            f"(model/schedule/platform/seed changed; recalibrate, or use "
            f"cost_model=None for per-run adaptive calibration)")


def _validate_extrapolation(mode: str) -> None:
    if mode not in EXTRAPOLATION_MODES:
        raise ConfigError(f"unknown extrapolation mode {mode!r}; "
                          f"expected one of {list(EXTRAPOLATION_MODES)}")


def _guard_features(features: Tuple[float, ...], lo: Tuple[float, ...],
                    hi: Tuple[float, ...], mode: str,
                    kind: str) -> Tuple[float, ...]:
    """Clamp-with-warning or raise when ``features`` leave the probed range."""
    if all(l <= f <= h for f, l, h in zip(features, lo, hi)):
        return features
    if mode == "raise":
        raise ConfigError(
            f"{kind} cost model: signature features {features} fall outside "
            f"the probed ranges (min {lo}, max {hi}) and "
            f"extrapolation='raise' forbids extrapolating; recalibrate with "
            f"a wider probe grid or use extrapolation='clamp'")
    warnings.warn(
        f"{kind} cost model: signature features {features} fall outside the "
        f"probed ranges (min {lo}, max {hi}); clamping to the probed range",
        CostModelExtrapolationWarning, stacklevel=3)
    return tuple(min(max(f, l), h) for f, l, h in zip(features, lo, hi))


def _probe_tuples(probes: Sequence[Sequence[Any]]) -> Tuple[Probe, ...]:
    """Normalize probes to hashable ``(tokens, kv_lengths, cycles)`` tuples."""
    normalized: List[Probe] = []
    for probe in probes:
        num_tokens, kv_lengths, cycles = probe
        normalized.append((int(num_tokens), tuple(int(k) for k in kv_lengths),
                           float(cycles)))
    return tuple(normalized)


# ---------------------------------------------------------------------------
# Exact: the event engine itself
# ---------------------------------------------------------------------------

@register_cost_model("exact")
@dataclass(frozen=True)
class ExactCostModel(CostModel):
    """Delegates every signature to the event engine (via the step memo).

    The engine binds this kind straight to the memoized exact step-cost
    path, so ``engine="surrogate", cost_model="exact"`` is bit-identical to
    ``engine="exact"`` — the equivalence anchor.  It has no standalone
    :meth:`predict`: a signature's exact cost *is* the simulation.
    """

    def predict(self, num_tokens: int, kv_lengths: Sequence[int]) -> float:
        raise ConfigError("the exact cost model delegates to the event "
                          "engine; it has no standalone predict() — bind it "
                          "through ServeConfig(engine='surrogate', "
                          "cost_model='exact')")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "exact"}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExactCostModel":
        return cls()


# ---------------------------------------------------------------------------
# Table: interpolated lookup over probed signatures
# ---------------------------------------------------------------------------

@register_cost_model("table")
@dataclass(frozen=True)
class TableCostModel(CostModel):
    """Interpolated lookup over exact-engine probes.

    A probed signature replays its exact cycles; an unseen one interpolates
    by inverse-squared-distance over its nearest probes in the normalized
    feature space (deterministic: ties break on probe order).  Signatures
    outside the probed feature ranges follow ``extrapolation``.
    """

    probes: Tuple[Probe, ...]
    context_hash: str = ""
    kv_tile_rows: int = 64
    extrapolation: str = "clamp"
    #: probes consulted per interpolated prediction
    neighbors: int = 4

    def __post_init__(self) -> None:
        if not self.probes:
            raise ConfigError("TableCostModel needs at least one probe "
                              "(the probe budget cannot be empty)")
        _validate_extrapolation(self.extrapolation)
        if self.neighbors < 1:
            raise ConfigError(f"neighbors must be >= 1, got {self.neighbors}")
        object.__setattr__(self, "probes", _probe_tuples(self.probes))
        lookup = {(t, k): c for t, k, c in self.probes}
        feats = np.array([signature_features(t, k) for t, k, _ in self.probes])
        lo = feats.min(axis=0)
        hi = feats.max(axis=0)
        scale = np.where(hi > lo, hi - lo, 1.0)
        # derived lookup caches; not dataclass fields, so equality and
        # canonicalization see only the probes themselves
        object.__setattr__(self, "_lookup", lookup)
        object.__setattr__(self, "_features", feats)
        object.__setattr__(self, "_cycles",
                           np.array([c for *_, c in self.probes]))
        object.__setattr__(self, "_lo", tuple(float(v) for v in lo))
        object.__setattr__(self, "_hi", tuple(float(v) for v in hi))
        object.__setattr__(self, "_scale", scale)

    def predict(self, num_tokens: int, kv_lengths: Sequence[int]) -> float:
        exact = self._lookup.get((num_tokens, tuple(kv_lengths)))
        if exact is not None:
            return exact
        features = _guard_features(signature_features(num_tokens, kv_lengths),
                                   self._lo, self._hi, self.extrapolation,
                                   self.kind)
        deltas = (self._features - np.array(features)) / self._scale
        distances = np.einsum("ij,ij->i", deltas, deltas)
        order = np.argsort(distances, kind="stable")[:self.neighbors]
        nearest = distances[order]
        if nearest[0] == 0.0:
            return float(self._cycles[order[0]])
        weights = 1.0 / nearest
        return float(np.dot(weights, self._cycles[order]) / weights.sum())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "table",
            "probes": [[t, list(k), c] for t, k, c in self.probes],
            "context_hash": self.context_hash,
            "kv_tile_rows": self.kv_tile_rows,
            "extrapolation": self.extrapolation,
            "neighbors": self.neighbors,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TableCostModel":
        return cls(probes=_probe_tuples(payload["probes"]),
                   context_hash=payload.get("context_hash", ""),
                   kv_tile_rows=int(payload.get("kv_tile_rows", 64)),
                   extrapolation=payload.get("extrapolation", "clamp"),
                   neighbors=int(payload.get("neighbors", 4)))


# ---------------------------------------------------------------------------
# Calibrated: least-squares affine fit with residual metadata
# ---------------------------------------------------------------------------

@register_cost_model("calibrated")
@dataclass(frozen=True)
class CalibratedCostModel(CostModel):
    """An affine step-cost model fit from exact-engine probes.

    ``cycles ≈ coefficients · (1, tokens, requests, kv_rows)``, clamped
    below at one cycle.  The fit metadata — probe count, coefficients and
    the relative residuals observed on the probe set — travels with the
    artifact so a loaded model's error bound is inspectable
    (:meth:`fit_metadata`).
    """

    coefficients: Tuple[float, ...]
    feature_min: Tuple[float, ...]
    feature_max: Tuple[float, ...]
    num_probes: int
    residual_mean_rel: float
    residual_max_rel: float
    cycles_min: float
    cycles_max: float
    context_hash: str = ""
    kv_tile_rows: int = 64
    extrapolation: str = "clamp"
    feature_names: Tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        _validate_extrapolation(self.extrapolation)
        for name in ("coefficients", "feature_min", "feature_max",
                     "feature_names"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not (len(self.coefficients) == len(self.feature_min)
                == len(self.feature_max) == len(self.feature_names)):
            raise ConfigError("calibrated cost model: coefficients, feature "
                              "ranges and feature names must align")
        if self.num_probes < 1:
            raise ConfigError("calibrated cost model: num_probes must be "
                              ">= 1 (the probe budget cannot be empty)")

    def predict(self, num_tokens: int, kv_lengths: Sequence[int]) -> float:
        features = _guard_features(signature_features(num_tokens, kv_lengths),
                                   self.feature_min, self.feature_max,
                                   self.extrapolation, self.kind)
        cycles = sum(c * f for c, f in zip(self.coefficients, features))
        # a step always costs at least one cycle; an affine fit could dip
        # below on tiny signatures far from the probe mass
        return float(max(cycles, 1.0))

    def fit_metadata(self) -> Dict[str, Any]:
        """The fit provenance: probe count, coefficients and residuals."""
        return {
            "num_probes": self.num_probes,
            "feature_names": list(self.feature_names),
            "coefficients": list(self.coefficients),
            "residual_mean_rel": self.residual_mean_rel,
            "residual_max_rel": self.residual_max_rel,
            "cycles_range": [self.cycles_min, self.cycles_max],
            "context_hash": self.context_hash,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "calibrated",
            "coefficients": list(self.coefficients),
            "feature_names": list(self.feature_names),
            "feature_min": list(self.feature_min),
            "feature_max": list(self.feature_max),
            "num_probes": self.num_probes,
            "residual_mean_rel": self.residual_mean_rel,
            "residual_max_rel": self.residual_max_rel,
            "cycles_min": self.cycles_min,
            "cycles_max": self.cycles_max,
            "context_hash": self.context_hash,
            "kv_tile_rows": self.kv_tile_rows,
            "extrapolation": self.extrapolation,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CalibratedCostModel":
        return cls(
            coefficients=tuple(payload["coefficients"]),
            feature_names=tuple(payload.get("feature_names", FEATURE_NAMES)),
            feature_min=tuple(payload["feature_min"]),
            feature_max=tuple(payload["feature_max"]),
            num_probes=int(payload["num_probes"]),
            residual_mean_rel=float(payload["residual_mean_rel"]),
            residual_max_rel=float(payload["residual_max_rel"]),
            cycles_min=float(payload["cycles_min"]),
            cycles_max=float(payload["cycles_max"]),
            context_hash=payload.get("context_hash", ""),
            kv_tile_rows=int(payload.get("kv_tile_rows", 64)),
            extrapolation=payload.get("extrapolation", "clamp"))


seal_builtins("costmodel")


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------

def fit_calibrated_model(probes: Sequence[Sequence[Any]], *,
                         context_hash: str = "", kv_tile_rows: int = 64,
                         extrapolation: str = "clamp") -> CalibratedCostModel:
    """Least-squares fit of a :class:`CalibratedCostModel` from probes.

    Needs at least ``len(FEATURE_NAMES)`` probes — an underdetermined fit
    would extrapolate silently, exactly what the subsystem forbids.  The
    returned model records the relative residuals observed on ``probes``.
    """
    normalized = _probe_tuples(probes)
    if not normalized:
        raise ConfigError("cannot fit a calibrated cost model from zero "
                          "probes (the probe budget is empty)")
    if len(normalized) < len(FEATURE_NAMES):
        raise ConfigError(
            f"cannot fit a calibrated cost model from {len(normalized)} "
            f"probe(s): at least {len(FEATURE_NAMES)} are needed to "
            f"determine {FEATURE_NAMES}; use a table cost model (or a "
            f"larger probe budget) instead")
    design = np.array([signature_features(t, k) for t, k, _ in normalized])
    cycles = np.array([c for *_, c in normalized])
    coefficients, *_ = np.linalg.lstsq(design, cycles, rcond=None)
    predicted = np.maximum(design @ coefficients, 1.0)
    relative = np.abs(predicted - cycles) / np.maximum(cycles, 1.0)
    return CalibratedCostModel(
        coefficients=tuple(float(c) for c in coefficients),
        feature_min=tuple(float(v) for v in design.min(axis=0)),
        feature_max=tuple(float(v) for v in design.max(axis=0)),
        num_probes=len(normalized),
        residual_mean_rel=float(relative.mean()),
        residual_max_rel=float(relative.max()),
        cycles_min=float(cycles.min()),
        cycles_max=float(cycles.max()),
        context_hash=context_hash,
        kv_tile_rows=kv_tile_rows,
        extrapolation=extrapolation)


def fit_from_probes(probes: Sequence[Sequence[Any]], *,
                    kind: str = "calibrated", context_hash: str = "",
                    kv_tile_rows: int = 64,
                    extrapolation: str = "clamp") -> CostModel:
    """Fit the requested surrogate kind, degrading gracefully.

    ``"calibrated"`` falls back to a table model when the probe set is too
    small to determine the affine fit (single-signature workloads stay
    exact either way — a table replays its probes verbatim).
    """
    if kind not in ("table", "calibrated"):
        raise ConfigError(f"cannot fit cost model kind {kind!r}; "
                          f"fit-able kinds: ['calibrated', 'table']")
    normalized = _probe_tuples(probes)
    if not normalized:
        raise ConfigError("cannot fit a cost model from zero probes "
                          "(the probe budget is empty)")
    if kind == "table" or len(normalized) < len(FEATURE_NAMES):
        return TableCostModel(probes=normalized, context_hash=context_hash,
                              kv_tile_rows=kv_tile_rows,
                              extrapolation=extrapolation)
    return fit_calibrated_model(normalized, context_hash=context_hash,
                                kv_tile_rows=kv_tile_rows,
                                extrapolation=extrapolation)


# ---------------------------------------------------------------------------
# Resolution + (de)serialization
# ---------------------------------------------------------------------------

def resolve_cost_model(value: Any) -> Any:
    """Normalize a ``cost_model=`` knob to a registered name or an artifact.

    ``None`` means per-run adaptive calibration (``"calibrated"``); a string
    must be a registered kind; a mapping is a serialized artifact; a
    :class:`CostModel` instance passes through.  Anything else is a
    :class:`ConfigError` — notably file *paths* are rejected here (load them
    with :func:`load_cost_model` first) so sweep cache keys always hash the
    model's content, never a mutable path.
    """
    if value is None:
        return "calibrated"
    if isinstance(value, CostModel):
        return value
    if isinstance(value, str):
        resolve_registered("costmodel", value)
        return value
    if isinstance(value, Mapping):
        return cost_model_from_dict(value)
    raise ConfigError(
        f"cost_model must be None, a registered name "
        f"({cost_model_names()}), a CostModel, or a to_dict() payload; "
        f"got {type(value).__name__!r}")


def cost_model_from_dict(payload: Mapping[str, Any]) -> CostModel:
    """Reconstruct a cost model from its ``to_dict`` payload."""
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise ConfigError("cost-model payload needs a 'kind' key naming a "
                          f"registered cost model ({cost_model_names()})")
    cls = resolve_registered("costmodel", kind)
    return cls.from_dict(payload)


def save_cost_model(model: CostModel, path: str) -> None:
    """Write ``model`` as JSON (the ``calibrate`` CLI's output format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(model.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_cost_model(path: str) -> CostModel:
    """Load a cost model saved by :func:`save_cost_model`."""
    with open(path, "r", encoding="utf-8") as handle:
        return cost_model_from_dict(json.load(handle))
