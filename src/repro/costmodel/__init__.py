"""Two-tier serving engine: calibrated cost-model surrogates.

The exact event engine costs every serving step by simulating it
(~0.8–1.6M simulated cycles/sec — fine for figures, the wall-clock
bottleneck of fleet-scale sweeps).  This package adds the fast tier: cost
models that predict a step's cycles from its signature, behind the shared
serve registry (kind ``"costmodel"``), surfaced as
``ServeConfig(engine="surrogate", cost_model=...)``.

* :mod:`repro.costmodel.models` — the artifacts: ``exact`` (delegates to
  the event engine), ``table`` (interpolated signature lookup),
  ``calibrated`` (least-squares affine fit with residual metadata), all
  JSON round-trippable with guarded extrapolation,
* :mod:`repro.costmodel.calibrate` — the offline harness: sample the
  signature space, probe the exact engine, fit, validate residuals
  (``python -m repro.costmodel calibrate``),
* :mod:`repro.costmodel.runtime` — the engine binding, including per-run
  adaptive calibration (probe the first ``calibration_budget`` distinct
  signatures exactly, then predict).

Scheduling (admission, batching, memory, preemption) is untouched by the
surrogate — only the per-step latency source changes, which is what makes
the error-bound test (:data:`~repro.costmodel.models.SURROGATE_TOLERANCE`)
meaningful.
"""

from .calibrate import (DEFAULT_PROBE_BUDGET, calibrate_model,
                        probe_signatures, run_probes)
from .models import (COST_MODELS, FEATURE_NAMES, SURROGATE_TOLERANCE,
                     CalibratedCostModel, CostModel,
                     CostModelExtrapolationWarning, ExactCostModel,
                     TableCostModel, check_context, cost_model_from_dict,
                     cost_model_names, fit_calibrated_model, fit_from_probes,
                     get_cost_model_class, load_cost_model,
                     register_cost_model, resolve_cost_model,
                     save_cost_model, signature_features)
from .runtime import AdaptiveSurrogate, bind_cost_model

__all__ = [
    "AdaptiveSurrogate",
    "COST_MODELS",
    "CalibratedCostModel",
    "CostModel",
    "CostModelExtrapolationWarning",
    "DEFAULT_PROBE_BUDGET",
    "ExactCostModel",
    "FEATURE_NAMES",
    "SURROGATE_TOLERANCE",
    "TableCostModel",
    "bind_cost_model",
    "calibrate_model",
    "check_context",
    "cost_model_from_dict",
    "cost_model_names",
    "fit_calibrated_model",
    "fit_from_probes",
    "get_cost_model_class",
    "load_cost_model",
    "probe_signatures",
    "register_cost_model",
    "resolve_cost_model",
    "run_probes",
    "save_cost_model",
    "signature_features",
]
