"""Binding cost models into :class:`~repro.serve.scheduler.ReplicaEngine`.

:func:`bind_cost_model` turns a :class:`~repro.serve.scheduler.ServeConfig`
with ``engine="surrogate"`` into a step-cost callable with the same
contract as the scheduler's exact path: ``(num_tokens, kv_lengths,
signatures) -> cycles``, recording every signature in the engine's
per-run signature dict so ``distinct_steps`` stays meaningful.

Three bindings:

* ``cost_model="exact"`` — straight to the memoized exact path;
  bit-identical to ``engine="exact"``,
* a fitted artifact (:class:`~repro.costmodel.models.TableCostModel` /
  :class:`~repro.costmodel.models.CalibratedCostModel`) — pure prediction
  after a context-hash check; the process-wide step memo is bypassed
  entirely (predictions are cheaper than the memo lookup's bookkeeping and
  must never leak into exact runs),
* ``cost_model="table"`` / ``"calibrated"`` — **per-run adaptive
  calibration** (:class:`AdaptiveSurrogate`): the first
  ``calibration_budget`` distinct signatures are costed exactly (through
  the shared memo) and recorded as probes; reaching the budget fits the
  surrogate, after which probed signatures keep replaying their exact
  cycles and only unprobed ones are predicted.  The probe set is a pure
  function of the run's own step sequence, so surrogate results stay a
  deterministic function of ``(config, trace, schedule, platform)`` —
  nothing leaks between runs, replicas or sweep points.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.errors import ConfigError
from .models import CostModel, check_context, fit_from_probes

#: the scheduler's step-cost contract: (num_tokens, kv_lengths, signatures)
StepCostFn = Callable[[int, Tuple[int, ...], Dict[Tuple, float]], float]


class AdaptiveSurrogate:
    """Probe the first ``budget`` distinct signatures exactly, then predict.

    The probe phase delegates to the scheduler's exact path (sharing the
    process-wide memo); once ``budget`` distinct signatures have been
    probed the surrogate fits itself (:func:`~repro.costmodel.models.
    fit_from_probes` — falling back to a table when the run never produced
    enough distinct signatures for the affine fit, e.g. single-signature
    workloads, which therefore stay *exact*).  Probed signatures keep
    replaying their exact cycles after the fit.
    """

    def __init__(self, config, schedule, hardware, context: str, *,
                 kind: str, budget: int) -> None:
        self._config = config
        self._schedule = schedule
        self._hardware = hardware
        self._context = context
        self._kind = kind
        self._budget = budget
        self._probes: Dict[Tuple[int, Tuple[int, ...]], float] = {}
        self._model: Optional[CostModel] = None

    @property
    def fitted(self) -> Optional[CostModel]:
        """The fitted artifact, or ``None`` while still probing."""
        return self._model

    def _fit(self) -> None:
        probes = [(t, k, c) for (t, k), c in sorted(self._probes.items())]
        self._model = fit_from_probes(probes, kind=self._kind,
                                      context_hash=self._context,
                                      kv_tile_rows=self._config.kv_tile_rows)

    def cycles(self, num_tokens: int, kv_lengths: Tuple[int, ...],
               signatures: Dict[Tuple, float]) -> float:
        from ..serve import scheduler

        signature = (num_tokens, kv_lengths)
        if self._model is None:
            cycles = scheduler._step_cycles(
                self._config, self._schedule, self._hardware, self._context,
                num_tokens, kv_lengths, signatures)
            if signature not in self._probes:
                self._probes[signature] = cycles
                if len(self._probes) >= self._budget:
                    self._fit()
            return cycles
        cached = self._probes.get(signature)
        if cached is None:
            cached = self._model.predict(num_tokens, kv_lengths)
        signatures[signature] = cached
        return cached


def bind_cost_model(config, schedule, hardware, context: str) -> StepCostFn:
    """The surrogate engine's step-cost callable for one replica run."""
    model = config.cost_model

    if model == "exact":
        def exact_cycles(num_tokens: int, kv_lengths: Tuple[int, ...],
                         signatures: Dict[Tuple, float]) -> float:
            from ..serve import scheduler

            return scheduler._step_cycles(config, schedule, hardware,
                                          context, num_tokens, kv_lengths,
                                          signatures)

        return exact_cycles

    if isinstance(model, str):
        return AdaptiveSurrogate(config, schedule, hardware, context,
                                 kind=model,
                                 budget=config.calibration_budget).cycles

    if not isinstance(model, CostModel):
        raise ConfigError(f"cost_model must resolve to a registered name or "
                          f"a CostModel, got {type(model).__name__!r}")
    check_context(model, context)

    def predicted_cycles(num_tokens: int, kv_lengths: Tuple[int, ...],
                         signatures: Dict[Tuple, float]) -> float:
        cycles = model.predict(num_tokens, kv_lengths)
        signatures[(num_tokens, kv_lengths)] = cycles
        return cycles

    return predicted_cycles
