"""Dimension kinds for STeP stream shapes (paper Section 3.1).

A STeP stream dimension is one of:

* **static-regular** — a compile-time constant (e.g. ``64``),
* **dynamic-regular** — a data-dependent constant, the same for every
  occurrence of the dimension in the stream (e.g. the number of tokens routed
  to an expert in one iteration),
* **ragged** — a dimension whose size varies across occurrences (e.g. the
  per-request KV-cache length inside a batch).  Ragged dimensions can be
  static (the set of sizes is known ahead of time) or dynamic.

Dynamic and ragged dimensions carry a symbolic size (:class:`~repro.core.symbolic.Sym`
or a compound expression).  Ragged dimensions have the *absorbing property*
described in the paper: any arithmetic combining a ragged dimension yields a
fresh ragged dimension rather than a closed-form expression.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Union

from . import symbolic as sym
from .errors import ShapeError
from .symbolic import Expr, ExprLike, as_expr, fresh_symbol


class DimKind(enum.Enum):
    """The three dimension kinds of Section 3.1."""

    STATIC = "static"
    DYNAMIC_REGULAR = "dynamic"
    RAGGED = "ragged"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Dim:
    """One dimension of a stream shape.

    Attributes
    ----------
    size:
        Symbolic (or constant) size of the dimension.  For ragged dimensions
        this is a representative symbol; the actual per-occurrence sizes only
        exist at runtime.
    kind:
        Which of the three dimension kinds this is.
    data_dependent:
        Whether the size depends on runtime data.  Static-regular dimensions
        are never data dependent; ragged dimensions may or may not be
        (regularity and data-dependence are orthogonal, footnote 4).
    """

    size: Expr
    kind: DimKind
    data_dependent: bool = False

    # -- constructors --------------------------------------------------------
    @staticmethod
    def static(size: int) -> "Dim":
        """A static-regular dimension of the given constant size."""
        size = int(size)
        if size < 0:
            raise ShapeError(f"dimension size must be non-negative, got {size}")
        return Dim(sym.Const(size), DimKind.STATIC, data_dependent=False)

    @staticmethod
    def dynamic(size: Union[ExprLike, str, None] = None, name: str = "D") -> "Dim":
        """A dynamic-regular dimension; its size is a data-dependent constant."""
        expr = _coerce_size(size, name, ragged=False)
        return Dim(expr, DimKind.DYNAMIC_REGULAR, data_dependent=True)

    @staticmethod
    def ragged(size: Union[ExprLike, str, None] = None, name: str = "R",
               data_dependent: bool = True) -> "Dim":
        """A ragged dimension; its size varies across occurrences."""
        expr = _coerce_size(size, name, ragged=True)
        return Dim(expr, DimKind.RAGGED, data_dependent=data_dependent)

    @staticmethod
    def of(value: Union["Dim", ExprLike]) -> "Dim":
        """Coerce an int / expression / Dim into a Dim.

        Plain integers become static dimensions; symbolic expressions become
        dynamic-regular dimensions.
        """
        if isinstance(value, Dim):
            return value
        expr = as_expr(value)
        if expr.is_static:
            return Dim.static(expr.evaluate())
        return Dim(expr, DimKind.DYNAMIC_REGULAR, data_dependent=True)

    # -- predicates ----------------------------------------------------------
    @property
    def is_static(self) -> bool:
        return self.kind is DimKind.STATIC

    @property
    def is_dynamic(self) -> bool:
        """Dynamic-regular or dynamic-ragged (the paper's "dynamic dimensions")."""
        return self.data_dependent

    @property
    def is_ragged(self) -> bool:
        return self.kind is DimKind.RAGGED

    @property
    def is_regular(self) -> bool:
        return self.kind is not DimKind.RAGGED

    # -- restrictiveness ordering (Section 3.1, last paragraph) --------------
    def satisfies(self, required: "DimRequirement") -> bool:
        """Whether this dimension is acceptable where ``required`` is allowed.

        Regular dimensions are more constrained than ragged ones and static
        dimensions more constrained than dynamic ones, so an operator that
        accepts a less restrictive kind also accepts the more restrictive ones.
        """
        if required is DimRequirement.ANY:
            return True
        if required is DimRequirement.REGULAR:
            return self.is_regular
        if required is DimRequirement.STATIC:
            return self.is_static
        raise ShapeError(f"unknown dimension requirement {required!r}")

    # -- misc ----------------------------------------------------------------
    def with_size(self, size: ExprLike) -> "Dim":
        """A copy of this dimension with a different symbolic size."""
        return Dim(as_expr(size), self.kind, self.data_dependent)

    def evaluate(self, bindings=None) -> int:
        """Concrete size once all symbols are bound."""
        return self.size.evaluate(bindings or {})

    def __str__(self) -> str:
        if self.is_static:
            return str(self.size)
        marker = "~" if self.is_ragged else ""
        return f"{marker}{self.size}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dim({self.size}, {self.kind.value})"


class DimRequirement(enum.Enum):
    """What an operator accepts for a given dimension (most→least restrictive)."""

    STATIC = "static"      #: only static-regular
    REGULAR = "regular"    #: static- or dynamic-regular, but not ragged
    ANY = "any"            #: anything, including ragged


def _coerce_size(size, name: str, ragged: bool) -> Expr:
    if size is None:
        return fresh_symbol(name, ragged=ragged)
    if isinstance(size, str):
        return sym.Sym(size, ragged=ragged)
    return as_expr(size)


# ---------------------------------------------------------------------------
# Dimension arithmetic with the absorbing-ragged property
# ---------------------------------------------------------------------------

def multiply_dims(dims: Sequence[Dim], fresh_prefix: str = "F") -> Dim:
    """Combine (flatten) a run of dimensions into one.

    If any participating dimension is ragged, the result is a *new* ragged
    dimension (absorbing property, Section 3.1 example 1).  Otherwise the
    result's size is the symbolic product and the result is dynamic iff any
    input was dynamic.
    """
    dims = [Dim.of(d) for d in dims]
    if not dims:
        return Dim.static(1)
    if any(d.is_ragged for d in dims):
        data_dep = any(d.data_dependent for d in dims)
        return Dim(fresh_symbol(fresh_prefix, ragged=True), DimKind.RAGGED, data_dependent=data_dep)
    size = sym.sprod(d.size for d in dims)
    if all(d.is_static for d in dims):
        return Dim.static(size.evaluate())
    return Dim(size, DimKind.DYNAMIC_REGULAR, data_dependent=True)


def ceil_div_dim(dim: Dim, chunk: int, fresh_prefix: str = "C") -> Dim:
    """``ceil(dim / chunk)`` with the absorbing-ragged property."""
    dim = Dim.of(dim)
    if chunk <= 0:
        raise ShapeError(f"chunk size must be positive, got {chunk}")
    if dim.is_ragged:
        return Dim(fresh_symbol(fresh_prefix, ragged=True), DimKind.RAGGED,
                   data_dependent=dim.data_dependent)
    size = sym.ceil_div(dim.size, chunk)
    if dim.is_static:
        return Dim.static(size.evaluate())
    return Dim(size, DimKind.DYNAMIC_REGULAR, data_dependent=True)


def add_dims(a: Dim, b: Dim, fresh_prefix: str = "S") -> Dim:
    """Sum of two dimensions (used when concatenating streams)."""
    a, b = Dim.of(a), Dim.of(b)
    if a.is_ragged or b.is_ragged:
        return Dim(fresh_symbol(fresh_prefix, ragged=True), DimKind.RAGGED,
                   data_dependent=a.data_dependent or b.data_dependent)
    size = a.size + b.size
    if a.is_static and b.is_static:
        return Dim.static(size.evaluate())
    return Dim(size, DimKind.DYNAMIC_REGULAR, data_dependent=True)


def dims_compatible(produced: Dim, consumed: Dim) -> bool:
    """Whether a produced dimension can flow into a consumer expecting ``consumed``.

    Static sizes must match exactly; symbolic sizes match if their expressions
    are structurally equal, or if either side is a bare (unconstrained) symbol.
    """
    produced, consumed = Dim.of(produced), Dim.of(consumed)
    if produced.is_static and consumed.is_static:
        return produced.size == consumed.size
    if produced.size == consumed.size:
        return True
    # A bare symbol on either side acts as a wildcard: the consumer either
    # introduces a name for an unknown size or accepts whatever is produced.
    return isinstance(produced.size, sym.Sym) or isinstance(consumed.size, sym.Sym)
