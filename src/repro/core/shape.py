"""Stream shapes and their algebra (paper Section 3.1 and Appendix B.1).

A rank-``N`` STeP stream is logically a stream of zero or more ``N``-dimensional
tensors.  Its *shape* is written ``[D_N, ..., D_1, D_0]`` — ``N + 1`` entries,
outermost first, where the outermost entry counts the tensors in the stream and
the remaining entries are the tensor dimensions.  Each entry is a
:class:`~repro.core.dims.Dim` and may be static-regular, dynamic-regular or
ragged.

This module implements the shape transformations used by the shape operators
(Flatten, Reshape, Promote, Expand, Zip) and by the routing/memory operators,
including the absorbing-ragged behaviour of flattening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, Tuple, Union

from . import symbolic as sym
from .dims import Dim, DimRequirement, ceil_div_dim, dims_compatible, multiply_dims
from .errors import ShapeError
from .symbolic import ExprLike

DimLike = Union[Dim, ExprLike]


def _coerce_dims(dims: Iterable[DimLike]) -> Tuple[Dim, ...]:
    return tuple(Dim.of(d) for d in dims)


@dataclass(frozen=True)
class StreamShape:
    """The shape of a STeP stream: outermost dimension first.

    ``StreamShape([2, 2, d0])`` corresponds to the paper's ``[2, 2, D0]``.
    The *rank* of the stream is ``len(dims) - 1`` (a rank-``N`` stream carries
    ``N``-dimensional tensors); an empty shape is not allowed — a stream of
    scalars/tiles with no nesting has shape ``[D0]`` and rank 0.
    """

    dims: Tuple[Dim, ...]

    def __init__(self, dims: Iterable[DimLike]):
        dims = _coerce_dims(dims)
        if len(dims) == 0:
            raise ShapeError("a stream shape needs at least one dimension")
        object.__setattr__(self, "dims", dims)

    # -- basic accessors ------------------------------------------------------
    @property
    def rank(self) -> int:
        """Stream rank: the dimensionality of the tensors carried by the stream."""
        return len(self.dims) - 1

    @property
    def ndims(self) -> int:
        """Number of shape entries (= rank + 1)."""
        return len(self.dims)

    def dim(self, level: int) -> Dim:
        """Dimension at ``level`` counted from the innermost (level 0)."""
        if not 0 <= level < self.ndims:
            raise ShapeError(f"dimension level {level} out of range for {self}")
        return self.dims[self.ndims - 1 - level]

    def outermost(self) -> Dim:
        return self.dims[0]

    def innermost(self) -> Dim:
        return self.dims[-1]

    def inner(self, count: int) -> Tuple[Dim, ...]:
        """The ``count`` innermost dimensions (outermost-first order)."""
        if count == 0:
            return ()
        if not 0 <= count <= self.ndims:
            raise ShapeError(f"cannot take {count} inner dims of {self}")
        return self.dims[self.ndims - count:]

    def outer(self, count: int) -> Tuple[Dim, ...]:
        """The ``count`` outermost dimensions."""
        if not 0 <= count <= self.ndims:
            raise ShapeError(f"cannot take {count} outer dims of {self}")
        return self.dims[:count]

    # -- predicates -----------------------------------------------------------
    @property
    def is_static(self) -> bool:
        return all(d.is_static for d in self.dims)

    @property
    def has_ragged(self) -> bool:
        return any(d.is_ragged for d in self.dims)

    @property
    def has_dynamic(self) -> bool:
        return any(d.is_dynamic for d in self.dims)

    def check_requirements(self, requirements: Sequence[DimRequirement],
                           what: str = "stream") -> None:
        """Validate the innermost ``len(requirements)`` dims against requirements.

        ``requirements`` is given innermost-first.  Raises :class:`ShapeError`
        when a dimension is less restrictive than the operator allows.
        """
        if len(requirements) > self.ndims:
            raise ShapeError(
                f"{what} has rank {self.rank} but the operator constrains "
                f"{len(requirements)} dimensions")
        for level, req in enumerate(requirements):
            if not self.dim(level).satisfies(req):
                raise ShapeError(
                    f"{what} dimension {level} ({self.dim(level)}) does not satisfy "
                    f"requirement {req.value} in shape {self}")

    # -- algebra used by shape operators ---------------------------------------
    def cardinality(self) -> sym.Expr:
        """``||stream||``: the product of all dimension sizes (Section 4.2)."""
        return sym.sprod(d.size for d in self.dims)

    def flatten(self, min_level: int, max_level: int) -> "StreamShape":
        """Flatten dimensions ``min_level..max_level`` (inclusive, innermost=0)."""
        if min_level > max_level:
            raise ShapeError(f"flatten requires min <= max, got {min_level} > {max_level}")
        if max_level >= self.ndims:
            raise ShapeError(f"flatten range {min_level}..{max_level} exceeds {self}")
        lo = self.ndims - 1 - max_level
        hi = self.ndims - 1 - min_level
        merged = multiply_dims(self.dims[lo:hi + 1])
        return StreamShape(self.dims[:lo] + (merged,) + self.dims[hi + 1:])

    def reshape_split(self, level: int, chunk_size: int) -> "StreamShape":
        """Split dimension ``level`` into ``[ceil(D/chunk), chunk]`` (Reshape)."""
        if chunk_size <= 0:
            raise ShapeError(f"chunk size must be positive, got {chunk_size}")
        target = self.dim(level)
        if level > 0 and not target.is_static:
            # Splitting a non-innermost dimension requires a static, divisible
            # dimension (Appendix B.1).
            raise ShapeError(
                f"Reshape of non-innermost dimension requires a static dimension, got {target}")
        if level > 0 and target.evaluate() % chunk_size != 0:
            raise ShapeError(
                f"Reshape of non-innermost dimension requires divisibility: "
                f"{target} % {chunk_size} != 0")
        outer_dim = ceil_div_dim(target, chunk_size)
        idx = self.ndims - 1 - level
        new_dims = self.dims[:idx] + (outer_dim, Dim.static(chunk_size)) + self.dims[idx + 1:]
        return StreamShape(new_dims)

    def promote(self) -> "StreamShape":
        """Add a new outermost dimension of size 1 (or 0 for empty streams)."""
        outer = self.outermost()
        if outer.is_static:
            new_outer = Dim.static(1 if outer.evaluate() > 0 else 0)
        else:
            # (1 if D_a > 0 else 0) — data-dependent but bounded by 1.
            new_outer = Dim.dynamic(name="P")
        return StreamShape((new_outer,) + self.dims)

    def prepend(self, dims: Sequence[DimLike]) -> "StreamShape":
        """New shape with extra outermost dimensions."""
        return StreamShape(_coerce_dims(dims) + self.dims)

    def append(self, dims: Sequence[DimLike]) -> "StreamShape":
        """New shape with extra innermost dimensions."""
        return StreamShape(self.dims + _coerce_dims(dims))

    def drop_inner(self, count: int) -> "StreamShape":
        """Remove the ``count`` innermost dimensions (used by Accum/Bufferize)."""
        if count >= self.ndims:
            raise ShapeError(f"cannot drop {count} inner dims of {self}")
        if count == 0:
            return self
        return StreamShape(self.dims[:self.ndims - count])

    def replace_dim(self, level: int, dim: DimLike) -> "StreamShape":
        """New shape with dimension ``level`` replaced."""
        idx = self.ndims - 1 - level
        if not 0 <= idx < self.ndims:
            raise ShapeError(f"dimension level {level} out of range for {self}")
        return StreamShape(self.dims[:idx] + (Dim.of(dim),) + self.dims[idx + 1:])

    # -- compatibility ----------------------------------------------------------
    def compatible_with(self, other: "StreamShape") -> bool:
        """Producer/consumer compatibility check used by the frontend."""
        if self.ndims != other.ndims:
            return False
        return all(dims_compatible(a, b) for a, b in zip(self.dims, other.dims))

    def substitute(self, bindings: Mapping) -> "StreamShape":
        """Substitute symbols in every dimension size."""
        new_dims = []
        for d in self.dims:
            size = d.size.subs(bindings)
            if size.is_static:
                new_dims.append(Dim.static(size.evaluate()))
            else:
                new_dims.append(d.with_size(size))
        return StreamShape(new_dims)

    def concrete(self, bindings: Mapping | None = None) -> Tuple[int, ...]:
        """Evaluate every dimension to an int (raises if symbols remain)."""
        return tuple(d.evaluate(bindings or {}) for d in self.dims)

    def symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for d in self.dims:
            out = out | d.size.symbols()
        return out

    # -- dunder -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.dims)

    def __iter__(self):
        return iter(self.dims)

    def __getitem__(self, index):
        result = self.dims[index]
        if isinstance(index, slice):
            return StreamShape(result)
        return result

    def __str__(self) -> str:
        return "[" + ", ".join(str(d) for d in self.dims) + "]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamShape({self})"


def shape_of(dims: Union[StreamShape, Sequence[DimLike]]) -> StreamShape:
    """Coerce a sequence of dims/ints/exprs into a :class:`StreamShape`."""
    if isinstance(dims, StreamShape):
        return dims
    return StreamShape(dims)
