"""Exception hierarchy for the STeP reproduction.

All errors raised by the library derive from :class:`StepError` so callers can
catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class StepError(Exception):
    """Base class for all errors raised by the STeP library."""


class ShapeError(StepError):
    """A stream or tile shape is inconsistent with an operator's requirements."""


class TypeMismatchError(StepError):
    """The data type of a stream does not match what an operator expects."""


class GraphError(StepError):
    """The program graph is malformed (dangling ports, duplicate edges, ...)."""


class SimulationError(StepError):
    """The simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """Every live process in the simulation is blocked; no progress is possible."""

    def __init__(self, message: str, blocked: list | None = None):
        super().__init__(message)
        #: Descriptions of the blocked processes, for diagnostics.
        self.blocked = blocked or []


class StreamProtocolError(SimulationError):
    """A stream violated the stop-token protocol (e.g. data after Done)."""


class SymbolicError(StepError):
    """A symbolic expression could not be evaluated or manipulated."""


class ConfigError(StepError):
    """A workload or hardware configuration is invalid."""
