"""The STeP stream token model (paper Section 3.1, "Stop Tokens").

A STeP stream is logically zero or more tensors.  The logical structure is
embedded in the data stream through *stop tokens*: the end of each dimension
is annotated with a stop token ``S_N`` where ``N`` is the rank of that
dimension (``S_1`` ends a vector).  At the end of multiple dimensions only the
highest-level stop token is emitted, and the ``Done`` token terminates the
stream.

Example (paper equation (1)) — shape ``[2, 2, D0]``::

    1, 2, S1, 3, S2, 4, S1, 5, 6, 7, S2, D

This module provides

* the token classes :class:`Data`, :class:`Stop` and :class:`Done`,
* conversion between nested Python structures (lists of lists of values) and
  token streams, in both directions,
* concrete-shape inference from a token stream,
* a protocol validator, and
* :class:`StopAbsorbingEmitter`, the helper operators use to emit well-formed
  output streams (merging adjacent stop tokens into the highest level).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .errors import StreamProtocolError


# ---------------------------------------------------------------------------
# Tokens
# ---------------------------------------------------------------------------

class Token:
    """Base class for stream tokens."""

    __slots__ = ()


class Data(Token):
    """A data token carrying a value (tile, selector, buffer handle, tuple...)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other) -> bool:
        return isinstance(other, Data) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("data", id(self.value)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Data({self.value!r})"


class Stop(Token):
    """A stop token ``S_level`` marking the end of a dimension (level >= 1)."""

    __slots__ = ("level",)

    def __init__(self, level: int):
        level = int(level)
        if level < 1:
            raise StreamProtocolError(f"stop token level must be >= 1, got {level}")
        self.level = level

    def __eq__(self, other) -> bool:
        return isinstance(other, Stop) and self.level == other.level

    def __hash__(self) -> int:
        return hash(("stop", self.level))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"S{self.level}"


class Done(Token):
    """The stream-termination token ``D``."""

    __slots__ = ()

    def __eq__(self, other) -> bool:
        return isinstance(other, Done)

    def __hash__(self) -> int:
        return hash("done")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "D"


DONE = Done()

#: interned stop tokens for the common levels — Stop instances are immutable
#: (the level is set once), so hot paths share them instead of allocating
_STOP_CACHE: Tuple["Stop", ...] = tuple(Stop(level) for level in range(1, 17))


def stop_token(level: int) -> Stop:
    """A stop token of ``level``, shared from the cache for small levels."""
    if 1 <= level <= 16:
        return _STOP_CACHE[level - 1]
    return Stop(level)


TokenStream = List[Token]


def is_data(token: Token) -> bool:
    return isinstance(token, Data)


def is_stop(token: Token, level: Optional[int] = None) -> bool:
    if not isinstance(token, Stop):
        return False
    return level is None or token.level == level


def is_done(token: Token) -> bool:
    return isinstance(token, Done)


# ---------------------------------------------------------------------------
# Nested structure <-> token stream
# ---------------------------------------------------------------------------

def tokens_from_nested(nested: Sequence, rank: int, wrap: Callable[[Any], Any] = lambda v: v,
                       append_done: bool = True) -> TokenStream:
    """Serialize a nested Python structure into a token stream.

    ``nested`` must be nested ``rank + 1`` levels deep: the outermost list is
    the stream of tensors, and each tensor is nested ``rank`` levels with leaf
    entries being the data values.  ``wrap`` is applied to every leaf value
    (e.g. to turn numbers into tiles).

    The emitted stream follows the paper's convention: every tensor/sub-tensor
    end is marked with a stop token, adjacent stops are merged into the highest
    level, and the stream is terminated by ``Done``.
    """
    if rank < 0:
        raise StreamProtocolError(f"stream rank must be >= 0, got {rank}")

    tokens: TokenStream = []

    def is_empty(group, level: int) -> bool:
        if level == 0:
            return len(group) == 0
        return all(isinstance(entry, (list, tuple)) and is_empty(entry, level - 1)
                   for entry in group) if group else True

    def emit_group(group: Sequence, level: int) -> None:
        # ``level`` is the stop-token level that closes one entry of ``group``.
        if level == 0:
            for value in group:
                tokens.append(Data(wrap(value)))
            return
        for entry in group:
            if not isinstance(entry, (list, tuple)):
                raise StreamProtocolError(
                    f"expected nesting of depth {rank + 1}, found leaf {entry!r} at level {level}")
            if is_empty(entry, level - 1):
                # Empty tensors carry no data and are elided from the token
                # stream (the encoding cannot mark them without emitting bare
                # stop tokens; Promote's 0-sized outermost dimension is the
                # paper's mechanism for representing emptiness explicitly).
                continue
            emit_group(entry, level - 1)
            _append_stop(tokens, level)

    emit_group(nested, rank)
    if append_done:
        tokens.append(DONE)
    return tokens


def _append_stop(tokens: TokenStream, level: int) -> None:
    """Append a stop token, merging with a directly preceding stop (absorption)."""
    if tokens and isinstance(tokens[-1], Stop):
        tokens[-1] = stop_token(max(tokens[-1].level, level))
    else:
        tokens.append(stop_token(level))


def nested_from_tokens(tokens: Sequence[Token], rank: int,
                       unwrap: Callable[[Any], Any] = lambda v: v) -> list:
    """Parse a token stream back into a nested Python structure.

    The inverse of :func:`tokens_from_nested` (up to the ``wrap``/``unwrap``
    functions).  The stream must be well formed (see :func:`validate_tokens`).
    """
    validate_tokens(tokens, rank)

    def new_stack() -> List[list]:
        # stack[0] is the outermost (stream) level, stack[rank] the innermost.
        return [[] for _ in range(rank + 1)]

    stack = new_stack()
    for token in tokens:
        if isinstance(token, Data):
            stack[rank].append(unwrap(token.value))
        elif isinstance(token, Stop):
            level = min(token.level, rank)
            # Close dimensions innermost-first up to ``level``.
            for depth in range(rank, rank - level, -1):
                stack[depth - 1].append(stack[depth])
                stack[depth] = []
        elif isinstance(token, Done):
            break
    # Flush an unterminated trailing tensor (streams that end with bare Done).
    for depth in range(rank, 0, -1):
        if stack[depth]:
            stack[depth - 1].append(stack[depth])
            stack[depth] = []
    return stack[0]


def data_values(tokens: Iterable[Token]) -> list:
    """All data payloads of a token stream, in order."""
    return [t.value for t in tokens if isinstance(t, Data)]


def count_data(tokens: Iterable[Token]) -> int:
    return sum(1 for t in tokens if isinstance(t, Data))


def validate_tokens(tokens: Sequence[Token], rank: Optional[int] = None) -> None:
    """Check the stop-token protocol.

    Raises :class:`StreamProtocolError` when

    * a token appears after ``Done`` or ``Done`` is missing/duplicated,
    * a stop token exceeds the stream rank (when ``rank`` is given),
    * two stop tokens are adjacent (absorption requires merging them),
    * the stream starts with a stop token (empty dimensions are expressed by
      omitting data, not by leading stops).
    """
    if not tokens:
        raise StreamProtocolError("empty token stream (missing Done)")
    if not isinstance(tokens[-1], Done):
        raise StreamProtocolError("token stream does not end with Done")
    seen_done = False
    previous: Optional[Token] = None
    for index, token in enumerate(tokens):
        if seen_done:
            raise StreamProtocolError(f"token {token!r} appears after Done (index {index})")
        if isinstance(token, Done):
            seen_done = True
        elif isinstance(token, Stop):
            if rank is not None and token.level > rank:
                raise StreamProtocolError(
                    f"stop token S{token.level} exceeds stream rank {rank}")
            if previous is None:
                raise StreamProtocolError("stream starts with a stop token")
            if isinstance(previous, Stop):
                raise StreamProtocolError(
                    f"adjacent stop tokens S{previous.level}, S{token.level} "
                    f"violate the absorption rule")
        elif not isinstance(token, Data):
            raise StreamProtocolError(f"unknown token {token!r}")
        previous = token


def infer_concrete_shape(tokens: Sequence[Token], rank: int) -> List[Optional[int]]:
    """Infer the concrete stream shape from a token stream.

    Returns ``rank + 1`` entries (outermost first).  An entry is an ``int``
    when every occurrence of that dimension has the same size and ``None``
    when the dimension is ragged in this particular stream.
    """
    nested = nested_from_tokens(tokens, rank)
    sizes: List[set] = [set() for _ in range(rank + 1)]

    def walk(group, depth: int) -> None:
        sizes[depth].add(len(group))
        if depth < rank:
            for entry in group:
                walk(entry, depth + 1)

    walk(nested, 0)
    result: List[Optional[int]] = []
    for observed in sizes:
        observed.discard(0) if len(observed) > 1 else None
        if len(observed) == 1:
            result.append(next(iter(observed)))
        elif len(observed) == 0:
            result.append(0)
        else:
            result.append(None)
    return result


# ---------------------------------------------------------------------------
# Stop-absorbing emitter
# ---------------------------------------------------------------------------

class StopAbsorbingEmitter:
    """Helper for operators that construct output streams.

    Holds at most one pending stop token; emitting data flushes it, emitting
    another stop merges into the highest level (the paper's absorption rule),
    and finishing the stream flushes the pending stop before ``Done``.

    ``sink`` is a callable receiving each output token (typically a channel
    push or ``list.append``).
    """

    __slots__ = ("_sink", "_pending")

    def __init__(self, sink: Callable[[Token], Any]):
        self._sink = sink
        self._pending: Optional[int] = None

    def data(self, value: Any):
        """Emit a data token (flushing any pending stop first)."""
        flush = self.flush()
        result = self._sink(Data(value))
        return (flush, result)

    def stop(self, level: int) -> None:
        """Emit (or merge) a stop token of the given level."""
        if level < 1:
            return
        if self._pending is None:
            self._pending = level
        else:
            self._pending = max(self._pending, level)

    def raise_pending(self, level: int) -> None:
        """Raise the pending stop to at least ``level`` (used by Reassemble)."""
        self.stop(level)

    def flush(self):
        """Flush the pending stop token, if any."""
        if self._pending is not None:
            level, self._pending = self._pending, None
            return self._sink(stop_token(level))
        return None

    def done(self):
        """Flush and emit ``Done``."""
        self.flush()
        return self._sink(DONE)

    @property
    def pending(self) -> Optional[int]:
        return self._pending


class ListEmitter(StopAbsorbingEmitter):
    """A :class:`StopAbsorbingEmitter` that collects tokens into a list."""

    def __init__(self):
        self.tokens: TokenStream = []
        super().__init__(self.tokens.append)
