"""The STeP program graph.

A STeP program is an asynchronous dataflow graph: nodes are operators
(Section 3.2), edges are streams.  This module defines the graph plumbing the
operator classes in :mod:`repro.ops` build on:

* :class:`StreamSpec` — the static description of a stream (shape + data type),
* :class:`StreamHandle` — a reference to one output port of one operator,
  carrying its :class:`StreamSpec`; this is what the symbolic Python frontend
  hands back to the user (``output.stream.shape`` in Listing 1),
* :class:`OperatorBase` — the graph-node behaviour every operator inherits,
* :class:`InputStream` — a source node whose tokens are supplied at run time,
* :class:`Program` — a validated collection of operators reachable from a set
  of sink/output handles, with topological ordering utilities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .dtypes import DataType
from .errors import GraphError
from .shape import StreamShape, shape_of

_node_ids = itertools.count()


@dataclass(frozen=True)
class StreamSpec:
    """Static description of a stream: its shape and its data type."""

    shape: StreamShape
    dtype: DataType

    def with_shape(self, shape) -> "StreamSpec":
        return StreamSpec(shape_of(shape), self.dtype)

    def with_dtype(self, dtype: DataType) -> "StreamSpec":
        return StreamSpec(self.shape, dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.shape} of {self.dtype}"


class StreamHandle:
    """A reference to one output stream of one operator.

    The handle is what flows through the frontend API: operators take handles
    as inputs and return handles as outputs.  ``handle.shape`` and
    ``handle.dtype`` expose the symbolic stream shape and data type so that
    programs can be inspected (Listing 1 line 27) and known program properties
    can be re-imposed (Listing 1 line 26) via :meth:`override_shape`.
    """

    __slots__ = ("producer", "port", "spec", "name")

    def __init__(self, producer: "OperatorBase", port: int, spec: StreamSpec,
                 name: Optional[str] = None):
        self.producer = producer
        self.port = int(port)
        self.spec = spec
        self.name = name or f"{producer.name}.out{port}"

    # -- inspection ------------------------------------------------------------
    @property
    def shape(self) -> StreamShape:
        return self.spec.shape

    @property
    def dtype(self) -> DataType:
        return self.spec.dtype

    @property
    def rank(self) -> int:
        return self.spec.shape.rank

    # -- user shape overrides ----------------------------------------------------
    def override_shape(self, shape) -> "StreamHandle":
        """Replace the symbolic shape with a user-supplied one.

        STeP lets programmers substitute known program properties for the
        fresh symbols an operator introduces; the output of Reassemble in
        Listing 1, for example, is known to have the same shape as the routed
        input stream, which may even collapse dimensions the generic shape
        semantics keep separate.
        """
        self.spec = self.spec.with_shape(shape_of(shape))
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamHandle({self.name}: {self.spec})"


class OperatorBase:
    """Common graph-node behaviour for all STeP operators.

    Subclasses call :meth:`_set_inputs` / :meth:`_add_output` from their
    ``__init__`` after computing their output shape semantics.
    """

    #: Short operator kind name, overridden by subclasses ("Map", "Partition", ...).
    kind: str = "Operator"

    def __init__(self, name: Optional[str] = None):
        self.node_id = next(_node_ids)
        self.name = name or f"{self.kind.lower()}_{self.node_id}"
        self.inputs: List[StreamHandle] = []
        self.outputs: List[StreamHandle] = []
        #: Free-form attributes used by the simulator lowering (compute bandwidth,
        #: memory placement hints, ...).
        self.attributes: Dict[str, object] = {}

    # -- wiring ------------------------------------------------------------------
    def _set_inputs(self, handles: Sequence[StreamHandle]) -> None:
        for handle in handles:
            if not isinstance(handle, StreamHandle):
                raise GraphError(
                    f"{self.kind} {self.name!r} expected StreamHandle inputs, got {handle!r}")
        self.inputs = list(handles)

    def _add_output(self, shape, dtype: DataType, name: Optional[str] = None) -> StreamHandle:
        spec = StreamSpec(shape_of(shape), dtype)
        handle = StreamHandle(self, len(self.outputs), spec,
                              name=f"{self.name}.{name}" if name else None)
        self.outputs.append(handle)
        return handle

    # -- convenience ---------------------------------------------------------------
    @property
    def output(self) -> StreamHandle:
        """The sole output handle (raises if the operator has 0 or 2+ outputs)."""
        if len(self.outputs) != 1:
            raise GraphError(
                f"{self.kind} {self.name!r} has {len(self.outputs)} outputs; "
                f"use .outputs[i]")
        return self.outputs[0]

    @property
    def upstream(self) -> List["OperatorBase"]:
        return [handle.producer for handle in self.inputs]

    def describe(self) -> str:
        ins = ", ".join(str(h.shape) for h in self.inputs)
        outs = ", ".join(str(h.shape) for h in self.outputs)
        return f"{self.kind}({self.name}): [{ins}] -> [{outs}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.kind} {self.name}>"


class InputStream(OperatorBase):
    """A source node whose token stream is provided when the program runs."""

    kind = "Input"

    def __init__(self, shape, dtype: DataType, name: Optional[str] = None):
        super().__init__(name=name)
        self._set_inputs([])
        self._add_output(shape, dtype, name="stream")

    @property
    def stream(self) -> StreamHandle:
        return self.outputs[0]


class Program:
    """A validated STeP program: all operators reachable from the given sinks.

    Parameters
    ----------
    sinks:
        Stream handles and/or operators that constitute the program outputs.
        Operators with no outputs (e.g. off-chip stores) can be passed
        directly.
    name:
        Optional program name used in reports.
    """

    def __init__(self, sinks: Sequence[Union[StreamHandle, OperatorBase]], name: str = "program"):
        self.name = name
        self.sink_handles: List[StreamHandle] = []
        sink_ops: List[OperatorBase] = []
        for sink in sinks:
            if isinstance(sink, StreamHandle):
                self.sink_handles.append(sink)
                sink_ops.append(sink.producer)
            elif isinstance(sink, OperatorBase):
                sink_ops.append(sink)
            else:
                raise GraphError(f"program sinks must be handles or operators, got {sink!r}")
        self.operators: List[OperatorBase] = self._collect(sink_ops)
        self._validate()

    # -- construction --------------------------------------------------------------
    @staticmethod
    def _collect(sink_ops: Sequence[OperatorBase]) -> List[OperatorBase]:
        seen: Dict[int, OperatorBase] = {}
        stack = list(sink_ops)
        while stack:
            op = stack.pop()
            if op.node_id in seen:
                continue
            seen[op.node_id] = op
            stack.extend(op.upstream)
        # Deterministic order: by construction id.
        return sorted(seen.values(), key=lambda op: op.node_id)

    def _validate(self) -> None:
        ids = {op.node_id for op in self.operators}
        for op in self.operators:
            for handle in op.inputs:
                if handle.producer.node_id not in ids:
                    raise GraphError(
                        f"{op.name} consumes {handle.name} whose producer is not "
                        f"reachable from the program sinks")

    # -- queries ---------------------------------------------------------------------
    @property
    def inputs(self) -> List[InputStream]:
        return [op for op in self.operators if isinstance(op, InputStream)]

    def input_named(self, name: str) -> InputStream:
        for op in self.inputs:
            if op.name == name:
                return op
        raise GraphError(f"no input stream named {name!r}")

    def operators_of_kind(self, kind: str) -> List[OperatorBase]:
        return [op for op in self.operators if op.kind == kind]

    def consumers_of(self, handle: StreamHandle) -> List[Tuple[OperatorBase, int]]:
        """All (operator, input-port-index) pairs reading ``handle``."""
        found = []
        for op in self.operators:
            for port, inp in enumerate(op.inputs):
                if inp is handle:
                    found.append((op, port))
        return found

    def edges(self) -> List[Tuple[StreamHandle, OperatorBase, int]]:
        """All (producer handle, consumer op, consumer port) triples."""
        out = []
        for op in self.operators:
            for port, handle in enumerate(op.inputs):
                out.append((handle, op, port))
        return out

    def topological_order(self) -> List[OperatorBase]:
        """Topological order over the acyclic part of the graph.

        Feedback edges (used by dynamic parallelization's availability loop)
        are broken by falling back to construction order for any remainder.
        """
        remaining = {op.node_id: set() for op in self.operators}
        by_id = {op.node_id: op for op in self.operators}
        for op in self.operators:
            for handle in op.inputs:
                remaining[op.node_id].add(handle.producer.node_id)
        order: List[OperatorBase] = []
        ready = sorted([nid for nid, deps in remaining.items() if not deps])
        remaining = {nid: deps for nid, deps in remaining.items() if deps}
        while ready:
            nid = ready.pop(0)
            order.append(by_id[nid])
            newly_ready = []
            for other, deps in list(remaining.items()):
                deps.discard(nid)
                if not deps:
                    newly_ready.append(other)
                    del remaining[other]
            ready.extend(sorted(newly_ready))
        # Cycles: append leftover nodes in construction order.
        for nid in sorted(remaining):
            order.append(by_id[nid])
        return order

    def describe(self) -> str:
        lines = [f"Program {self.name!r} ({len(self.operators)} operators)"]
        for op in self.topological_order():
            lines.append("  " + op.describe())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)
