"""A small symbolic-expression engine used by STeP's shape semantics.

The paper's symbolic frontend uses SymPy to express off-chip traffic and
on-chip memory requirements in terms of dynamic dimension symbols
(Section 4.2).  This module provides the small subset of symbolic algebra the
frontend actually needs:

* integer constants and named symbols,
* ``+``, ``*``, ``max``, ceiling division and plain floor division,
* substitution of symbols with values or other expressions,
* evaluation to a concrete integer once every symbol is bound,
* light constant folding so that fully static programs produce plain integers.

Expressions are immutable and hashable, so they can be used as dictionary keys
and deduplicated freely.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Union

from .errors import SymbolicError

#: Anything accepted where an expression is expected.
ExprLike = Union["Expr", int]


def as_expr(value: ExprLike) -> "Expr":
    """Coerce an ``int`` (or existing expression) into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise SymbolicError(f"cannot convert bool {value!r} to a symbolic expression")
    if isinstance(value, (int,)):
        return Const(int(value))
    if isinstance(value, float):
        if float(value).is_integer():
            return Const(int(value))
        raise SymbolicError(f"non-integer float {value!r} is not a valid dimension size")
    raise SymbolicError(f"cannot convert {value!r} to a symbolic expression")


class Expr:
    """Base class for symbolic integer expressions."""

    __slots__ = ()

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add.make(self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add.make(as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul.make(self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul.make(as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add.make(self, Mul.make(Const(-1), as_expr(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Add.make(as_expr(other), Mul.make(Const(-1), self))

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(self, as_expr(other))

    # -- interface ----------------------------------------------------------
    def symbols(self) -> frozenset:
        """Return the set of :class:`Sym` objects appearing in the expression."""
        raise NotImplementedError

    def subs(self, bindings: Mapping[Union[str, "Sym"], ExprLike]) -> "Expr":
        """Substitute symbols (by object or by name) with expressions/ints."""
        raise NotImplementedError

    def evaluate(self, bindings: Mapping[Union[str, "Sym"], ExprLike] | None = None) -> int:
        """Evaluate to a concrete integer.  Raises if symbols remain unbound."""
        expr = self.subs(bindings or {})
        if isinstance(expr, Const):
            return expr.value
        missing = sorted(s.name for s in expr.symbols())
        raise SymbolicError(f"cannot evaluate {expr!r}: unbound symbols {missing}")

    @property
    def is_static(self) -> bool:
        """True when the expression contains no free symbols."""
        return not self.symbols()

    # -- hashing / equality --------------------------------------------------
    def _key(self):
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            other = Const(other)
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self)


class Const(Expr):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def symbols(self) -> frozenset:
        return frozenset()

    def subs(self, bindings) -> Expr:
        return self

    def _key(self):
        return ("const", self.value)

    def __str__(self) -> str:
        return str(self.value)


class Sym(Expr):
    """A named symbol, e.g. the number of tokens routed to an expert."""

    __slots__ = ("name", "ragged")

    def __init__(self, name: str, ragged: bool = False):
        if not name:
            raise SymbolicError("symbol names must be non-empty")
        self.name = str(name)
        #: Ragged symbols model ragged dimensions; they "absorb" arithmetic
        #: (see :func:`repro.core.dims.combine_ragged`), but at the expression
        #: level they behave like ordinary symbols.
        self.ragged = bool(ragged)

    def symbols(self) -> frozenset:
        return frozenset({self})

    def subs(self, bindings) -> Expr:
        for key in (self, self.name):
            if key in bindings:
                return as_expr(bindings[key])
        return self

    def _key(self):
        return ("sym", self.name)

    def __str__(self) -> str:
        return self.name


class _NAry(Expr):
    """Shared machinery for associative/commutative n-ary operators."""

    __slots__ = ("terms",)
    _identity: int = 0
    _symbol: str = "?"

    def __init__(self, terms: Iterable[Expr]):
        self.terms = tuple(terms)

    @classmethod
    def _fold(cls, a: int, b: int) -> int:
        raise NotImplementedError

    @classmethod
    def make(cls, *terms: ExprLike) -> Expr:
        flat: list[Expr] = []
        const_acc: int | None = None
        for term in terms:
            term = as_expr(term)
            parts = term.terms if isinstance(term, cls) else (term,)
            for part in parts:
                if isinstance(part, Const):
                    const_acc = part.value if const_acc is None else cls._fold(const_acc, part.value)
                else:
                    flat.append(part)
        result_const = cls._identity if const_acc is None else const_acc
        return cls._finish(flat, result_const)

    @classmethod
    def _finish(cls, flat: list[Expr], const: int) -> Expr:
        raise NotImplementedError

    def symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for term in self.terms:
            out = out | term.symbols()
        return out

    def subs(self, bindings) -> Expr:
        return type(self).make(*(t.subs(bindings) for t in self.terms))

    def _key(self):
        return (type(self).__name__, tuple(sorted((t._key() for t in self.terms))))


class Add(_NAry):
    """Sum of terms."""

    __slots__ = ()
    _identity = 0
    _symbol = "+"

    @classmethod
    def _fold(cls, a: int, b: int) -> int:
        return a + b

    @classmethod
    def _finish(cls, flat, const) -> Expr:
        if not flat:
            return Const(const)
        if const != 0:
            flat = flat + [Const(const)]
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def __str__(self) -> str:
        return "(" + " + ".join(str(t) for t in self.terms) + ")"


class Mul(_NAry):
    """Product of factors."""

    __slots__ = ()
    _identity = 1
    _symbol = "*"

    @classmethod
    def _fold(cls, a: int, b: int) -> int:
        return a * b

    @classmethod
    def _finish(cls, flat, const) -> Expr:
        if const == 0:
            return Const(0)
        if not flat:
            return Const(const)
        if const != 1:
            flat = [Const(const)] + flat
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def __str__(self) -> str:
        return "(" + " * ".join(str(t) for t in self.terms) + ")"


class Max(_NAry):
    """Maximum of terms."""

    __slots__ = ()
    _identity = 0
    _symbol = "max"

    @classmethod
    def _fold(cls, a: int, b: int) -> int:
        return max(a, b)

    @classmethod
    def make(cls, *terms: ExprLike) -> Expr:
        flat: list[Expr] = []
        const_acc: int | None = None
        seen = set()
        for term in terms:
            term = as_expr(term)
            parts = term.terms if isinstance(term, cls) else (term,)
            for part in parts:
                if isinstance(part, Const):
                    const_acc = part.value if const_acc is None else max(const_acc, part.value)
                elif part._key() not in seen:
                    seen.add(part._key())
                    flat.append(part)
        if not flat:
            return Const(const_acc if const_acc is not None else 0)
        if const_acc is not None:
            flat = flat + [Const(const_acc)]
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    @classmethod
    def _finish(cls, flat, const) -> Expr:  # pragma: no cover - unused, make() overridden
        raise NotImplementedError

    def __str__(self) -> str:
        return "max(" + ", ".join(str(t) for t in self.terms) + ")"


class _BinOp(Expr):
    """Shared machinery for non-commutative binary operators."""

    __slots__ = ("num", "den")
    _name = "?"

    def __init__(self, num: Expr, den: Expr):
        self.num = num
        self.den = den

    @classmethod
    def _fold(cls, a: int, b: int) -> int:
        raise NotImplementedError

    @classmethod
    def make(cls, num: ExprLike, den: ExprLike) -> Expr:
        num, den = as_expr(num), as_expr(den)
        if isinstance(den, Const):
            if den.value == 0:
                raise SymbolicError(f"{cls._name} by zero")
            if den.value == 1:
                return num
            if isinstance(num, Const):
                return Const(cls._fold(num.value, den.value))
        return cls(num, den)

    def symbols(self) -> frozenset:
        return self.num.symbols() | self.den.symbols()

    def subs(self, bindings) -> Expr:
        return type(self).make(self.num.subs(bindings), self.den.subs(bindings))

    def _key(self):
        return (type(self).__name__, self.num._key(), self.den._key())


class CeilDiv(_BinOp):
    """Ceiling division, written ``ceil(a / b)`` in the paper's shape tables."""

    __slots__ = ()
    _name = "ceildiv"

    @classmethod
    def _fold(cls, a: int, b: int) -> int:
        return -(-a // b)

    def __str__(self) -> str:
        return f"ceil({self.num}/{self.den})"


class FloorDiv(_BinOp):
    """Floor division."""

    __slots__ = ()
    _name = "floordiv"

    @classmethod
    def _fold(cls, a: int, b: int) -> int:
        return a // b

    def __str__(self) -> str:
        return f"floor({self.num}/{self.den})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def ceil_div(num: ExprLike, den: ExprLike) -> Expr:
    """``ceil(num / den)`` with constant folding."""
    return CeilDiv.make(num, den)


def smax(*terms: ExprLike) -> Expr:
    """Symbolic maximum with constant folding."""
    return Max.make(*terms)


def ssum(terms: Iterable[ExprLike]) -> Expr:
    """Sum an iterable of expressions (empty sum is 0)."""
    terms = list(terms)
    if not terms:
        return Const(0)
    return Add.make(*terms)


def sprod(terms: Iterable[ExprLike]) -> Expr:
    """Multiply an iterable of expressions (empty product is 1)."""
    terms = list(terms)
    if not terms:
        return Const(1)
    return Mul.make(*terms)


_FRESH_COUNTER: Dict[str, int] = {}


def fresh_symbol(prefix: str = "D", ragged: bool = False) -> Sym:
    """Create a fresh, uniquely named symbol (``D0``, ``D1``, ...).

    Used by the shape semantics whenever an operator introduces a new dynamic
    or ragged dimension (e.g. Partition outputs, flattening over a ragged dim).
    """
    index = _FRESH_COUNTER.get(prefix, 0)
    _FRESH_COUNTER[prefix] = index + 1
    return Sym(f"{prefix}{index}", ragged=ragged)


def reset_symbol_counter() -> None:
    """Reset fresh-symbol numbering (useful for reproducible tests)."""
    _FRESH_COUNTER.clear()


def evaluate(expr: ExprLike, bindings: Mapping | None = None) -> int:
    """Evaluate an expression (or plain int) to a concrete integer."""
    return as_expr(expr).evaluate(bindings or {})


def maybe_evaluate(expr: ExprLike, bindings: Mapping | None = None) -> ExprLike:
    """Substitute and constant-fold; return an ``int`` if fully bound."""
    result = as_expr(expr).subs(bindings or {})
    if isinstance(result, Const):
        return result.value
    return result
