"""Stream data types and their runtime values (paper Section 3.1).

The data type of a STeP stream is a *tile* (a two-dimensional, possibly
dynamically shaped matrix), a *selector* (a multi-hot vector used by the
routing/merging operators), a read-only *reference to on-chip memory*
(a buffer handle), or a tuple of these.

This module defines both sides of that coin:

* **type descriptors** (:class:`TileType`, :class:`SelectorType`,
  :class:`BufferType`, :class:`TupleType`, :class:`AddressType`) used by the
  symbolic frontend for shape checking and for the cost model (``|dtype|`` in
  Section 4.2), and
* **runtime values** (:class:`Tile`, :class:`Selector`, :class:`BufferHandle`,
  :class:`Address`) that flow through the simulator.

Tiles can carry an optional numpy payload.  Unit tests exercise real numerics;
large benchmark sweeps run with metadata-only tiles so that only shapes, byte
counts and FLOP counts flow through the machine.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from . import symbolic as sym
from .dims import Dim
from .errors import ShapeError, TypeMismatchError
from .symbolic import Expr


# ---------------------------------------------------------------------------
# Element (scalar) types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ElemType:
    """A scalar element type with a byte width."""

    name: str
    nbytes: int
    numpy_dtype: object

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: BFloat16 — the paper's compute tiles operate on 16x16 BFloat16 tiles.
#: numpy has no native bfloat16, so payloads are stored as float32 while byte
#: accounting uses 2 bytes per element.
BF16 = ElemType("bf16", 2, np.float32)
F32 = ElemType("f32", 4, np.float32)
F16 = ElemType("f16", 2, np.float16)
I32 = ElemType("i32", 4, np.int32)
I8 = ElemType("i8", 1, np.int8)
BOOL = ElemType("bool", 1, np.bool_)

_ELEM_TYPES = {t.name: t for t in (BF16, F32, F16, I32, I8, BOOL)}


def elem_type(name_or_type: Union[str, ElemType]) -> ElemType:
    """Look up an element type by name (or pass one through)."""
    if isinstance(name_or_type, ElemType):
        return name_or_type
    try:
        return _ELEM_TYPES[name_or_type]
    except KeyError:
        raise TypeMismatchError(f"unknown element type {name_or_type!r}") from None


# ---------------------------------------------------------------------------
# Type descriptors
# ---------------------------------------------------------------------------

class DataType:
    """Base class for stream data-type descriptors."""

    def nbytes_expr(self) -> Expr:
        """Symbolic size in bytes of a single value of this type (``|dtype|``)."""
        raise NotImplementedError

    def nbytes(self, bindings=None) -> int:
        """Concrete size in bytes once all symbols are bound."""
        return self.nbytes_expr().evaluate(bindings or {})

    @property
    def is_static(self) -> bool:
        return self.nbytes_expr().is_static


@dataclass(frozen=True)
class TileType(DataType):
    """A two-dimensional tile, possibly with dynamic shape."""

    rows: Dim
    cols: Dim
    dtype: ElemType = BF16

    def __init__(self, rows, cols, dtype: Union[str, ElemType] = BF16):
        object.__setattr__(self, "rows", Dim.of(rows))
        object.__setattr__(self, "cols", Dim.of(cols))
        object.__setattr__(self, "dtype", elem_type(dtype))

    def nbytes_expr(self) -> Expr:
        return self.rows.size * self.cols.size * self.dtype.nbytes

    @property
    def shape(self) -> Tuple[Dim, Dim]:
        return (self.rows, self.cols)

    def concrete_shape(self, bindings=None) -> Tuple[int, int]:
        return (self.rows.evaluate(bindings or {}), self.cols.evaluate(bindings or {}))

    def with_rows(self, rows) -> "TileType":
        return TileType(rows, self.cols, self.dtype)

    def with_cols(self, cols) -> "TileType":
        return TileType(self.rows, cols, self.dtype)

    def __str__(self) -> str:
        return f"Tile[{self.rows},{self.cols}]({self.dtype})"


@dataclass(frozen=True)
class SelectorType(DataType):
    """A multi-hot selector over ``num_targets`` consumers/producers."""

    num_targets: int

    def nbytes_expr(self) -> Expr:
        # one byte per possible target keeps the accounting simple and matches
        # the negligible contribution selectors make to traffic.
        return sym.Const(max(1, self.num_targets))

    def __str__(self) -> str:
        return f"Selector[{self.num_targets}]"


@dataclass(frozen=True)
class AddressType(DataType):
    """A [1,1] tile of integer addresses (the paper's ``I`` data type)."""

    dtype: ElemType = I32

    def nbytes_expr(self) -> Expr:
        return sym.Const(self.dtype.nbytes)

    def __str__(self) -> str:
        return f"Address({self.dtype})"


@dataclass(frozen=True)
class BufferType(DataType):
    """A read-only reference to on-chip memory holding a rank-``b`` sub-stream.

    ``element`` is the data type stored in the buffer (normally a
    :class:`TileType`) and ``dims`` the buffered dimensions, outermost first.
    """

    element: DataType
    dims: Tuple[Dim, ...]

    def __init__(self, element: DataType, dims: Sequence):
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "dims", tuple(Dim.of(d) for d in dims))

    @property
    def rank(self) -> int:
        return len(self.dims)

    def cardinality(self) -> Expr:
        """``||buffer||``: the product of the buffered dimension sizes."""
        return sym.sprod(d.size for d in self.dims)

    def nbytes_expr(self) -> Expr:
        return self.cardinality() * self.element.nbytes_expr()

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.dims)
        return f"Buffer[{inner}]({self.element})"


@dataclass(frozen=True)
class TupleType(DataType):
    """A tuple of data types (produced by Zip)."""

    elements: Tuple[DataType, ...]

    def __init__(self, elements: Iterable[DataType]):
        object.__setattr__(self, "elements", tuple(elements))

    def nbytes_expr(self) -> Expr:
        return sym.ssum(e.nbytes_expr() for e in self.elements)

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elements) + ")"


# ---------------------------------------------------------------------------
# Runtime values
# ---------------------------------------------------------------------------

_tile_ids = itertools.count()
_buffer_ids = itertools.count()


class Value:
    """Base class for runtime stream values."""

    @property
    def nbytes(self) -> int:
        raise NotImplementedError


class Tile(Value):
    """A runtime tile: concrete shape, element type, optional payload.

    Payload-free tiles ("metadata tiles") carry everything the timing and cost
    models need (shape, byte size) without the memory cost of real data, which
    keeps large simulator sweeps cheap.
    """

    __slots__ = ("rows", "cols", "dtype", "data", "tile_id", "_nbytes")

    def __init__(self, rows: int, cols: int, dtype: Union[str, ElemType] = BF16,
                 data: Optional[np.ndarray] = None):
        self.rows = int(rows)
        self.cols = int(cols)
        self.dtype = elem_type(dtype)
        self._nbytes = self.rows * self.cols * self.dtype.nbytes
        if self.rows < 0 or self.cols < 0:
            raise ShapeError(f"tile shape must be non-negative, got ({rows}, {cols})")
        if data is not None:
            data = np.asarray(data, dtype=self.dtype.numpy_dtype)
            if data.shape != (self.rows, self.cols):
                raise ShapeError(
                    f"tile payload shape {data.shape} does not match ({self.rows}, {self.cols})")
        self.data = data
        self.tile_id = next(_tile_ids)

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def zeros(rows: int, cols: int, dtype: Union[str, ElemType] = BF16) -> "Tile":
        dtype = elem_type(dtype)
        return Tile(rows, cols, dtype, np.zeros((rows, cols), dtype=dtype.numpy_dtype))

    @staticmethod
    def from_array(array: np.ndarray, dtype: Union[str, ElemType] = BF16) -> "Tile":
        array = np.asarray(array)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2:
            raise ShapeError(f"tiles are two-dimensional, got ndim={array.ndim}")
        return Tile(array.shape[0], array.shape[1], dtype, array)

    @staticmethod
    def meta(rows: int, cols: int, dtype: Union[str, ElemType] = BF16) -> "Tile":
        """A metadata-only tile (no payload)."""
        return Tile(rows, cols, dtype, None)

    @staticmethod
    def meta_shared(rows: int, cols: int, dtype: Union[str, ElemType] = BF16) -> "Tile":
        """A metadata-only tile, interned per (shape, dtype).

        Metadata tiles carry no payload and nothing downstream mutates tiles,
        so hot paths (load executors, the hardware-function meta fast paths)
        share one instance per shape instead of allocating per element.
        """
        return _shared_meta_tile(int(rows), int(cols), elem_type(dtype))

    # -- properties -----------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def has_data(self) -> bool:
        return self.data is not None

    @property
    def num_elements(self) -> int:
        return self.rows * self.cols

    def to_array(self) -> np.ndarray:
        if self.data is None:
            raise TypeMismatchError("metadata-only tile has no payload")
        return self.data

    def like(self, data: Optional[np.ndarray]) -> "Tile":
        """A tile with the same dtype as this one, shaped after ``data``."""
        if data is None:
            return Tile.meta(self.rows, self.cols, self.dtype)
        return Tile.from_array(data, self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        payload = "data" if self.has_data else "meta"
        return f"Tile({self.rows}x{self.cols}, {self.dtype}, {payload})"


class Selector(Value):
    """A multi-hot selector value: which input/output streams are active."""

    __slots__ = ("indices", "num_targets")

    def __init__(self, indices: Union[int, Iterable[int]], num_targets: int):
        if isinstance(indices, int):
            indices = (indices,)
        indices = tuple(sorted(set(int(i) for i in indices)))
        num_targets = int(num_targets)
        for index in indices:
            if not 0 <= index < num_targets:
                raise ShapeError(
                    f"selector index {index} out of range for {num_targets} targets")
        self.indices = indices
        self.num_targets = num_targets

    @property
    def nbytes(self) -> int:
        return max(1, self.num_targets)

    @property
    def is_one_hot(self) -> bool:
        return len(self.indices) == 1

    def __iter__(self):
        return iter(self.indices)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Selector)
                and self.indices == other.indices
                and self.num_targets == other.num_targets)

    def __hash__(self) -> int:
        return hash((self.indices, self.num_targets))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Selector({list(self.indices)}/{self.num_targets})"


class Address(Value):
    """A runtime address value (used by the random off-chip operators)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    @property
    def nbytes(self) -> int:
        return I32.nbytes

    def __eq__(self, other) -> bool:
        return isinstance(other, Address) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("addr", self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Address({self.value})"


@lru_cache(maxsize=1024)
def _shared_meta_tile(rows: int, cols: int, dtype: "ElemType") -> "Tile":
    return Tile(rows, cols, dtype, None)


class BufferHandle(Value):
    """A runtime read-only reference to an on-chip buffer.

    ``items`` holds the buffered sub-stream in token form (data values and
    stop tokens, *without* a trailing Done); ``rank`` is the bufferize rank.
    """

    __slots__ = ("buffer_id", "items", "rank")

    def __init__(self, items: Sequence, rank: int):
        self.buffer_id = next(_buffer_ids)
        self.items = tuple(items)
        self.rank = int(rank)

    @property
    def data_values(self) -> Tuple[Value, ...]:
        from .stream import Data  # local import to avoid a cycle
        return tuple(item.value for item in self.items if isinstance(item, Data))

    @property
    def num_values(self) -> int:
        return len(self.data_values)

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.data_values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BufferHandle(id={self.buffer_id}, values={self.num_values}, rank={self.rank})"


class TupleValue(Value):
    """A runtime tuple of values (produced by Zip)."""

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[Value]):
        self.elements = tuple(elements)

    @property
    def nbytes(self) -> int:
        return sum(e.nbytes for e in self.elements)

    def __getitem__(self, index: int) -> Value:
        return self.elements[index]

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TupleValue({list(self.elements)})"


def value_nbytes(value) -> int:
    """Byte size of any runtime value (plain ints/bools count as 4 bytes)."""
    if isinstance(value, Value):
        return value.nbytes
    if isinstance(value, (bool, np.bool_)):
        return 1
    if isinstance(value, (int, np.integer, float, np.floating)):
        return 4
    raise TypeMismatchError(f"cannot compute byte size of {value!r}")
