"""Frontend helpers for constructing STeP programs and their input streams.

Programs are written by instantiating operator classes (exactly like
Listing 1); this module adds the small amount of glue the workloads and tests
need:

* :func:`input_stream` — declare a runtime-fed source node,
* converters between numpy matrices / routing decisions and token streams,
* converters from output token streams back to numpy matrices.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .dtypes import ElemType, Selector, SelectorType, Tile, TileType
from .errors import ShapeError
from .graph import InputStream, StreamHandle
from .shape import StreamShape
from .stream import Data, Token, nested_from_tokens, tokens_from_nested


def input_stream(name: str, shape, dtype) -> StreamHandle:
    """Declare an input stream; its tokens are supplied at simulation time."""
    return InputStream(shape, dtype, name=name).stream


def tile_input(name: str, num_tiles, tile_rows: int, tile_cols: int,
               dtype: Union[str, ElemType] = "bf16") -> StreamHandle:
    """Declare a rank-0 input stream of ``num_tiles`` tiles of a fixed shape."""
    shape = StreamShape([num_tiles])
    return input_stream(name, shape, TileType(tile_rows, tile_cols, dtype))


def row_stream_input(name: str, num_rows, row_width: int,
                     dtype: Union[str, ElemType] = "bf16") -> StreamHandle:
    """Declare a rank-1 stream of single-row tiles (shape ``[num_rows, 1]``).

    This matches the paper's MoE walk-through, where a ``[10, 64]`` activation
    matrix is streamed as a ``[10, 1]`` stream of ``[1, 64]`` tiles.
    """
    shape = StreamShape([num_rows, 1])
    return input_stream(name, shape, TileType(1, row_width, dtype))


def selector_input(name: str, count, num_targets: int) -> StreamHandle:
    """Declare a rank-0 selector stream with ``count`` selector elements."""
    shape = StreamShape([count])
    return input_stream(name, shape, SelectorType(num_targets))


# ---------------------------------------------------------------------------
# Token-stream construction
# ---------------------------------------------------------------------------

def matrix_to_row_tokens(matrix: Optional[np.ndarray], num_rows: Optional[int] = None,
                         row_width: Optional[int] = None,
                         dtype: Union[str, ElemType] = "bf16",
                         with_data: bool = True) -> List[Token]:
    """Tokens for a matrix streamed row by row as a rank-1 stream ``[rows, 1]``.

    When ``matrix`` is ``None``, metadata-only tiles of shape
    ``[1, row_width]`` are produced (``num_rows`` and ``row_width`` required).
    """
    if matrix is not None:
        matrix = np.asarray(matrix)
        num_rows, row_width = matrix.shape
    if num_rows is None or row_width is None:
        raise ShapeError("matrix_to_row_tokens needs either a matrix or explicit dimensions")
    rows = []
    for index in range(num_rows):
        if matrix is not None and with_data:
            tile = Tile.from_array(matrix[index:index + 1, :], dtype)
        else:
            tile = Tile.meta(1, row_width, dtype)
        rows.append([tile])
    return tokens_from_nested(rows, rank=1)


def tiles_to_tokens(tiles: Sequence[Tile]) -> List[Token]:
    """A rank-0 token stream from a flat list of tiles."""
    return tokens_from_nested(list(tiles), rank=0)


def selectors_to_tokens(choices: Sequence[Union[int, Sequence[int]]],
                        num_targets: int) -> List[Token]:
    """A rank-0 selector token stream from per-element routing decisions."""
    values = [Selector(choice, num_targets) for choice in choices]
    return tokens_from_nested(values, rank=0)


def counts_to_tokens(count: int, value=1) -> List[Token]:
    """A rank-0 stream of ``count`` scalar trigger values (reference streams)."""
    return tokens_from_nested([value] * count, rank=0)


# ---------------------------------------------------------------------------
# Token-stream deconstruction (for checking functional results)
# ---------------------------------------------------------------------------

def tokens_to_tiles(tokens: Sequence[Token]) -> List[Tile]:
    """All tile payloads in a token stream, in order."""
    return [t.value for t in tokens if isinstance(t, Data) and isinstance(t.value, Tile)]


def tokens_to_matrix(tokens: Sequence[Token]) -> np.ndarray:
    """Vertically stack every tile payload in the stream into one matrix."""
    tiles = tokens_to_tiles(tokens)
    if not tiles:
        return np.zeros((0, 0))
    return np.vstack([tile.to_array() for tile in tiles])


def tokens_to_nested_tiles(tokens: Sequence[Token], rank: int) -> list:
    """The nested tensor structure of a stream, with tiles as leaves."""
    return nested_from_tokens(tokens, rank)
