"""Core STeP abstraction: symbolic shapes, streams, data types and the program graph."""

from . import symbolic
from .builder import (
    counts_to_tokens,
    input_stream,
    matrix_to_row_tokens,
    row_stream_input,
    selector_input,
    selectors_to_tokens,
    tile_input,
    tiles_to_tokens,
    tokens_to_matrix,
    tokens_to_nested_tiles,
    tokens_to_tiles,
)
from .dims import Dim, DimKind, DimRequirement
from .dtypes import (
    BF16,
    BOOL,
    F16,
    F32,
    I8,
    I32,
    Address,
    AddressType,
    BufferHandle,
    BufferType,
    Selector,
    SelectorType,
    Tile,
    TileType,
    TupleType,
    TupleValue,
)
from .errors import (
    ConfigError,
    DeadlockError,
    GraphError,
    ShapeError,
    SimulationError,
    StepError,
    StreamProtocolError,
    SymbolicError,
    TypeMismatchError,
)
from .graph import InputStream, OperatorBase, Program, StreamHandle, StreamSpec
from .shape import StreamShape, shape_of
from .stream import (
    DONE,
    Data,
    Done,
    Stop,
    StopAbsorbingEmitter,
    Token,
    data_values,
    infer_concrete_shape,
    nested_from_tokens,
    tokens_from_nested,
    validate_tokens,
)
from .symbolic import Const, Expr, Sym, ceil_div, fresh_symbol, smax

__all__ = [name for name in dir() if not name.startswith("_")]
