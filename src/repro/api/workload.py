"""Workload adapters — the *what* of a scenario.

A :class:`Workload` is anything that can build a dataflow program for a given
unified :class:`~repro.schedules.Schedule` and report the paper's metrics for
it.  The contract is deliberately small:

* ``kind`` — a stable registry name (``"moe"``, ``"attention"``, …),
* ``params()`` — the picklable constructor parameters, so a workload can cross
  a multiprocessing pool boundary, be content-hashed by the sweep cache and be
  reconstructed via :func:`workload_from_params`,
* ``build(schedule, hardware)`` — the :class:`~repro.core.graph.Program` plus
  its runtime input token streams (a :class:`BuiltWorkload`),
* ``run(schedule, hardware)`` — simulate and return the flat metrics
  dictionary the sweep cache stores (``SimReport.to_dict()``).

:class:`WorkloadBase` implements ``params``/``run`` generically; adapters only
map the unified schedule onto their builder's configuration.  Composite
workloads (:class:`DecoderWorkload`) override ``run`` instead of ``build``
because they simulate several sub-programs.

The adapters wrap the existing builders in :mod:`repro.workloads` without
changing their semantics: a workload run through this layer produces
bit-identical metrics to a hand-constructed ``MoELayerConfig`` /
``AttentionConfig`` simulation (pinned by ``tests/api/test_equivalence.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (Any, ClassVar, Dict, Optional, Protocol, Sequence, Type,
                    runtime_checkable)

from ..core.errors import ConfigError
from ..core.graph import Program
from ..platforms import resolve_platform
from ..schedules import Schedule
from ..sim import simulate
from ..sim.executors.common import HardwareConfig
from ..workloads.attention import AttentionConfig, build_attention_layer
from ..workloads.configs import ModelConfig
from ..workloads.model import evaluate_end_to_end
from ..workloads.moe import MoELayerConfig, build_moe_layer
from ..workloads.qkv import QKVConfig, build_qkv_layer

#: workload kind -> adapter class, for reconstruction from plain parameters
WORKLOAD_KINDS: Dict[str, Type["WorkloadBase"]] = {}


def register_workload(cls: Type["WorkloadBase"]) -> Type["WorkloadBase"]:
    """Class decorator registering an adapter under its ``kind``."""
    kind = getattr(cls, "kind", None)
    if not kind:
        raise ConfigError(f"{cls.__name__} must define a non-empty `kind`")
    if kind in WORKLOAD_KINDS:
        raise ConfigError(f"workload kind {kind!r} is already registered")
    WORKLOAD_KINDS[kind] = cls
    return cls


def workload_from_params(kind: str, params: Dict[str, Any]) -> "WorkloadBase":
    """Reconstruct a workload from ``(kind, params())`` — the pickle-free path."""
    try:
        cls = WORKLOAD_KINDS[kind]
    except KeyError:
        raise ConfigError(f"unknown workload kind {kind!r}; "
                          f"registered: {sorted(WORKLOAD_KINDS)}") from None
    return cls(**params)


@dataclass
class BuiltWorkload:
    """A built program plus the runtime token streams that drive it."""

    program: Program
    inputs: Dict[str, list]
    output_name: Optional[str] = None


@runtime_checkable
class Workload(Protocol):
    """Structural protocol every scenario workload satisfies."""

    kind: ClassVar[str]

    def params(self) -> Dict[str, Any]: ...

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload: ...

    def run(self, schedule: Schedule,
            hardware: Optional[HardwareConfig] = None) -> Dict[str, float]: ...


class WorkloadBase:
    """Shared implementation: ``params`` from dataclass fields, ``run`` via sim."""

    kind: ClassVar[str] = ""

    def params(self) -> Dict[str, Any]:
        """The picklable constructor arguments (shallow — configs stay dataclasses)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        raise NotImplementedError

    def run(self, schedule: Schedule,
            hardware: Optional[HardwareConfig] = None) -> Dict[str, float]:
        # any platform-ish value (Platform, name, raw config, None) resolves
        # to the raw HardwareConfig the graph simulator consumes
        hardware = resolve_platform(hardware).hardware
        built = self.build(schedule, hardware)
        report = simulate(built.program, built.inputs, hardware=hardware)
        return report.to_dict()

    def label(self) -> str:
        return self.kind


# ---------------------------------------------------------------------------
# Layer adapters
# ---------------------------------------------------------------------------

@register_workload
@dataclass
class MoEWorkload(WorkloadBase):
    """One MoE layer under routed ``assignments`` (Figures 9/10/12/13/19/20).

    The schedule's ``tiling`` picks static/dynamic batch tiling and its
    ``timemux`` picks the expert-region mapping.  ``combine_output=None``
    follows the builder's constraint automatically: top-k combination for
    spatial mappings, off for time-multiplexed ones.
    """

    kind: ClassVar[str] = "moe"

    model: ModelConfig
    batch: int
    assignments: Sequence[Sequence[int]]
    combine_output: Optional[bool] = None
    compute_bw: int = 8192
    weight_col_tiles: int = 4

    def config(self, schedule: Schedule) -> MoELayerConfig:
        num_regions = schedule.moe_num_regions
        combine = self.combine_output
        if combine is None:
            combine = num_regions is None
        return MoELayerConfig(model=self.model, batch=self.batch,
                              tile_rows=schedule.moe_tile_rows,
                              num_regions=num_regions, combine_output=combine,
                              compute_bw=self.compute_bw,
                              weight_col_tiles=self.weight_col_tiles)

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        built = build_moe_layer(self.config(schedule))
        assignments = [list(a) for a in self.assignments]
        return BuiltWorkload(program=built.program, inputs=built.inputs(assignments),
                             output_name=built.output_name)

    def label(self) -> str:
        return f"moe:{self.model.name}:b{self.batch}"


@register_workload
@dataclass
class DenseFFNWorkload(WorkloadBase):
    """A dense SwiGLU FFN layer — the single-expert degenerate of the MoE.

    Every token is routed to the one expert, so static-vs-dynamic tiling
    compares padded fixed tiles against one batch-sized tile.  This baseline
    was awkward to express before the unified API (the sweep tasks assumed
    routed expert traces); here it is just another workload over the same
    schedule grid.  ``timemux`` is meaningless for a single expert and is
    ignored.
    """

    kind: ClassVar[str] = "dense_ffn"

    model: ModelConfig
    batch: int
    compute_bw: int = 8192
    weight_col_tiles: int = 4

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        dense = dataclasses.replace(self.model, name=f"{self.model.name}-dense",
                                    num_experts=1, experts_per_token=1)
        config = MoELayerConfig(model=dense, batch=self.batch,
                                tile_rows=schedule.moe_tile_rows,
                                num_regions=None, combine_output=True,
                                compute_bw=self.compute_bw,
                                weight_col_tiles=self.weight_col_tiles)
        built = build_moe_layer(config)
        assignments = [[0] for _ in range(self.batch)]
        return BuiltWorkload(program=built.program, inputs=built.inputs(assignments),
                             output_name=built.output_name)

    def label(self) -> str:
        return f"dense_ffn:{self.model.name}:b{self.batch}"


@register_workload
@dataclass
class AttentionWorkload(WorkloadBase):
    """Decode attention over a batch of KV-cache ``lengths`` (Figures 14/15/21).

    The schedule's ``parallelization`` picks the work-distribution strategy and
    the region geometry.  ``lengths`` may be longer than ``batch``; the first
    ``batch`` entries are used, so batch-size sweeps can share one base trace.
    """

    kind: ClassVar[str] = "attention"

    model: ModelConfig
    batch: int
    lengths: Sequence[int]
    kv_tile_rows: int = 64
    compute_bw: int = 256
    initial_per_region: int = 2

    def config(self, schedule: Schedule) -> AttentionConfig:
        par = schedule.parallelization
        return AttentionConfig(model=self.model, batch=self.batch,
                               strategy=par.strategy, num_regions=par.num_regions,
                               kv_tile_rows=self.kv_tile_rows,
                               coarse_chunk=par.coarse_chunk,
                               initial_per_region=self.initial_per_region,
                               compute_bw=self.compute_bw)

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        lengths = list(self.lengths)[:self.batch]
        if len(lengths) < self.batch:
            raise ConfigError(f"attention workload: {len(lengths)} KV lengths for "
                              f"batch {self.batch}")
        built = build_attention_layer(self.config(schedule))
        return BuiltWorkload(program=built.program, inputs=built.inputs(lengths),
                             output_name=built.output_name)

    def label(self) -> str:
        return f"attention:{self.model.name}:b{self.batch}"


@register_workload
@dataclass
class QKVWorkload(WorkloadBase):
    """Batch-parallel QKV generation (the dense sub-layer of Section 5.5)."""

    kind: ClassVar[str] = "qkv"

    model: ModelConfig
    batch: int
    compute_bw: int = 8192
    weight_col_tiles: int = 4

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        config = QKVConfig(model=self.model, batch=self.batch,
                           num_regions=schedule.parallelization.num_regions,
                           weight_col_tiles=self.weight_col_tiles,
                           compute_bw=self.compute_bw)
        built = build_qkv_layer(config)
        return BuiltWorkload(program=built.program, inputs=built.inputs())

    def label(self) -> str:
        return f"qkv:{self.model.name}:b{self.batch}"


@register_workload
@dataclass
class DecoderWorkload(WorkloadBase):
    """An end-to-end decoder model: QKV + attention + MoE × ``num_layers``.

    Composite: the three sub-layer programs are simulated separately and
    composed exactly as :func:`repro.workloads.model.evaluate_end_to_end` does
    (layer latency/traffic scale with the layer count, the resource footprint
    stays that of one layer), so ``run`` is overridden instead of ``build``.
    The flat metrics additionally carry the per-sub-layer cycle breakdown of
    one layer (``layer_qkv_cycles`` …) used by the Figure 17 report.
    """

    kind: ClassVar[str] = "decoder"

    model: ModelConfig
    batch: int
    kv_lengths: Sequence[int]
    assignments: Sequence[Sequence[int]]
    num_layers: Optional[int] = None
    moe_compute_bw: int = 8192
    attention_compute_bw: int = 256
    kv_tile_rows: int = 128

    def build(self, schedule: Schedule,
              hardware: Optional[HardwareConfig] = None) -> BuiltWorkload:
        raise ConfigError("DecoderWorkload is composite (three sub-layer programs); "
                          "use run() — there is no single Program to build")

    def run(self, schedule: Schedule,
            hardware: Optional[HardwareConfig] = None) -> Dict[str, float]:
        hardware = resolve_platform(hardware).hardware
        result = evaluate_end_to_end(
            self.model, schedule, self.batch, list(self.kv_lengths),
            [list(a) for a in self.assignments], num_layers=self.num_layers,
            hardware=hardware, moe_compute_bw=self.moe_compute_bw,
            attention_compute_bw=self.attention_compute_bw,
            kv_tile_rows=self.kv_tile_rows)
        metrics = {
            "cycles": float(result.total_cycles),
            "offchip_traffic_bytes": float(result.total_traffic),
            "onchip_memory_bytes": float(result.onchip_memory),
            "allocated_compute_flops_per_cycle": float(result.allocated_compute),
            "num_layers": float(result.num_layers),
        }
        for sub, cycles in result.breakdown.cycles.items():
            metrics[f"layer_{sub}_cycles"] = float(cycles)
        return metrics

    def label(self) -> str:
        return f"decoder:{self.model.name}:b{self.batch}"
