"""Experiments as declarative records — :class:`ExperimentSpec` and the registry.

A scenario is a grid; an *experiment* is anything the repository can run and
report: a scenario grid (most figures), a parametric sweep over a registered
task (the serving latency-vs-load study sweeps trace *generator* parameters,
not pre-built workloads), or a native figure entry point with bespoke
post-processing (the Figure 8 two-simulator validation).  ``ExperimentSpec``
captures all three shapes in one JSON-round-trippable record, and
:func:`experiment` resolves a name — registered experiments, registered
scenarios, bench cases and figure ids all share the namespace — into a spec
you can inspect, serialize, modify and :func:`run_experiment`.

The payload kinds:

* ``scenario`` — a :class:`~repro.api.scenario.Scenario` (workloads ×
  schedules × platforms); runs through :func:`repro.api.run`.
* ``sweep`` — a :class:`~repro.sweep.spec.SweepSpec` over any registered
  task; runs on the shared :class:`~repro.sweep.runner.SweepRunner`, so
  serving load grids cache and pool-parallelize exactly like scenario cells.
* ``figure`` — a reference to a native entry point in
  :mod:`repro.experiments` (figure id + keyword parameters).  Still JSON
  data: the spec records *which* experiment with *which* parameters, and
  running it dispatches to the figure module.

Exactly one payload is set per spec.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..core.errors import ConfigError
from ..serialize import from_jsonable, to_jsonable
from ..sweep import ResultCache, SweepRunner, SweepSpec, SweepStats, build_runner
from .scenario import (SCENARIOS, Scenario, ScenarioResult, get_scenario,
                       run as run_scenario, scenario_descriptions)


@dataclass
class ExperimentSpec:
    """One runnable experiment as a declarative, serializable record."""

    name: str
    description: str = ""
    scenario: Optional[Scenario] = None
    sweep: Optional[SweepSpec] = None
    figure: Optional[str] = None
    #: keyword parameters of the native ``figure`` entry point (JSON-plain)
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("an experiment spec needs a non-empty name")
        payloads = [p for p in (self.scenario, self.sweep, self.figure)
                    if p is not None]
        if len(payloads) != 1:
            raise ConfigError(f"{self.name}: exactly one of scenario/sweep/figure "
                              f"must be set, got {len(payloads)}")

    @property
    def kind(self) -> str:
        """The payload kind: ``"scenario"``, ``"sweep"`` or ``"figure"``."""
        if self.scenario is not None:
            return "scenario"
        return "sweep" if self.sweep is not None else "figure"

    def __len__(self) -> int:
        """Design points of the grid payloads (0 for native figures)."""
        if self.scenario is not None:
            return len(self.scenario)
        return len(self.sweep) if self.sweep is not None else 0

    def run(self, *, jobs: Optional[int] = None,
            cache: Union[ResultCache, str, None] = None,
            runner: Optional[SweepRunner] = None) -> "ExperimentResult":
        """Execute this spec (see :func:`run_experiment`)."""
        return run_experiment(self, jobs=jobs, cache=cache, runner=runner)

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON description, symmetric with :meth:`from_dict`."""
        payload: Dict[str, Any] = {"name": self.name, "kind": self.kind,
                                   "description": self.description}
        if self.scenario is not None:
            payload["scenario"] = self.scenario.to_dict()
        if self.sweep is not None:
            payload["sweep"] = to_jsonable(self.sweep)
        if self.figure is not None:
            payload["figure"] = self.figure
            payload["params"] = to_jsonable(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(
            name=payload["name"],
            description=payload.get("description", ""),
            scenario=(Scenario.from_dict(payload["scenario"])
                      if payload.get("scenario") is not None else None),
            sweep=(from_jsonable(payload["sweep"])
                   if payload.get("sweep") is not None else None),
            figure=payload.get("figure"),
            params=dict(from_jsonable(payload.get("params") or {})),
        )


@dataclass
class ExperimentResult:
    """The outcome of one executed :class:`ExperimentSpec`.

    ``rows`` is always present (flat label + metric dictionaries, grid order);
    ``scenario`` carries the full :class:`~repro.api.scenario.ScenarioResult`
    for scenario payloads and ``raw`` the native result dictionary for figure
    payloads.
    """

    spec: ExperimentSpec
    rows: List[Dict[str, Any]]
    stats: SweepStats = field(default_factory=SweepStats)
    scenario: Optional[ScenarioResult] = None
    raw: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        return len(self.rows)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ExperimentEntry:
    factory: Callable[..., ExperimentSpec]
    description: str


#: experiment name -> entry; shares its namespace with scenarios, bench cases
#: and figure ids (resolution order of :func:`experiment`)
EXPERIMENTS: Dict[str, _ExperimentEntry] = {}


def register_experiment(name: str, description: str = ""):
    """Decorator registering an :class:`ExperimentSpec` factory under ``name``."""

    def wrap(factory: Callable[..., ExperimentSpec]):
        if name in EXPERIMENTS:
            raise ConfigError(f"experiment {name!r} is already registered")
        doc = (factory.__doc__ or "").strip()
        EXPERIMENTS[name] = _ExperimentEntry(
            factory=factory,
            description=description or (doc.splitlines()[0] if doc else ""))
        return factory

    return wrap


def _load_experiment_library() -> None:
    """Import the modules that register the built-in experiments.

    Lazy: :mod:`repro.experiments` is a heavyweight import the bare API facade
    does not need, and the experiment modules themselves import
    :mod:`repro.api` — eager imports here would cycle.
    """
    importlib.import_module("repro.experiments.library")


def experiment(name: str, **overrides) -> ExperimentSpec:
    """Resolve ``name`` into an :class:`ExperimentSpec` (with factory overrides).

    Resolution order: registered experiments (every figure plus
    ``"serve-latency"``), registered scenarios (wrapped as scenario-payload
    specs), bench cases (their scenario at the ``scale`` override, default
    ``"smoke"``).  Figure experiments accept both spellings: ``"figure15"``
    and the bare CLI id ``"15"``.
    """
    _load_experiment_library()
    alias = f"figure{name}" if name.isdigit() else name
    if alias in EXPERIMENTS:
        return EXPERIMENTS[alias].factory(**overrides)
    if alias in SCENARIOS:
        return ExperimentSpec(name=alias,
                              description=scenario_descriptions().get(alias, ""),
                              scenario=get_scenario(alias, **overrides))
    from ..bench.suite import CASES
    if name in CASES:
        case = CASES[name]
        scale = overrides.pop("scale", "smoke")
        if overrides:
            raise ConfigError(f"bench-case experiment {name!r} only takes a "
                              f"scale override, got {sorted(overrides)}")
        return ExperimentSpec(name=name, description=case.description,
                              scenario=case.scenario(scale))
    raise ConfigError(f"unknown experiment {name!r}; known: {experiment_names()}")


def experiment_names() -> List[str]:
    """Every resolvable experiment name, sorted (excluding bare figure ids)."""
    _load_experiment_library()
    from ..bench.suite import CASES

    names = set(EXPERIMENTS) | set(SCENARIOS) | set(CASES)
    return sorted(names)


def experiment_descriptions() -> Dict[str, str]:
    """experiment name -> one-line description, for ``--list`` style output."""
    _load_experiment_library()
    from ..bench.suite import CASES

    described: Dict[str, str] = {}
    for name, entry in EXPERIMENTS.items():
        described[name] = entry.description
    for name, description in scenario_descriptions().items():
        described.setdefault(name, description)
    for name, case in CASES.items():
        described.setdefault(name, case.description)
    return dict(sorted(described.items()))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run_experiment(spec: Union[ExperimentSpec, str], *, jobs: Optional[int] = None,
                   cache: Union[ResultCache, str, None] = None,
                   runner: Optional[SweepRunner] = None,
                   **overrides) -> ExperimentResult:
    """Execute an experiment spec (or resolve a name first) and collect rows.

    One entry point for all three payload kinds, mirroring
    :func:`repro.api.run`'s execution knobs: scenario and sweep payloads share
    the pooled runner and content-hash cache; figure payloads dispatch to
    their native entry point (which itself executes its grids through the
    same runner).
    """
    if isinstance(spec, str):
        spec = experiment(spec, **overrides)
    elif overrides:
        raise ConfigError("factory overrides only apply to experiment names")
    runner = build_runner(jobs=jobs, cache=cache, runner=runner)

    if spec.scenario is not None:
        result = run_scenario(spec.scenario, runner=runner)
        return ExperimentResult(spec=spec, rows=result.to_rows(),
                                stats=result.stats, scenario=result)
    if spec.sweep is not None:
        results = runner.run(spec.sweep)
        rows = [dict(r.metrics) for r in results]
        return ExperimentResult(spec=spec, rows=rows, stats=runner.last_stats)

    from ..experiments import runner as figure_runner
    from ..experiments.common import resolve_scale

    if spec.figure not in figure_runner.EXPERIMENTS:
        raise ConfigError(f"{spec.name}: unknown figure entry point "
                          f"{spec.figure!r}; known: {sorted(figure_runner.EXPERIMENTS)}")
    params = dict(spec.params)
    # params are stored JSON-plain (to_jsonable), so a tagged ExperimentScale
    # must be rebuilt before resolution — fresh and round-tripped specs agree
    scale = resolve_scale(from_jsonable(params.pop("scale", "default")))
    if params:
        raise ConfigError(f"{spec.name}: figure payloads only take a scale "
                          f"parameter, got {sorted(params)}")
    before = SweepStats()
    before.add(runner.cumulative_stats)
    raw = figure_runner.EXPERIMENTS[spec.figure](scale, runner)
    stats = SweepStats(
        points=runner.cumulative_stats.points - before.points,
        simulated=runner.cumulative_stats.simulated - before.simulated,
        cache_hits=runner.cumulative_stats.cache_hits - before.cache_hits,
        elapsed_seconds=(runner.cumulative_stats.elapsed_seconds
                         - before.elapsed_seconds))
    rows = raw.get("rows")
    if rows is None:
        rows = [row for payload in raw.get("per_model", {}).values()
                for row in payload.get("rows", [])]
    return ExperimentResult(spec=spec, rows=list(rows), stats=stats, raw=raw)
