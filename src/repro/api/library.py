"""Built-in registered scenarios.

Importing :mod:`repro.api` registers these names (list them with
:func:`repro.api.scenario_names`):

* ``"dense-ffn"`` — a dense SwiGLU FFN layer (the single-expert degenerate of
  the MoE) swept over static tile sizes versus dynamic tiling.  *New* with the
  unified API: the old per-figure structure had no place for a workload
  without routed expert traces.
* ``"prefill-decode-mix"`` — decode attention over a bimodal batch mixing
  long-context (prefill-heavy) and short-context requests, comparing all
  three parallelization strategies.  Also new: the per-figure KV traces were
  variance-classed, never bimodal.
* ``"figure9"`` / ``"figure10"`` — the paper's MoE tiling Pareto experiment
  expressed as a scenario (the same grid the rewired
  :mod:`repro.experiments.figure9_10` runs, so its metrics are bit-identical
  to the figure path).

Factories take keyword overrides (``seed``, ``batch``, …; the figure
factories take ``scale``) so one registration covers smoke tests and
full-scale runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..schedules import Schedule, parallelization
from ..workloads.configs import MIXTRAL_8X7B, QWEN3_30B_A3B, scaled_config
from .scenario import Scenario, register_scenario
from .workload import AttentionWorkload, DenseFFNWorkload


def tiling_schedules(tiles: Sequence[int]):
    """Static tile sizes plus the dynamic point, as named unified schedules."""
    schedules = {f"tile={t}": Schedule.static(f"tile={t}", tile_rows=t) for t in tiles}
    schedules["dynamic"] = Schedule.dynamic()
    return schedules


@register_scenario("dense-ffn")
def dense_ffn(model_scale: int = 32, batch: int = 16,
              tiles: Sequence[int] = (4, 8, 16), seed: int = 0) -> Scenario:
    """Dense-FFN tiling baseline: does dynamic tiling still pay without routing?

    With every token on the one expert there is no load imbalance to absorb,
    so the dynamic point should match the best static tile rather than beat
    it — a sanity anchor for the MoE results.
    """
    model = scaled_config(MIXTRAL_8X7B, scale=model_scale)
    return Scenario(
        name="dense-ffn",
        workloads=DenseFFNWorkload(model=model, batch=batch),
        schedules=tiling_schedules([t for t in tiles if t <= batch]),
        seed=seed,
        description="dense SwiGLU FFN layer, static tile sweep vs dynamic tiling",
    )


@register_scenario("prefill-decode-mix")
def prefill_decode_mix(model_scale: int = 32, batch: int = 16,
                       prefill_fraction: float = 0.25, prefill_kv: int = 2048,
                       decode_kv: int = 128, seed: int = 0) -> Scenario:
    """Attention over a bimodal batch: a few huge-KV requests among small ones.

    The KV lengths are drawn around two modes (long "prefill-heavy" contexts
    and short decode contexts), the worst case for static work distribution —
    one region inherits the giant requests while the rest idle.
    """
    model = scaled_config(QWEN3_30B_A3B, scale=model_scale)
    rng = np.random.default_rng(seed)
    num_prefill = max(1, int(round(batch * prefill_fraction)))
    lengths = [int(max(16, rng.normal(prefill_kv, prefill_kv * 0.1)))
               for _ in range(num_prefill)]
    lengths += [int(max(16, rng.normal(decode_kv, decode_kv * 0.25)))
                for _ in range(batch - num_prefill)]
    rng.shuffle(lengths)
    schedules = {
        strategy: Schedule(name=strategy,
                           parallelization=parallelization(strategy, num_regions=4,
                                                           coarse_chunk=max(batch // 4, 1)))
        for strategy in ("coarse", "interleave", "dynamic")
    }
    return Scenario(
        name="prefill-decode-mix",
        workloads=AttentionWorkload(model=model, batch=batch, lengths=lengths),
        schedules=schedules,
        seed=seed,
        description="decode attention over a bimodal prefill/decode KV-length mix",
    )


def _figure9_10_scenario(scale, seed: Optional[int], large_batch: bool) -> Scenario:
    from dataclasses import replace

    from ..experiments import figure9_10
    from ..experiments.common import resolve_scale
    scale = resolve_scale(scale if scale is not None else "default")
    if seed is not None:
        scale = replace(scale, seed=seed)
    return figure9_10.scenario(scale, large_batch=large_batch)


@register_scenario("figure9")
def figure9(scale=None, seed: Optional[int] = None) -> Scenario:
    """The Figure 9 MoE tiling Pareto grid (small batch) as a scenario."""
    return _figure9_10_scenario(scale, seed, large_batch=False)


@register_scenario("figure10")
def figure10(scale=None, seed: Optional[int] = None) -> Scenario:
    """The Figure 10 MoE tiling Pareto grid (large batch) as a scenario."""
    return _figure9_10_scenario(scale, seed, large_batch=True)
