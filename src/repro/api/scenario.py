"""Scenarios — the *experiment* of the unified API, and the ``run`` entry point.

A :class:`Scenario` names a grid of workloads × unified schedules plus the
hardware configuration and seed: everything needed to reproduce a figure (or
invent a new experiment) in one declarative record.  :func:`run` expands the
scenario into a zip-mode :class:`~repro.sweep.spec.SweepSpec` over the single
generic ``"workload"`` sweep task and executes it on a
:class:`~repro.sweep.runner.SweepRunner`, so every scenario inherits parallel
pooled execution, content-hash result caching (warm reruns skip simulation
entirely) and deterministic ordering for free.

Scenarios can also be *registered* by name: ``register_scenario`` stores a
factory, ``get_scenario`` instantiates it, and ``run("name")`` resolves it
directly.  Registered factories accept keyword overrides, so one registration
covers smoke-scale tests and full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..core.errors import ConfigError
from ..schedules import Schedule
from ..sim.executors.common import HardwareConfig
from ..sweep import ResultCache, SweepRunner, SweepSpec, SweepStats, resolve_runner
from ..workloads.configs import sda_hardware
from .workload import Workload


def _as_mapping(value, default_key: Callable[[Any], str]) -> Dict[str, Any]:
    if isinstance(value, Mapping):
        return dict(value)
    return {default_key(value): value}


@dataclass
class Scenario:
    """One declarative experiment: workloads × schedules on one hardware config.

    ``workloads`` and ``schedules`` are ordered mappings from a short label to
    the object; passing a single :class:`Workload` or :class:`Schedule` wraps
    it under its own label.  ``seed`` feeds the sweep spec (tasks that consume
    seeds derive per-point seeds from it; the shipped workload task is
    seedless — workload data fully determines the result).
    """

    name: str
    workloads: Union[Workload, Mapping[str, Workload]]
    schedules: Union[Schedule, Mapping[str, Schedule]]
    hardware: Optional[HardwareConfig] = None
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a scenario needs a non-empty name")
        self.workloads = _as_mapping(self.workloads, lambda w: w.label())
        self.schedules = _as_mapping(self.schedules, lambda s: s.name)
        if not self.workloads or not self.schedules:
            raise ConfigError(f"{self.name}: needs at least one workload and one schedule")
        if self.hardware is None:
            self.hardware = sda_hardware()

    def grid(self) -> List[Tuple[str, str]]:
        """The (workload label, schedule label) cross product, workload-major."""
        return [(w, s) for w in self.workloads for s in self.schedules]

    def sweep_spec(self) -> SweepSpec:
        """The scenario as a zip-mode grid over the generic ``workload`` task."""
        pairs = self.grid()
        return SweepSpec(
            name=f"scenario-{self.name}",
            task="workload",
            base={"hardware": self.hardware},
            axes={"workload": [self.workloads[w] for w, _ in pairs],
                  "schedule": [self.schedules[s] for _, s in pairs]},
            mode="zip",
            seed=self.seed,
        )

    def __len__(self) -> int:
        return len(self.workloads) * len(self.schedules)


@dataclass
class ScenarioRow:
    """Metrics of one (workload, schedule) cell."""

    workload: str
    schedule: str
    metrics: Dict[str, float]
    cached: bool = False

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


@dataclass
class ScenarioResult:
    """All cells of one scenario run, in grid order, plus execution stats."""

    scenario: Scenario
    rows: List[ScenarioRow]
    stats: SweepStats = field(default_factory=SweepStats)

    def __getitem__(self, key: Tuple[str, str]) -> Dict[str, float]:
        workload, schedule = key
        for row in self.rows:
            if row.workload == workload and row.schedule == schedule:
                return row.metrics
        raise KeyError(key)

    def for_workload(self, workload: str) -> Dict[str, Dict[str, float]]:
        """schedule label -> metrics, for one workload."""
        return {row.schedule: row.metrics for row in self.rows
                if row.workload == workload}

    def for_schedule(self, schedule: str) -> Dict[str, Dict[str, float]]:
        """workload label -> metrics, for one schedule."""
        return {row.workload: row.metrics for row in self.rows
                if row.schedule == schedule}

    def to_rows(self) -> List[Dict[str, float]]:
        """Flat row dictionaries (workload/schedule labels + metrics) for tables."""
        return [{"workload": row.workload, "schedule": row.schedule, **row.metrics}
                for row in self.rows]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: scenario name -> factory(**overrides) -> Scenario
SCENARIOS: Dict[str, Callable[..., Scenario]] = {}


def register_scenario(name: str):
    """Decorator registering a scenario factory under ``name``.

    The factory takes only keyword arguments (scale/seed/batch overrides …)
    and returns a fresh :class:`Scenario`.
    """

    def wrap(factory: Callable[..., Scenario]):
        if name in SCENARIOS:
            raise ConfigError(f"scenario {name!r} is already registered")
        SCENARIOS[name] = factory
        return factory

    return wrap


def get_scenario(name: str, **overrides) -> Scenario:
    """Instantiate the registered scenario ``name`` (with factory overrides)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigError(f"unknown scenario {name!r}; "
                          f"registered: {scenario_names()}") from None
    return factory(**overrides)


def scenario_names() -> List[str]:
    """The registered scenario names, sorted."""
    return sorted(SCENARIOS)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run(scenario: Union[Scenario, str], *, jobs: Optional[int] = None,
        cache: Union[ResultCache, str, None] = None,
        runner: Optional[SweepRunner] = None, **overrides) -> ScenarioResult:
    """Execute a scenario (or a registered scenario name) and collect its grid.

    ``runner`` takes precedence when given; otherwise a runner is built from
    ``jobs``/``cache`` (defaulting to the shared serial, uncached runner).
    Results come back in grid order; with a cache, a warm rerun satisfies
    every cell without re-simulating (``result.stats.simulated == 0``).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario, **overrides)
    elif overrides:
        raise ConfigError("factory overrides only apply to registered scenario names")
    if runner is None:
        runner = SweepRunner(jobs=jobs, cache=cache) if (jobs or cache is not None) \
            else resolve_runner(None)
    results = runner.run(scenario.sweep_spec())
    rows = [ScenarioRow(workload=w, schedule=s, metrics=result.metrics,
                        cached=result.cached)
            for (w, s), result in zip(scenario.grid(), results)]
    return ScenarioResult(scenario=scenario, rows=rows, stats=runner.last_stats)
