"""Scenarios — the *experiment grid* of the unified API, and the ``run`` entry point.

A :class:`Scenario` names a grid of **workloads × unified schedules ×
platforms** (optionally × **scheduling policies**, for serving workloads)
plus a seed: everything needed to reproduce a figure (or invent a
new experiment) in one declarative record.  :func:`run` expands the scenario
into a zip-mode :class:`~repro.sweep.spec.SweepSpec` over the single generic
``"workload"`` sweep task and executes it on a
:class:`~repro.sweep.runner.SweepRunner`, so every scenario inherits parallel
pooled execution, content-hash result caching (warm reruns skip simulation
entirely) and deterministic ordering for free.  The platform axis flows
through the sweep like the other two: each point's cache key carries the
:class:`~repro.platforms.Platform` (name + hardware), so points on different
platforms never collide and reruns on the same platform always hit.

Scenarios can also be *registered* by name: ``register_scenario`` stores a
factory, ``get_scenario`` instantiates it, and ``run("name")`` resolves it
directly.  Registered factories accept keyword overrides, so one registration
covers smoke-scale tests and full-scale runs.  Scenarios serialize
symmetrically (:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict`) — a
scenario is data, shippable as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..core.errors import ConfigError
from ..platforms import Platform, PlatformLike, resolve_platforms
from ..schedules import Schedule
from ..serialize import from_jsonable, to_jsonable
from ..sim.executors.common import HardwareConfig
from ..sweep import ResultCache, SweepRunner, SweepSpec, SweepStats, build_runner
from .workload import Workload


def _as_mapping(value, default_key: Callable[[Any], str]) -> Dict[str, Any]:
    if isinstance(value, Mapping):
        return dict(value)
    return {default_key(value): value}


@dataclass
class Scenario:
    """One declarative experiment: workloads × schedules × platforms.

    ``workloads``, ``schedules`` and ``platforms`` are ordered mappings from a
    short label to the object; passing a single :class:`Workload`,
    :class:`Schedule`, :class:`~repro.platforms.Platform` (or registered
    platform name, or raw :class:`HardwareConfig`) wraps it under its own
    label.  ``platforms=None`` resolves to the default ``"sda"`` platform —
    exactly the hardware every call site used to default to, so a scenario
    without an explicit platform reproduces pre-platform results bit for bit.
    ``hardware`` is the pre-platform spelling of a single-platform scenario
    and folds into ``platforms`` (passing both is an error).  ``policies``
    (optional) adds a fourth axis — a mapping from label to
    :class:`~repro.serve.policy.ServePolicy` (or preset name / spec dict),
    usually built with :func:`~repro.serve.policy.policy_grid`; every
    workload in the scenario must then carry a ``policy`` field
    (:class:`~repro.serve.workload.ServeWorkload` /
    :class:`~repro.serve.fleet.FleetWorkload`), and each grid cell runs the
    workload under that cell's policy.  ``seed`` feeds
    the sweep spec (tasks that consume seeds derive per-point seeds from it;
    the shipped workload task is seedless — workload data fully determines
    the result).
    """

    name: str
    workloads: Union[Workload, Mapping[str, Workload]]
    schedules: Union[Schedule, Mapping[str, Schedule]]
    platforms: Union[PlatformLike, Mapping[str, PlatformLike]] = None
    hardware: Optional[HardwareConfig] = None
    policies: Optional[Mapping[str, Any]] = None
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a scenario needs a non-empty name")
        self.workloads = _as_mapping(self.workloads, lambda w: w.label())
        self.schedules = _as_mapping(self.schedules, lambda s: s.name)
        if not self.workloads or not self.schedules:
            raise ConfigError(f"{self.name}: needs at least one workload and one schedule")
        if self.hardware is not None:
            if self.platforms is not None:
                raise ConfigError(f"{self.name}: pass either platforms or the "
                                  f"legacy hardware, not both")
            self.platforms = self.hardware
        self.platforms = resolve_platforms(self.platforms)
        # legacy read path: the sole platform's hardware (None when swept)
        self.hardware = (next(iter(self.platforms.values())).hardware
                         if len(self.platforms) == 1 else None)
        if self.policies is not None:
            # deferred: repro.serve imports this module while initializing
            from ..serve.policy import resolve_serve_policy

            if not isinstance(self.policies, Mapping) or not self.policies:
                raise ConfigError(f"{self.name}: policies must be a non-empty "
                                  f"label -> policy mapping (see policy_grid)")
            self.policies = {str(label): resolve_serve_policy(p)
                             for label, p in self.policies.items()}
            for label, workload in self.workloads.items():
                self._with_policy(workload, label,
                                  next(iter(self.policies.values())))

    def _with_policy(self, workload, label: str, policy):
        """``workload`` rebound to ``policy`` (must carry a policy field)."""
        import dataclasses

        if not (dataclasses.is_dataclass(workload)
                and any(f.name == "policy"
                        for f in dataclasses.fields(workload))):
            raise ConfigError(
                f"{self.name}: workload {label!r} "
                f"({type(workload).__name__}) has no policy field; the "
                f"policies axis applies to serving workloads "
                f"(ServeWorkload / FleetWorkload)")
        return dataclasses.replace(workload, policy=policy)

    def grid(self) -> List[Tuple[str, ...]]:
        """The (workload, schedule, platform[, policy]) label cross product.

        Workload-major, then schedule, then platform, then (when the
        ``policies`` axis is set) policy innermost — a single-platform
        scenario without policies enumerates exactly the
        (workload, schedule) order of the pre-platform grid, as 3-tuples.
        """
        if self.policies is None:
            return [(w, s, p)
                    for w in self.workloads for s in self.schedules
                    for p in self.platforms]
        return [(w, s, p, pol)
                for w in self.workloads for s in self.schedules
                for p in self.platforms for pol in self.policies]

    def sweep_spec(self) -> SweepSpec:
        """The scenario as a zip-mode grid over the generic ``workload`` task."""
        cells = self.grid()
        if self.policies is None:
            workloads = [self.workloads[c[0]] for c in cells]
        else:
            workloads = [self._with_policy(self.workloads[c[0]], c[0],
                                           self.policies[c[3]])
                         for c in cells]
        return SweepSpec(
            name=f"scenario-{self.name}",
            task="workload",
            axes={"workload": workloads,
                  "schedule": [self.schedules[c[1]] for c in cells],
                  "platform": [self.platforms[c[2]] for c in cells]},
            mode="zip",
            seed=self.seed,
        )

    def __len__(self) -> int:
        cells = (len(self.workloads) * len(self.schedules)
                 * len(self.platforms))
        return cells if self.policies is None else cells * len(self.policies)

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON description, symmetric with :meth:`from_dict`."""
        payload = {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "workloads": {label: to_jsonable(w) for label, w in self.workloads.items()},
            "schedules": {label: s.to_dict() for label, s in self.schedules.items()},
            "platforms": {label: p.to_dict() for label, p in self.platforms.items()},
        }
        if self.policies is not None:
            payload["policies"] = {label: p.to_dict()
                                   for label, p in self.policies.items()}
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        policies = None
        if "policies" in payload:
            from ..serve.policy import ServePolicy

            policies = {label: ServePolicy.from_dict(p)
                        for label, p in payload["policies"].items()}
        return cls(
            name=payload["name"],
            workloads={label: from_jsonable(w)
                       for label, w in payload["workloads"].items()},
            schedules={label: Schedule.from_dict(s)
                       for label, s in payload["schedules"].items()},
            platforms={label: Platform.from_dict(p)
                       for label, p in payload["platforms"].items()},
            policies=policies,
            seed=int(payload.get("seed", 0)),
            description=payload.get("description", ""),
        )


@dataclass
class ScenarioRow:
    """Metrics of one (workload, schedule, platform[, policy]) cell."""

    workload: str
    schedule: str
    metrics: Dict[str, float]
    cached: bool = False
    platform: str = ""
    policy: str = ""

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


@dataclass
class ScenarioResult:
    """All cells of one scenario run, in grid order, plus execution stats."""

    scenario: Scenario
    rows: List[ScenarioRow]
    stats: SweepStats = field(default_factory=SweepStats)

    def __getitem__(self, key: Tuple[str, ...]) -> Dict[str, float]:
        """Metrics by (workload, schedule) or (workload, schedule, platform).

        The two-label form matches any platform and is unambiguous for
        single-platform scenarios; with a swept platform axis it raises unless
        the platform label is given too.
        """
        workload, schedule = key[0], key[1]
        platform = key[2] if len(key) > 2 else None
        matches = [row for row in self.rows
                   if row.workload == workload and row.schedule == schedule
                   and (platform is None or row.platform == platform)]
        if len(matches) > 1:
            raise KeyError(f"{key}: ambiguous across platforms "
                           f"{[row.platform for row in matches]}; "
                           f"use (workload, schedule, platform)")
        if not matches:
            raise KeyError(key)
        return matches[0].metrics

    def select(self, workload: Optional[str] = None, schedule: Optional[str] = None,
               platform: Optional[str] = None,
               policy: Optional[str] = None) -> List[ScenarioRow]:
        """The rows matching every given label, in grid order."""
        return [row for row in self.rows
                if (workload is None or row.workload == workload)
                and (schedule is None or row.schedule == schedule)
                and (platform is None or row.platform == platform)
                and (policy is None or row.policy == policy)]

    def for_policy(self, policy: str) -> Dict[Any, Dict[str, float]]:
        """(workload, schedule[, platform]) -> metrics, for one policy label."""
        multi = len(self.scenario.platforms) > 1
        return {((row.workload, row.schedule, row.platform) if multi
                 else (row.workload, row.schedule)): row.metrics
                for row in self.rows if row.policy == policy}

    def _cell_key(self, row: ScenarioRow, axis: str) -> Union[str, Tuple[str, str]]:
        label = getattr(row, axis)
        if len(self.scenario.platforms) == 1 or axis == "platform":
            return label
        return (label, row.platform)

    def for_workload(self, workload: str) -> Dict[Any, Dict[str, float]]:
        """schedule label (or (schedule, platform)) -> metrics, for one workload."""
        return {self._cell_key(row, "schedule"): row.metrics
                for row in self.rows if row.workload == workload}

    def for_schedule(self, schedule: str) -> Dict[Any, Dict[str, float]]:
        """workload label (or (workload, platform)) -> metrics, for one schedule."""
        return {self._cell_key(row, "workload"): row.metrics
                for row in self.rows if row.schedule == schedule}

    def for_platform(self, platform: str) -> Dict[Tuple[str, str], Dict[str, float]]:
        """(workload, schedule) -> metrics, for one platform."""
        return {(row.workload, row.schedule): row.metrics
                for row in self.rows if row.platform == platform}

    def to_rows(self) -> List[Dict[str, float]]:
        """Flat row dictionaries (axis labels + metrics) for tables."""
        if self.scenario.policies is None:
            return [{"workload": row.workload, "schedule": row.schedule,
                     "platform": row.platform, **row.metrics}
                    for row in self.rows]
        return [{"workload": row.workload, "schedule": row.schedule,
                 "platform": row.platform, "policy": row.policy, **row.metrics}
                for row in self.rows]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: scenario name -> factory(**overrides) -> Scenario
SCENARIOS: Dict[str, Callable[..., Scenario]] = {}


def register_scenario(name: str):
    """Decorator registering a scenario factory under ``name``.

    The factory takes only keyword arguments (scale/seed/batch overrides …)
    and returns a fresh :class:`Scenario`.
    """

    def wrap(factory: Callable[..., Scenario]):
        if name in SCENARIOS:
            raise ConfigError(f"scenario {name!r} is already registered")
        SCENARIOS[name] = factory
        return factory

    return wrap


def get_scenario(name: str, **overrides) -> Scenario:
    """Instantiate the registered scenario ``name`` (with factory overrides)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigError(f"unknown scenario {name!r}; "
                          f"registered: {scenario_names()}") from None
    return factory(**overrides)


def scenario_names() -> List[str]:
    """The registered scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario_descriptions() -> Dict[str, str]:
    """scenario name -> one-line description (from the factory docstring)."""
    described = {}
    for name in scenario_names():
        doc = (SCENARIOS[name].__doc__ or "").strip()
        described[name] = doc.splitlines()[0] if doc else ""
    return described


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run(scenario, *, jobs: Optional[int] = None,
        cache: Union[ResultCache, str, None] = None,
        runner: Optional[SweepRunner] = None, **overrides):
    """Execute a scenario, a registered scenario name, or an experiment spec.

    ``runner`` takes precedence when given; otherwise a runner is built from
    ``jobs``/``cache`` (defaulting to the shared serial, uncached runner).
    Results come back in grid order; with a cache, a warm rerun satisfies
    every cell without re-simulating (``result.stats.simulated == 0``).

    An :class:`~repro.api.experiment.ExperimentSpec` executes through
    :func:`~repro.api.experiment.run_experiment` and returns its
    :class:`~repro.api.experiment.ExperimentResult`; everything else returns a
    :class:`ScenarioResult`.
    """
    from .experiment import ExperimentSpec, run_experiment

    if isinstance(scenario, ExperimentSpec):
        if overrides:
            raise ConfigError("factory overrides only apply to registered names")
        return run_experiment(scenario, jobs=jobs, cache=cache, runner=runner)
    if isinstance(scenario, str):
        scenario = get_scenario(scenario, **overrides)
    elif overrides:
        raise ConfigError("factory overrides only apply to registered scenario names")
    runner = build_runner(jobs=jobs, cache=cache, runner=runner)
    results = runner.run(scenario.sweep_spec())
    rows = [ScenarioRow(workload=cell[0], schedule=cell[1], platform=cell[2],
                        policy=cell[3] if len(cell) > 3 else "",
                        metrics=result.metrics, cached=result.cached)
            for cell, result in zip(scenario.grid(), results)]
    return ScenarioResult(scenario=scenario, rows=rows, stats=runner.last_stats)
