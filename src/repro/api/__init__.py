"""repro.api — the unified experiment API: one facade for workloads,
schedules, platforms and simulation.

Every result in the paper is an instance of one pattern: *build a workload
graph under a schedule, simulate it on a hardware platform, collect
metrics*.  This package expresses that pattern once, in declarative layers:

1. **Workloads** (:mod:`repro.api.workload`) — adapters wrapping the graph
   builders in :mod:`repro.workloads` behind one protocol: ``params()``
   (picklable constructor data), ``build(schedule, hardware)`` (the program +
   input streams) and ``run(schedule, hardware)`` (flat metrics).  Shipped
   adapters: :class:`MoEWorkload`, :class:`AttentionWorkload`,
   :class:`QKVWorkload`, :class:`DecoderWorkload` (end-to-end layers) and
   :class:`DenseFFNWorkload`.
2. **Schedules** (:class:`repro.schedules.Schedule`) — the unified schedule
   composes the tiling / time-multiplexing / parallelization descriptors into
   the actual configuration the builders consume, replacing the per-call-site
   knobs that used to be scattered across the codebase.
3. **Platforms** (:mod:`repro.platforms`) — a :class:`Platform` is a named,
   registered, JSON-round-trippable hardware configuration
   (:func:`get_platform` / :func:`register_platform` /
   :func:`platform_names`; presets ``"sda"``, ``"sda-hbm256"``,
   ``"sda-detailed"``, ``"sda-hbm-small"``); :func:`resolve_platform` is the
   single resolution
   path every subsystem uses instead of per-call-site hardware defaults.
4. **Scenarios** (:mod:`repro.api.scenario`) — a :class:`Scenario` is a named
   workloads × schedules × platforms grid plus a seed; :func:`run` executes
   it through the sweep subsystem (parallel workers, on-disk result caching
   with platform identity in every cache key), and a registry
   (:func:`register_scenario` / :func:`get_scenario`) makes scenarios
   addressable by name.
5. **Experiments** (:mod:`repro.api.experiment`) — an :class:`ExperimentSpec`
   wraps a scenario grid, a parametric :class:`~repro.sweep.SweepSpec` (the
   serving load studies) or a native figure entry point in one serializable
   record; :func:`experiment` resolves figures, scenarios, bench cases and
   ``"serve-latency"`` by name and :func:`run_experiment` executes any of
   them uniformly.

A complete three-axis experiment in ten lines::

    from repro.api import MoEWorkload, Scenario, Schedule, platform_grid, run
    from repro.data.expert_routing import generate_routing_trace, representative_iteration
    from repro.workloads.configs import QWEN3_30B_A3B, scaled_config

    model = scaled_config(QWEN3_30B_A3B, scale=32)
    routing = representative_iteration(generate_routing_trace(model, batch_size=16, seed=0))
    result = run(Scenario(
        name="my-tiling-study",
        workloads=MoEWorkload(model=model, batch=16, assignments=routing),
        schedules={"tile=8": Schedule.static("tile=8", 8), "dynamic": Schedule.dynamic()},
        platforms=platform_grid(onchip_bandwidths=(64.0, 256.0))))
    print({(row.schedule, row.platform): row["cycles"] for row in result.rows})

The figure modules in :mod:`repro.experiments` are thin wrappers over this
API, so anything they reproduce you can re-mix by declaring a new scenario.
"""

from ..platforms import (PLATFORMS, Platform, default_platform, get_platform,
                         platform_grid, platform_names, register_platform,
                         resolve_platform)
from ..schedules import (ParallelizationSchedule, Schedule, TilingSchedule,
                         TimeMultiplexSchedule, dynamic_tiling, parallelization,
                         static_tiling, time_multiplexing)
from ..sweep import ResultCache, SweepRunner, SweepSpec
from .experiment import (ExperimentResult, ExperimentSpec, experiment,
                         experiment_descriptions, experiment_names,
                         register_experiment, run_experiment)
from .scenario import (SCENARIOS, Scenario, ScenarioResult, ScenarioRow, get_scenario,
                       register_scenario, run, scenario_descriptions, scenario_names)
from .workload import (WORKLOAD_KINDS, AttentionWorkload, BuiltWorkload,
                       DecoderWorkload, DenseFFNWorkload, MoEWorkload, QKVWorkload,
                       Workload, WorkloadBase, register_workload, workload_from_params)
from . import library  # registers the built-in scenarios  # noqa: F401
from ..serve import library as _serve_library  # registers serve-* scenarios  # noqa: F401
from ..serve.policy import (ServePolicy, get_serve_policy, policy_grid,
                            resolve_serve_policy, serve_policy_names)

#: facade entry points that already warned about a deprecated kwarg spelling
#: (one warning per call site name, not one per call)
_DEPRECATION_WARNED = set()


def _resolve_serve_args(caller: str, platform, hardware, policy,
                        serve_kwargs):
    """Shared kwarg normalization for :func:`serve` / :func:`serve_fleet`.

    One path resolves the unified facade arguments for both entry points:
    ``platform`` is the hardware spelling going forward; ``hardware`` is the
    pre-platform spelling and keeps working through a warn-once
    :class:`DeprecationWarning` shim (passing both is a
    :class:`~repro.core.errors.ConfigError`).  ``policy`` accepts anything
    :func:`repro.serve.resolve_serve_policy` does — ``None`` (the default
    policy), a :class:`~repro.serve.ServePolicy`, a preset name or a spec
    mapping.  Returns ``(platform, serve_config_kwargs)`` with the resolved
    policy folded into ``serve_kwargs``.
    """
    import warnings

    from ..core.errors import ConfigError

    if hardware is not None:
        if platform is not None:
            raise ConfigError(f"{caller}: pass either platform= or the "
                              f"legacy hardware=, not both")
        if caller not in _DEPRECATION_WARNED:
            _DEPRECATION_WARNED.add(caller)
            warnings.warn(
                f"{caller}(hardware=...) is deprecated; pass platform= "
                f"(a Platform, a registered platform name, or a raw "
                f"HardwareConfig — resolve_platform handles all three)",
                DeprecationWarning, stacklevel=3)
        platform = hardware
    serve_kwargs = dict(serve_kwargs)
    serve_kwargs["policy"] = resolve_serve_policy(policy)
    return platform, serve_kwargs


def serve(model, trace, schedule=None, *, batch_cap: int = 8, num_layers: int = 2,
          platform=None, hardware=None, policy=None, kv_tile_rows: int = 64,
          kv_mode: str = "paged", eviction_policy: str = "evict-lru",
          moe_compute_bw: int = 8192, attention_compute_bw: int = 256,
          seed: int = 0, report_mode: str = "full",
          window_cycles: float = 100_000.0, sketch_accuracy: float = 0.01,
          engine: str = "exact", cost_model=None,
          calibration_budget: int = 64):
    """Run one open-loop serving simulation and return its full report.

    ``trace`` is a :class:`repro.serve.ArrivalTrace` (build one with
    :func:`repro.serve.poisson_trace` / :func:`repro.serve.burst_trace` or
    load a recorded JSON trace with :func:`repro.serve.load_trace`);
    ``schedule`` defaults to the paper's dynamic schedule and ``platform`` to
    the default ``"sda"`` platform (``hardware`` is the deprecated spelling of
    the same argument).  ``policy`` selects the scheduling discipline — a
    preset name (see :func:`repro.serve.serve_policy_names`), a
    :class:`repro.serve.ServePolicy` spec or a spec dict; the default
    reproduces the historical scheduler exactly.  Returns the
    :class:`repro.serve.ServingReport` with per-request TTFT/TPOT/e2e records,
    percentiles, per-priority-class breakdowns, goodput and the queue-depth
    timeline.  On a platform with a
    finite ``hbm_capacity_bytes``, ``kv_mode`` (``"paged"`` or
    ``"contiguous"``) selects the KV allocator and ``eviction_policy`` the
    preemption victim order (see :func:`repro.serve.eviction_policy_names`);
    both are inert — and the report bit-identical — when capacity is
    unbounded.  ``report_mode="streaming"`` reports through O(1)-memory
    percentile sketches and windowed timelines (`window_cycles` wide, error
    bound ``sketch_accuracy``) instead of per-request records — the mode for
    very large traces (see :mod:`repro.serve.streaming`).
    ``engine="surrogate"`` replaces per-step simulation with a cost-model
    prediction (``cost_model`` names a registered kind, carries a payload
    dict or a fitted :class:`repro.costmodel.CostModel`; the default
    adaptively calibrates from the first ``calibration_budget`` distinct
    step signatures — see :mod:`repro.costmodel`).  For grids (rates ×
    schedules × caps × policies), prefer the
    registered ``serve-*`` scenarios or :func:`repro.serve.latency_load_spec`
    / :func:`repro.serve.policy_shootout_spec`.
    """
    from ..serve.scheduler import ServeConfig, simulate_serving

    platform, config_kwargs = _resolve_serve_args(
        "serve", platform, hardware, policy,
        dict(model=model, batch_cap=batch_cap, num_layers=num_layers,
             kv_tile_rows=kv_tile_rows, kv_mode=kv_mode,
             eviction_policy=eviction_policy, moe_compute_bw=moe_compute_bw,
             attention_compute_bw=attention_compute_bw, seed=seed,
             report_mode=report_mode, window_cycles=window_cycles,
             sketch_accuracy=sketch_accuracy, engine=engine,
             cost_model=cost_model, calibration_budget=calibration_budget))
    return simulate_serving(ServeConfig(**config_kwargs), trace, schedule,
                            hardware=platform)


def serve_fleet(model, trace, schedule=None, *, num_replicas: int = 2,
                routing: str = "round-robin", warmup_cycles: float = 0.0,
                autoscaler=None, batch_cap: int = 8, num_layers: int = 2,
                platform=None, hardware=None, policy=None,
                kv_tile_rows: int = 64, kv_mode: str = "paged",
                eviction_policy: str = "evict-lru",
                moe_compute_bw: int = 8192, attention_compute_bw: int = 256,
                seed: int = 0, report_mode: str = "full",
                window_cycles: float = 100_000.0,
                sketch_accuracy: float = 0.01, engine: str = "exact",
                cost_model=None, calibration_budget: int = 64):
    """Serve one trace on a fleet of replicas and return its full report.

    The fleet runs ``num_replicas`` copies of the continuous-batching engine
    behind a dispatcher using the named ``routing`` policy (``"round-robin"``,
    ``"least-loaded"``, ``"least-kv"`` or ``"most-free-kv"``; see
    :func:`repro.serve.routing_policy_names`).  ``warmup_cycles`` charges each
    replica a one-time cold-start cost before its first step; pass an
    :class:`repro.serve.AutoscalerConfig` as ``autoscaler`` to scale the fleet
    reactively with queue depth.  ``platform`` / ``hardware`` / ``policy`` /
    ``kv_mode`` / ``eviction_policy`` / ``report_mode`` / ``engine`` /
    ``cost_model`` configure every
    replica's engine exactly
    as in :func:`serve` (same deprecation shim, same default policy; in
    streaming mode each replica keeps sketches and the fleet report merges
    them).  Returns the :class:`repro.serve.FleetReport`
    with per-replica serving reports, fleet-level latency percentiles,
    utilization/imbalance and the scaling-event timeline.  A fleet of one
    replica with zero warm-up reproduces :func:`serve` bit-for-bit.
    """
    from ..serve.fleet import FleetConfig, simulate_fleet
    from ..serve.scheduler import ServeConfig

    platform, config_kwargs = _resolve_serve_args(
        "serve_fleet", platform, hardware, policy,
        dict(model=model, batch_cap=batch_cap, num_layers=num_layers,
             kv_tile_rows=kv_tile_rows, kv_mode=kv_mode,
             eviction_policy=eviction_policy, moe_compute_bw=moe_compute_bw,
             attention_compute_bw=attention_compute_bw, seed=seed,
             report_mode=report_mode, window_cycles=window_cycles,
             sketch_accuracy=sketch_accuracy, engine=engine,
             cost_model=cost_model, calibration_budget=calibration_budget))
    config = FleetConfig(serve=ServeConfig(**config_kwargs),
                         num_replicas=num_replicas,
                         routing=routing, warmup_cycles=warmup_cycles,
                         autoscaler=autoscaler)
    return simulate_fleet(config, trace, schedule, hardware=platform)


__all__ = [
    # workloads
    "Workload",
    "WorkloadBase",
    "BuiltWorkload",
    "MoEWorkload",
    "AttentionWorkload",
    "QKVWorkload",
    "DecoderWorkload",
    "DenseFFNWorkload",
    "WORKLOAD_KINDS",
    "register_workload",
    "workload_from_params",
    # schedules
    "Schedule",
    "TilingSchedule",
    "TimeMultiplexSchedule",
    "ParallelizationSchedule",
    "static_tiling",
    "dynamic_tiling",
    "time_multiplexing",
    "parallelization",
    # platforms
    "Platform",
    "PLATFORMS",
    "register_platform",
    "get_platform",
    "platform_names",
    "platform_grid",
    "default_platform",
    "resolve_platform",
    # scenarios
    "Scenario",
    "ScenarioResult",
    "ScenarioRow",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_descriptions",
    # experiments
    "ExperimentSpec",
    "ExperimentResult",
    "experiment",
    "experiment_names",
    "experiment_descriptions",
    "register_experiment",
    "run_experiment",
    "run",
    "serve",
    "serve_fleet",
    # scheduling policies
    "ServePolicy",
    "get_serve_policy",
    "serve_policy_names",
    "resolve_serve_policy",
    "policy_grid",
    # execution
    "ResultCache",
    "SweepRunner",
    "SweepSpec",
]
