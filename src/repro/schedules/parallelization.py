"""Parallelization schedules for attention (Section 5.4).

Static coarse-grained parallelization fixes the number of requests per
parallel region, static interleaved parallelization distributes requests
round-robin, and dynamic parallelization dispatches each request to whichever
region becomes available (Figure 16).  Only the dynamic schedule requires
STeP's dynamic routing and merging operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import ConfigError

_STRATEGIES = ("coarse", "interleave", "dynamic")


@dataclass(frozen=True)
class ParallelizationSchedule:
    """Work-distribution strategy across spatial parallel regions."""

    strategy: str
    num_regions: int = 4
    coarse_chunk: int = 16

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ConfigError(f"unknown strategy {self.strategy!r}; expected {_STRATEGIES}")
        if self.num_regions <= 0:
            raise ConfigError("num_regions must be positive")

    @property
    def is_dynamic(self) -> bool:
        return self.strategy == "dynamic"

    def static_assignment(self, batch: int) -> List[int]:
        """Per-request region assignment for the static strategies."""
        if self.is_dynamic:
            raise ConfigError("dynamic parallelization has no static assignment")
        if self.strategy == "coarse":
            return [min(i // self.coarse_chunk, self.num_regions - 1) for i in range(batch)]
        return [i % self.num_regions for i in range(batch)]

    def label(self) -> str:
        return {"coarse": "Static (Coarse)", "interleave": "Static (Interleave)",
                "dynamic": "Dynamic"}[self.strategy]


def parallelization(strategy: str, num_regions: int = 4,
                    coarse_chunk: int = 16) -> ParallelizationSchedule:
    return ParallelizationSchedule(strategy=strategy, num_regions=num_regions,
                                   coarse_chunk=coarse_chunk)


def region_loads(assignment: Sequence[int], work: Sequence[float],
                 num_regions: int) -> List[float]:
    """Total work per region under a static assignment (load-imbalance analysis)."""
    loads = [0.0] * num_regions
    for region, amount in zip(assignment, work):
        loads[region] += float(amount)
    return loads
