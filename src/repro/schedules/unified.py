"""The unified :class:`Schedule` — one object for every scheduling decision.

Historically each call site carried its own scheduling knobs: the MoE builders
took ``tile_rows`` / ``num_regions``, the attention builders took a
``strategy`` string, and the end-to-end model bundled all three into an ad-hoc
``ScheduleChoice`` record, while the descriptors in this package
(:class:`~repro.schedules.tiling.TilingSchedule`,
:class:`~repro.schedules.timemux.TimeMultiplexSchedule`,
:class:`~repro.schedules.parallelization.ParallelizationSchedule`) were inert
labels.  :class:`Schedule` composes those three descriptors into the *actual*
configuration the workload builders consume (see :mod:`repro.api.workload`):

* ``tiling`` drives the MoE batch-dimension tiling (Section 5.2),
* ``timemux`` drives configuration time-multiplexing of the experts
  (Section 5.3); ``None`` (or a fully spatial mapping) keeps one region per
  expert,
* ``parallelization`` drives the attention work distribution (Section 5.4)
  and the parallel-region geometry shared by the dense layers.

A schedule is a frozen, picklable value object, so it can be swept, cached
(content-hashed by :mod:`repro.sweep.cache`) and serialized symmetrically via
:meth:`Schedule.to_dict` / :meth:`Schedule.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.errors import ConfigError
from .parallelization import ParallelizationSchedule, parallelization
from .tiling import TilingSchedule, dynamic_tiling, static_tiling
from .timemux import TimeMultiplexSchedule, time_multiplexing


@dataclass(frozen=True)
class Schedule:
    """A complete scheduling decision for one workload design point."""

    name: str
    tiling: TilingSchedule = TilingSchedule("dynamic")
    timemux: Optional[TimeMultiplexSchedule] = None
    parallelization: ParallelizationSchedule = ParallelizationSchedule("interleave")

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a schedule needs a non-empty name")
        if not isinstance(self.tiling, TilingSchedule):
            raise ConfigError(f"tiling must be a TilingSchedule, got {self.tiling!r}")
        if self.timemux is not None and not isinstance(self.timemux, TimeMultiplexSchedule):
            raise ConfigError(f"timemux must be a TimeMultiplexSchedule or None, "
                              f"got {self.timemux!r}")
        if not isinstance(self.parallelization, ParallelizationSchedule):
            raise ConfigError(f"parallelization must be a ParallelizationSchedule, "
                              f"got {self.parallelization!r}")

    # -- the knobs the workload builders consume ------------------------------------
    @property
    def moe_tile_rows(self) -> Optional[int]:
        """Static MoE batch-tile size, or ``None`` for dynamic tiling."""
        return self.tiling.tile_rows

    @property
    def moe_num_regions(self) -> Optional[int]:
        """Configured regions shared by the experts; ``None`` = fully spatial."""
        if self.timemux is None or self.timemux.is_fully_spatial:
            return None
        return self.timemux.num_regions

    @property
    def attention_strategy(self) -> str:
        """Attention work-distribution strategy: coarse / interleave / dynamic."""
        return self.parallelization.strategy

    @property
    def is_fully_dynamic(self) -> bool:
        """Dynamic tiling *and* dynamic parallelization (the paper's schedule)."""
        return self.tiling.is_dynamic and self.parallelization.is_dynamic

    def label(self) -> str:
        parts = [self.tiling.label(), self.parallelization.label()]
        if self.timemux is not None and not self.timemux.is_fully_spatial:
            parts.append(self.timemux.label())
        return f"{self.name}({', '.join(parts)})"

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON description, symmetric with :meth:`from_dict`."""
        return {
            "name": self.name,
            "tiling": {"kind": self.tiling.kind, "tile_rows": self.tiling.tile_rows},
            "timemux": None if self.timemux is None else
                {"num_experts": self.timemux.num_experts,
                 "num_regions": self.timemux.num_regions},
            "parallelization": {"strategy": self.parallelization.strategy,
                                "num_regions": self.parallelization.num_regions,
                                "coarse_chunk": self.parallelization.coarse_chunk},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Schedule":
        tiling = payload.get("tiling") or {}
        timemux = payload.get("timemux")
        par = payload.get("parallelization") or {}
        return cls(
            name=payload["name"],
            tiling=TilingSchedule(tiling.get("kind", "dynamic"),
                                  tile_rows=tiling.get("tile_rows")),
            timemux=None if timemux is None else TimeMultiplexSchedule(**timemux),
            parallelization=ParallelizationSchedule(
                strategy=par.get("strategy", "interleave"),
                num_regions=par.get("num_regions", 4),
                coarse_chunk=par.get("coarse_chunk", 16)),
        )

    # -- common shapes ---------------------------------------------------------------
    @classmethod
    def static(cls, name: str, tile_rows: int, attention: str = "interleave",
               num_regions: int = 4, coarse_chunk: int = 16) -> "Schedule":
        """A static baseline: fixed MoE tiles, static attention distribution."""
        return cls(name=name, tiling=static_tiling(tile_rows),
                   parallelization=parallelization(attention, num_regions=num_regions,
                                                   coarse_chunk=coarse_chunk))

    @classmethod
    def dynamic(cls, name: str = "dynamic", num_experts: Optional[int] = None,
                timemux_regions: Optional[int] = None,
                num_regions: int = 4) -> "Schedule":
        """The paper's dynamic schedule, optionally with time-multiplexed experts."""
        timemux = None
        if timemux_regions is not None:
            if num_experts is None:
                raise ConfigError("timemux_regions requires num_experts")
            timemux = time_multiplexing(num_experts, timemux_regions)
        return cls(name=name, tiling=dynamic_tiling(), timemux=timemux,
                   parallelization=parallelization("dynamic", num_regions=num_regions))
