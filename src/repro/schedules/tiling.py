"""Tiling schedules (Section 5.2).

Static tiling pads each expert's tokens into fixed-size tiles (the
Revet-expressible baseline); dynamic tiling sizes each expert's tile to the
tokens it actually received, which STeP expresses by replacing the Reshape in
the packing region with a Promote so the following Accum accumulates a
dynamically shaped tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigError


@dataclass(frozen=True)
class TilingSchedule:
    """A batch-dimension tiling decision for the MoE experts."""

    kind: str                      # "static" or "dynamic"
    tile_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("static", "dynamic"):
            raise ConfigError(f"unknown tiling kind {self.kind!r}")
        if self.kind == "static" and (self.tile_rows is None or self.tile_rows <= 0):
            raise ConfigError("static tiling requires a positive tile_rows")
        if self.kind == "dynamic" and self.tile_rows is not None:
            raise ConfigError("dynamic tiling does not take a tile size")

    @property
    def is_dynamic(self) -> bool:
        return self.kind == "dynamic"

    def label(self) -> str:
        return "dynamic" if self.is_dynamic else f"tile={self.tile_rows}"

    def expressible_in_revet(self) -> bool:
        """Revet's dataflow-thread model cannot express dynamically sized tiles."""
        return not self.is_dynamic


def static_tiling(tile_rows: int) -> TilingSchedule:
    return TilingSchedule("static", tile_rows=tile_rows)


def dynamic_tiling() -> TilingSchedule:
    return TilingSchedule("dynamic")
