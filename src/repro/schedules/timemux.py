"""Configuration time-multiplexing schedules (Section 5.3).

Instead of configuring one spatial region per branch (expert), a single
configured region is time-multiplexed across the branches that share the same
computation structure: EagerMerge forwards whichever branch's inputs are ready
and RandomOffChipLoad fetches that branch's weights on demand (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigError


@dataclass(frozen=True)
class TimeMultiplexSchedule:
    """How many configured regions serve how many experts."""

    num_experts: int
    num_regions: int

    def __post_init__(self) -> None:
        if self.num_regions <= 0 or self.num_experts <= 0:
            raise ConfigError("expert and region counts must be positive")
        if self.num_experts % self.num_regions != 0:
            raise ConfigError("num_regions must divide num_experts")

    @property
    def experts_per_region(self) -> int:
        return self.num_experts // self.num_regions

    @property
    def is_fully_spatial(self) -> bool:
        """One region per expert: no time-multiplexing (the baseline mapping)."""
        return self.num_regions == self.num_experts

    @property
    def compute_saving(self) -> float:
        """Factor by which allocated compute shrinks versus the spatial mapping."""
        return self.num_experts / self.num_regions

    def label(self) -> str:
        return f"{self.num_regions} regions ({self.experts_per_region}/region)"


def time_multiplexing(num_experts: int, num_regions: int) -> TimeMultiplexSchedule:
    return TimeMultiplexSchedule(num_experts=num_experts, num_regions=num_regions)
