"""Schedule descriptors for the optimizations of Section 5 (Table 2).

Each optimization is enabled by specific STeP features:

================================  =============================================
Optimization                      Key STeP features (Table 2)
================================  =============================================
Dynamic tiling                    dynamic tile shapes, explicit memory
                                  hierarchy, Accum of dynamically sized tiles
Configuration time-multiplexing   explicit memory hierarchy, dynamic routing
                                  and merging operators
Dynamic parallelization           dynamic routing and merging operators
================================  =============================================

The descriptors here are thin, serializable records that the experiments use
to label design points; the actual graph construction lives in
:mod:`repro.workloads`.
"""

from .tiling import TilingSchedule, dynamic_tiling, static_tiling
from .timemux import TimeMultiplexSchedule, time_multiplexing
from .parallelization import ParallelizationSchedule, parallelization

__all__ = [
    "TilingSchedule",
    "static_tiling",
    "dynamic_tiling",
    "TimeMultiplexSchedule",
    "time_multiplexing",
    "ParallelizationSchedule",
    "parallelization",
]
