"""Schedule descriptors for the optimizations of Section 5 (Table 2).

Each optimization is enabled by specific STeP features:

================================  =============================================
Optimization                      Key STeP features (Table 2)
================================  =============================================
Dynamic tiling                    dynamic tile shapes, explicit memory
                                  hierarchy, Accum of dynamically sized tiles
Configuration time-multiplexing   explicit memory hierarchy, dynamic routing
                                  and merging operators
Dynamic parallelization           dynamic routing and merging operators
================================  =============================================

The per-optimization descriptors are thin, serializable records; the unified
:class:`Schedule` composes one of each into the complete scheduling decision
the workload builders consume (see :mod:`repro.api`).  The actual graph
construction lives in :mod:`repro.workloads`.
"""

from .tiling import TilingSchedule, dynamic_tiling, static_tiling
from .timemux import TimeMultiplexSchedule, time_multiplexing
from .parallelization import ParallelizationSchedule, parallelization
from .unified import Schedule

__all__ = [
    "Schedule",
    "TilingSchedule",
    "static_tiling",
    "dynamic_tiling",
    "TimeMultiplexSchedule",
    "time_multiplexing",
    "ParallelizationSchedule",
    "parallelization",
]
