"""Symbolic on-chip memory-requirement analysis (Section 4.2).

Per-operator expressions (all other operators stream fully and need no
materialization, so they contribute zero):

* off-chip memory operators: ``|output dtype| * 2`` (double-buffered staging),
* Bufferize: ``|input dtype| + ||buffer|| * |input dtype| * 2``,
* Accum, Scan, Expand: ``|output dtype|``,
* Map (matmul) and Accum (matmul):
  ``16 * in_tile_col + |weight tile| + |output tile|`` where the output-tile
  term only applies to Accum (mirroring the inner-product matmul mapping onto
  16x16 hardware tiles).

The program requirement is the sum over operators.  Dynamic dimensions leave
symbols in the result; binding them (from trace statistics or simulator
observations) yields concrete numbers — exactly the frontend/simulator split
described in "Handling data dependencies".
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..core import symbolic as sym
from ..core.dtypes import BufferType, TileType, TupleType
from ..core.graph import OperatorBase, Program
from ..core.symbolic import Expr
from ..ops.functions import Matmul, MatmulAccum

_OFFCHIP_KINDS = {
    "LinearOffChipLoad", "LinearOffChipLoadRef", "RandomOffChipLoad",
    "LinearOffChipStore", "RandomOffChipStore",
}


def _matmul_weight_and_input(op: OperatorBase):
    """(input tile type, weight tile type) for a matmul Map/Accum, else ``None``."""
    fn = getattr(op, "fn", None)
    if isinstance(fn, Matmul) and op.kind == "Map" and len(op.inputs) >= 2:
        a, b = op.inputs[0].dtype, op.inputs[-1].dtype
        if isinstance(a, TileType) and isinstance(b, TileType):
            return a, b
    if isinstance(fn, MatmulAccum) and op.kind == "Accum":
        dtype = op.inputs[0].dtype
        if isinstance(dtype, TupleType) and len(dtype.elements) == 2:
            a, b = dtype.elements
            if isinstance(a, TileType) and isinstance(b, TileType):
                return a, b
    return None


def onchip_memory_expr(op: OperatorBase, compute_tile: int = 16) -> Expr:
    """Symbolic on-chip memory requirement (bytes) of one operator."""
    if op.kind in _OFFCHIP_KINDS:
        if op.outputs:
            return op.outputs[0].dtype.nbytes_expr() * 2
        return op.inputs[0].dtype.nbytes_expr() * 2

    if op.kind == "Bufferize":
        in_dtype = op.inputs[0].dtype
        buffer_type = op.outputs[0].dtype
        assert isinstance(buffer_type, BufferType)
        return in_dtype.nbytes_expr() + buffer_type.cardinality() * in_dtype.nbytes_expr() * 2

    if op.kind in ("Map", "Accum"):
        matmul = _matmul_weight_and_input(op)
        if matmul is not None:
            in_tile, weight_tile = matmul
            total = (sym.Const(compute_tile) * in_tile.cols.size * in_tile.dtype.nbytes
                     + weight_tile.nbytes_expr())
            if op.kind == "Accum":
                total = total + op.outputs[0].dtype.nbytes_expr()
            return total

    if op.kind in ("Accum", "Scan", "Expand"):
        return op.outputs[0].dtype.nbytes_expr()

    return sym.Const(0)


def program_onchip_memory(program: Program, bindings: Optional[Mapping] = None,
                          compute_tile: int = 16) -> Union[Expr, int]:
    """Total symbolic on-chip memory requirement of a program."""
    total = sym.ssum(onchip_memory_expr(op, compute_tile=compute_tile)
                     for op in program.operators)
    return sym.maybe_evaluate(total, bindings or {})
