"""Symbolic analysis of STeP programs (paper Section 4.2) and evaluation metrics.

* :mod:`repro.analysis.traffic` — off-chip traffic expressions per operator,
* :mod:`repro.analysis.memory` — on-chip memory-requirement expressions,
* :mod:`repro.analysis.intensity` — FLOP counts and operational intensity,
* :mod:`repro.analysis.roofline` — Roofline / effective-bandwidth model (Figure 1),
* :mod:`repro.analysis.pareto` — Pareto frontiers and the Pareto Improvement
  Distance metric (Section 5.2, Appendix B.4).
"""

from .traffic import offchip_traffic_expr, program_offchip_traffic
from .memory import onchip_memory_expr, program_onchip_memory
from .intensity import operational_intensity, program_flops_estimate
from .pareto import ParetoPoint, pareto_front, pareto_improvement_distance
from .roofline import RooflineModel, effective_bandwidth

__all__ = [
    "offchip_traffic_expr",
    "program_offchip_traffic",
    "onchip_memory_expr",
    "program_onchip_memory",
    "operational_intensity",
    "program_flops_estimate",
    "ParetoPoint",
    "pareto_front",
    "pareto_improvement_distance",
    "RooflineModel",
    "effective_bandwidth",
]
