"""FLOP estimates and operational intensity.

Operational intensity (FLOPs per off-chip byte) combines the off-chip traffic
expressions of :mod:`repro.analysis.traffic` with per-operator FLOP estimates.
Because the off-chip traffic analysis is a lower bound when operators spill,
the derived operational intensity is an upper bound (Section 4.2).
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..core import symbolic as sym
from ..core.dtypes import TileType, TupleType
from ..core.graph import OperatorBase, Program
from ..core.symbolic import Expr
from ..ops.functions import Matmul, MatmulAccum
from .traffic import program_offchip_traffic


def operator_flops_expr(op: OperatorBase) -> Expr:
    """Symbolic FLOP estimate for one operator (matmuls dominate; others ~ element counts)."""
    fn = getattr(op, "fn", None)
    if fn is None:
        return sym.Const(0)

    out = op.outputs[0] if op.outputs else None
    if isinstance(fn, (Matmul, MatmulAccum)):
        # 2 * M * K * N per output tile
        if op.kind == "Map" and len(op.inputs) >= 2:
            a, b = op.inputs[0].dtype, op.inputs[-1].dtype
        elif isinstance(op.inputs[0].dtype, TupleType):
            a, b = op.inputs[0].dtype.elements[:2]
        else:
            return sym.Const(0)
        if not (isinstance(a, TileType) and isinstance(b, TileType)):
            return sym.Const(0)
        per_element = sym.Const(2) * a.rows.size * a.cols.size * b.cols.size
        count = op.inputs[0].shape.cardinality()
        return per_element * count

    # element-wise style functions: ~ a handful of FLOPs per tile element
    if out is not None and isinstance(out.dtype, TileType):
        per_element = out.dtype.rows.size * out.dtype.cols.size
        return per_element * op.inputs[0].shape.cardinality()
    return sym.Const(0)


def program_flops_estimate(program: Program,
                           bindings: Optional[Mapping] = None) -> Union[Expr, int]:
    """Total symbolic FLOP estimate of a program."""
    total = sym.ssum(operator_flops_expr(op) for op in program.operators)
    return sym.maybe_evaluate(total, bindings or {})


def operational_intensity(program: Program, bindings: Optional[Mapping] = None,
                          flops: Optional[float] = None,
                          traffic_bytes: Optional[float] = None) -> float:
    """FLOPs per off-chip byte.

    Either pass measured ``flops``/``traffic_bytes`` (e.g. from a simulation
    report) or let both be derived symbolically and evaluated with ``bindings``.
    """
    if flops is None:
        flops = float(sym.evaluate(program_flops_estimate(program, bindings)))
    if traffic_bytes is None:
        traffic_bytes = float(sym.evaluate(program_offchip_traffic(program, bindings)))
    if traffic_bytes == 0:
        return float("inf") if flops > 0 else 0.0
    return flops / traffic_bytes
