"""Symbolic off-chip traffic analysis (Section 4.2).

Off-chip traffic only occurs in the off-chip memory operators, so the traffic
expression of every other operator is zero and the expression for an off-chip
operator is ``||output stream|| * |output dtype|`` (for loads) or
``||input stream|| * |input dtype|`` (for stores).  Summing over the program
gives total off-chip traffic — exact if nothing else spills, otherwise a lower
bound (and hence an upper bound on operational intensity).
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..core import symbolic as sym
from ..core.graph import OperatorBase, Program
from ..core.symbolic import Expr

#: operator kinds that read from off-chip memory
_LOAD_KINDS = {"LinearOffChipLoad", "LinearOffChipLoadRef", "RandomOffChipLoad"}
#: operator kinds that write to off-chip memory
_STORE_KINDS = {"LinearOffChipStore", "RandomOffChipStore"}


def offchip_traffic_expr(op: OperatorBase) -> Expr:
    """Symbolic off-chip traffic (bytes) contributed by one operator."""
    if op.kind in _LOAD_KINDS:
        handle = op.outputs[0]
        return handle.shape.cardinality() * handle.dtype.nbytes_expr()
    if op.kind == "LinearOffChipStore":
        handle = op.inputs[0]
        return handle.shape.cardinality() * handle.dtype.nbytes_expr()
    if op.kind == "RandomOffChipStore":
        # traffic follows the write-data stream (second input)
        handle = op.inputs[1]
        return handle.shape.cardinality() * handle.dtype.nbytes_expr()
    return sym.Const(0)


def program_offchip_traffic(program: Program,
                            bindings: Optional[Mapping] = None) -> Union[Expr, int]:
    """Total symbolic off-chip traffic of a program.

    ``bindings`` substitutes dynamic-dimension symbols with concrete values
    (e.g. observed per-expert token counts); when every symbol is bound the
    result is a plain integer.
    """
    total = sym.ssum(offchip_traffic_expr(op) for op in program.operators)
    return sym.maybe_evaluate(total, bindings or {})
