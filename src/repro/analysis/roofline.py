"""Roofline modelling and effective bandwidth (Figure 1, Section 4.3).

Figure 1 compares the *effective bandwidth* of GPUs and the SN40L SDA on
Llama-3.1 token generation: effective bandwidth is computed with Roofline
modelling from the fraction of peak throughput each platform achieves on the
(heavily memory-bound) decode phase.  This module reproduces that calculation
from the model configurations and the utilization fractions reported by prior
work, and provides the general Roofline helper used elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..workloads.configs import LLAMA_3_1_70B, LLAMA_3_1_8B, ModelConfig


@dataclass(frozen=True)
class RooflineModel:
    """A platform Roofline: peak compute (FLOP/s) and peak memory bandwidth (B/s)."""

    name: str
    peak_compute: float
    peak_bandwidth: float

    def attainable(self, operational_intensity: float) -> float:
        """Attainable FLOP/s at the given operational intensity (FLOPs/byte)."""
        if operational_intensity < 0:
            raise ValueError("operational intensity must be non-negative")
        return min(self.peak_compute, self.peak_bandwidth * operational_intensity)

    def is_memory_bound(self, operational_intensity: float) -> bool:
        return self.peak_bandwidth * operational_intensity < self.peak_compute

    def ridge_point(self) -> float:
        """Operational intensity at which the platform becomes compute bound."""
        if self.peak_bandwidth == 0:
            return float("inf")
        return self.peak_compute / self.peak_bandwidth


def effective_bandwidth(peak_bandwidth: float, fraction_of_peak_throughput: float) -> float:
    """Effective bandwidth of a memory-bound phase.

    For a memory-bound workload, achieved throughput scales linearly with the
    memory bandwidth actually sustained, so the effective bandwidth is the
    peak bandwidth scaled by the fraction of peak throughput achieved.
    """
    if not 0.0 <= fraction_of_peak_throughput <= 1.0:
        raise ValueError("fraction of peak throughput must be within [0, 1]")
    return peak_bandwidth * fraction_of_peak_throughput


def decode_bytes_per_token(model: ModelConfig, dtype_bytes: int = 2) -> float:
    """Bytes read from HBM per generated token (weights dominate decode)."""
    ffn = 3 * model.hidden_dim * model.moe_intermediate_dim
    attn = (model.hidden_dim * model.q_dim + 2 * model.hidden_dim * model.kv_dim
            + model.q_dim * model.hidden_dim)
    per_layer = ffn * (model.experts_per_token / max(1, 1)) + attn
    return per_layer * model.num_layers * dtype_bytes


def decode_flops_per_token(model: ModelConfig) -> float:
    """FLOPs per generated token (2 x parameters touched)."""
    return decode_bytes_per_token(model, dtype_bytes=1) * 2.0


#: Platform peak HBM bandwidths in TB/s (8xH100 aggregates eight GPUs;
#: SN40L-8 / SN40L-16 follow the paper's naming).
PLATFORM_PEAK_BANDWIDTH_TBS: Dict[str, float] = {
    "8xH100": 8 * 3.35,
    "SN40L-8": 8 * 1.64,
    "SN40L-16": 16 * 1.64,
}

#: Fraction of peak decode throughput reported by prior work ([19] in the
#: paper): GPUs sustain under half of peak HBM bandwidth on Llama-3.1 decode,
#: while the SDA sustains most of it thanks to kernel looping / fusion.
REPORTED_FRACTION_OF_PEAK: Dict[str, Dict[str, float]] = {
    "Llama-3.1-8B/batch1": {"8xH100": 0.28, "SN40L-8": 0.78, "SN40L-16": 0.72},
    "Llama-3.1-8B/batch8": {"8xH100": 0.42, "SN40L-8": 0.82, "SN40L-16": 0.76},
    "Llama-3.1-70B/batch1": {"8xH100": 0.35, "SN40L-8": 0.80, "SN40L-16": 0.75},
    "Llama-3.1-70B/batch8": {"8xH100": 0.46, "SN40L-8": 0.84, "SN40L-16": 0.78},
}


def figure1_rows(fractions: Optional[Dict[str, Dict[str, float]]] = None) -> List[dict]:
    """Effective-bandwidth rows reproducing Figure 1's bar chart."""
    fractions = fractions or REPORTED_FRACTION_OF_PEAK
    rows: List[dict] = []
    for workload, per_platform in fractions.items():
        model = LLAMA_3_1_8B if "8B" in workload else LLAMA_3_1_70B
        for platform, fraction in per_platform.items():
            peak = PLATFORM_PEAK_BANDWIDTH_TBS[platform]
            rows.append({
                "workload": workload,
                "model": model.name,
                "platform": platform,
                "peak_bandwidth_tbs": peak,
                "effective_bandwidth_tbs": effective_bandwidth(peak, fraction),
                "fraction_of_peak": fraction,
            })
    return rows
