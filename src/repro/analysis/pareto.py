"""Pareto frontiers and the Pareto Improvement Distance (PID) metric.

The paper quantifies how far dynamic tiling pushes past the static-tiling
frontier with the PID (Section 5.2, Appendix B.4, equation (2)):

    PID(p) = min over q in F_B of max( cycles(q)/cycles(p), mem(q)/mem(p) )

where ``F_B`` is the Pareto-optimal subset of the baseline points and both
objectives are minimized.  ``PID > 1`` means the point lies strictly beyond
the baseline frontier, ``= 1`` on it, ``< 1`` dominated by it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    """A design point with two minimized objectives (and an optional label)."""

    cycles: float
    memory: float
    label: str = ""
    extra: tuple = field(default_factory=tuple)

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good on both objectives and
        strictly better on at least one."""
        no_worse = self.cycles <= other.cycles and self.memory <= other.memory
        better = self.cycles < other.cycles or self.memory < other.memory
        return no_worse and better

    def as_tuple(self) -> Tuple[float, float]:
        return (self.cycles, self.memory)


def pareto_front(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """The Pareto-optimal (non-dominated) subset, sorted by cycles."""
    points = list(points)
    front: List[ParetoPoint] = []
    for candidate in points:
        if any(other.dominates(candidate) for other in points if other is not candidate):
            continue
        front.append(candidate)
    # de-duplicate identical objective pairs
    unique: Dict[Tuple[float, float], ParetoPoint] = {}
    for point in front:
        unique.setdefault(point.as_tuple(), point)
    return sorted(unique.values(), key=lambda p: (p.cycles, p.memory))


def pareto_improvement_distance(point: ParetoPoint,
                                baseline: Sequence[ParetoPoint]) -> float:
    """Equation (2): distance of ``point`` beyond the baseline Pareto frontier."""
    if point.cycles <= 0 or point.memory <= 0:
        raise ValueError("PID requires strictly positive objectives")
    frontier = pareto_front(baseline)
    if not frontier:
        raise ValueError("PID requires a non-empty baseline frontier")
    best = None
    for q in frontier:
        worst_ratio = max(q.cycles / point.cycles, q.memory / point.memory)
        best = worst_ratio if best is None else min(best, worst_ratio)
    return float(best)


def closest_baseline(point: ParetoPoint, baseline: Sequence[ParetoPoint],
                     objective: str = "memory") -> Optional[ParetoPoint]:
    """The baseline frontier point closest to ``point`` along one objective.

    Used to report the paper's "same on-chip memory as tile=16"-style
    comparisons: match on one axis, compare the improvement on the other.
    """
    frontier = pareto_front(baseline)
    if not frontier:
        return None
    if objective not in ("memory", "cycles"):
        raise ValueError(f"objective must be 'memory' or 'cycles', got {objective!r}")
    key = (lambda q: abs(q.memory - point.memory)) if objective == "memory" \
        else (lambda q: abs(q.cycles - point.cycles))
    return min(frontier, key=key)


def speedup_at_matched_memory(point: ParetoPoint,
                              baseline: Sequence[ParetoPoint]) -> float:
    """Speedup of ``point`` over the baseline point with the nearest memory use."""
    match = closest_baseline(point, baseline, objective="memory")
    if match is None:
        return 1.0
    return match.cycles / point.cycles


def memory_saving_at_matched_performance(point: ParetoPoint,
                                         baseline: Sequence[ParetoPoint]) -> float:
    """On-chip memory saving of ``point`` versus the baseline point with the
    nearest cycle count (a value > 1 means the point uses less memory)."""
    match = closest_baseline(point, baseline, objective="cycles")
    if match is None:
        return 1.0
    return match.memory / point.memory
