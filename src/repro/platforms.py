"""Platforms — named, registered, serializable hardware configurations.

The paper's evaluation is *hardware × workload × schedule*: Sections 4.5 and
5.1 vary on-chip/off-chip bandwidth, the physical tile size and the timing
model, not just workloads and schedules.  Historically the hardware side was a
bare :class:`~repro.sim.executors.common.HardwareConfig` defaulted to
``sda_hardware()`` independently at half a dozen call sites; this module makes
hardware a first-class axis:

* :class:`Platform` — a named wrapper over :class:`HardwareConfig` with a
  description and a symmetric JSON form (:meth:`Platform.to_dict` /
  :meth:`Platform.from_dict`),
* a **registry** (:func:`register_platform` / :func:`get_platform` /
  :func:`platform_names`) so experiments address hardware by name exactly the
  way scenarios and workload kinds are addressed by name,
* :func:`resolve_platform` — the one resolution path replacing every scattered
  ``hardware or sda_hardware()`` default: accepts ``None`` (the default
  platform), a registered name, a :class:`Platform` or a raw
  :class:`HardwareConfig` (wrapped under a content-derived name),
* :func:`platform_grid` — bandwidth / tile / timing sweeps as a ready-made
  ``{label: Platform}`` axis for :class:`repro.api.Scenario`.

Shipped presets (the Section 5.1 configurations):

* ``"sda"`` — the default evaluation hardware (64 B/cycle on-chip per memory
  unit, 1024 B/cycle off-chip, 100-cycle off-chip latency, 16x16 tiles);
  identical to :func:`repro.workloads.configs.sda_hardware` — the default
  platform changes nothing about existing results,
* ``"sda-hbm256"`` — the high on-chip-bandwidth variant (256 B/cycle) the
  Figure 8 validation sweep runs on,
* ``"sda-detailed"`` — the default hardware under the ``"detailed"``
  physical-tile timing model (Section 4.5),
* ``"sda-hbm-small"`` — the SDA with a deliberately tiny HBM capacity
  (:attr:`Platform.hbm_capacity_bytes`) so KV-cache capacity cliffs are
  reachable in smoke-sized serving runs (see :mod:`repro.serve.memory`).

Beyond bandwidth, platforms can model **finite HBM capacity**:
``hbm_capacity_bytes`` bounds the bytes available to the serving KV cache
(``None`` — the default on every pre-existing preset — keeps memory unbounded,
so all prior results are reproduced bit for bit).  The serving engine derives
a page budget from it via :func:`repro.serve.memory.kv_bytes_per_row`.

This module deliberately imports only the simulator-facing config type, so the
serving, workload and API layers can all resolve platforms without cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .core.errors import ConfigError
from .sim.executors.common import HardwareConfig

#: the name every unresolved ``hardware=None`` falls back to
DEFAULT_PLATFORM = "sda"

#: anything :func:`resolve_platform` accepts
PlatformLike = Union[None, str, "Platform", HardwareConfig]


@dataclass(frozen=True)
class Platform:
    """A named hardware configuration — the third axis of an experiment.

    ``name`` is the platform's identity: it participates in sweep-cache
    content hashes (two platforms with equal hardware but different names are
    distinct design points) and labels scenario result rows.
    """

    name: str
    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    #: HBM bytes available to the serving KV cache; ``None`` = unbounded
    #: (every pre-capacity result is reproduced bit for bit).  This is a
    #: compared field: two platforms differing only in capacity are distinct
    #: design points with distinct sweep-cache identities.
    hbm_capacity_bytes: Optional[int] = None
    #: compare=False keeps the description out of equality *and* of the sweep
    #: cache's content hashes (canonicalize skips non-compared fields): a
    #: platform's cache identity is its name + hardware + capacity
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a platform needs a non-empty name")
        if not isinstance(self.hardware, HardwareConfig):
            raise ConfigError(f"platform {self.name!r}: hardware must be a "
                              f"HardwareConfig, got {self.hardware!r}")
        if self.hbm_capacity_bytes is not None and self.hbm_capacity_bytes <= 0:
            raise ConfigError(f"platform {self.name!r}: hbm_capacity_bytes must "
                              f"be positive or None (unbounded), got "
                              f"{self.hbm_capacity_bytes}")

    def replace(self, name: str, description: str = "",
                hbm_capacity_bytes: Union[Optional[int], str] = "inherit",
                **hardware_overrides) -> "Platform":
        """A derived platform: same hardware with field overrides, new name.

        ``hbm_capacity_bytes`` defaults to the sentinel ``"inherit"`` (keep
        the base platform's capacity); pass an int to bound it or ``None`` to
        lift the bound.
        """
        capacity = (self.hbm_capacity_bytes if hbm_capacity_bytes == "inherit"
                    else hbm_capacity_bytes)
        return Platform(name=name,
                        hardware=dataclasses.replace(self.hardware, **hardware_overrides),
                        hbm_capacity_bytes=capacity,
                        description=description or self.description)

    def label(self) -> str:
        hw = self.hardware
        capacity = ("" if self.hbm_capacity_bytes is None
                    else f", hbm={format_bytes(self.hbm_capacity_bytes)}")
        return (f"{self.name}(onchip={hw.onchip_bandwidth:g}, "
                f"offchip={hw.offchip_bandwidth:g}, tile={hw.compute_tile}, "
                f"{hw.timing_model}{capacity})")

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON description, symmetric with :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "hbm_capacity_bytes": self.hbm_capacity_bytes,
            "hardware": {f.name: getattr(self.hardware, f.name)
                         for f in dataclasses.fields(self.hardware)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Platform":
        capacity = payload.get("hbm_capacity_bytes")
        return cls(name=payload["name"],
                   hardware=HardwareConfig(**dict(payload.get("hardware") or {})),
                   hbm_capacity_bytes=None if capacity is None else int(capacity),
                   description=payload.get("description", ""))


def format_bytes(nbytes: int) -> str:
    """A compact power-of-two byte label (``131072`` -> ``"128K"``)."""
    if nbytes % (1024 * 1024) == 0:
        return f"{nbytes // (1024 * 1024)}M"
    if nbytes % 1024 == 0:
        return f"{nbytes // 1024}K"
    return str(nbytes)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: platform name -> Platform
PLATFORMS: Dict[str, Platform] = {}


def register_platform(platform: Platform) -> Platform:
    """Register ``platform`` under its name (duplicate names are rejected)."""
    if not isinstance(platform, Platform):
        raise ConfigError(f"register_platform takes a Platform, got {platform!r}")
    if platform.name in PLATFORMS:
        raise ConfigError(f"platform {platform.name!r} is already registered")
    PLATFORMS[platform.name] = platform
    return platform


def get_platform(name: str) -> Platform:
    """The registered platform ``name``."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise ConfigError(f"unknown platform {name!r}; "
                          f"registered: {platform_names()}") from None


def platform_names() -> List[str]:
    """The registered platform names, sorted."""
    return sorted(PLATFORMS)


def default_platform() -> Platform:
    """The platform every unresolved ``hardware=None`` falls back to."""
    return PLATFORMS[DEFAULT_PLATFORM]


def resolve_platform(value: PlatformLike = None) -> Platform:
    """The one resolution path from any hardware-ish value to a Platform.

    ``None`` resolves to the default ``"sda"`` platform (exactly the hardware
    the old per-call-site ``hardware or sda_hardware()`` defaults produced);
    strings go through the registry; a raw :class:`HardwareConfig` is wrapped
    under a deterministic content-derived name (``custom-<hash8>``) so ad-hoc
    hardware still has a stable sweep-cache identity.
    """
    if value is None:
        return default_platform()
    if isinstance(value, Platform):
        return value
    if isinstance(value, str):
        return get_platform(value)
    if isinstance(value, HardwareConfig):
        for preset in PLATFORMS.values():
            if preset.hardware == value:
                return preset
        from .sweep.cache import stable_hash
        return Platform(name=f"custom-{stable_hash(value)[:8]}", hardware=value,
                        description="ad-hoc hardware configuration")
    raise ConfigError(f"cannot resolve a platform from {value!r}; expected None, "
                      f"a registered name, a Platform or a HardwareConfig")


def resolve_platforms(value: Union[PlatformLike, Mapping[str, PlatformLike],
                                   Sequence[PlatformLike]]) -> Dict[str, Platform]:
    """Normalize a platforms argument into an ordered ``{label: Platform}`` map.

    Accepts a single platform-ish value, an ordered mapping from label to
    platform-ish value, or a sequence of platform-ish values (labelled by
    their resolved names).
    """
    if isinstance(value, Mapping):
        resolved = {str(label): resolve_platform(entry)
                    for label, entry in value.items()}
    elif isinstance(value, (list, tuple)):
        resolved = {}
        for entry in value:
            platform = resolve_platform(entry)
            if platform.name in resolved:
                raise ConfigError(f"duplicate platform {platform.name!r} in sequence")
            resolved[platform.name] = platform
    else:
        platform = resolve_platform(value)
        resolved = {platform.name: platform}
    if not resolved:
        raise ConfigError("at least one platform is required")
    return resolved


# ---------------------------------------------------------------------------
# Grid helper
# ---------------------------------------------------------------------------

def platform_grid(base: PlatformLike = None, *,
                  onchip_bandwidths: Sequence[float] = (),
                  offchip_bandwidths: Sequence[float] = (),
                  compute_tiles: Sequence[int] = (),
                  timing_models: Sequence[str] = (),
                  hbm_capacities: Sequence[Optional[int]] = (),
                  prefix: Optional[str] = None) -> Dict[str, Platform]:
    """One-axis-at-a-time hardware variants of ``base`` as a platforms mapping.

    Each swept value derives one platform from the base (the other parameters
    stay at the base's values), labelled ``<prefix>-<knob><value>``.  The base
    platform itself is always included under its own name, so the grid drops
    straight into ``Scenario(platforms=platform_grid(...))`` with the baseline
    for comparison::

        platform_grid(onchip_bandwidths=(64, 128, 256))
        # {"sda": ..., "sda-onchip128": ..., "sda-onchip256": ...}

    ``hbm_capacities`` sweeps the HBM byte budget of the serving KV cache
    (``platform_grid(hbm_capacities=(131072, 65536))`` yields ``sda-hbm128K``
    and ``sda-hbm64K``); a ``None`` entry derives an explicitly unbounded
    variant of a capacity-bounded base.
    """
    resolved = resolve_platform(base)
    prefix = prefix or resolved.name
    grid: Dict[str, Platform] = {resolved.name: resolved}

    def add(suffix: str, description: str, **overrides) -> None:
        name = f"{prefix}-{suffix}"
        if name not in grid:
            grid[name] = resolved.replace(name, description=description, **overrides)

    for bw in onchip_bandwidths:
        if bw != resolved.hardware.onchip_bandwidth:
            add(f"onchip{bw:g}", f"{resolved.name} at {bw:g} B/cycle on-chip",
                onchip_bandwidth=float(bw))
    for bw in offchip_bandwidths:
        if bw != resolved.hardware.offchip_bandwidth:
            add(f"offchip{bw:g}", f"{resolved.name} at {bw:g} B/cycle off-chip",
                offchip_bandwidth=float(bw))
    for tile in compute_tiles:
        if tile != resolved.hardware.compute_tile:
            add(f"tile{tile}", f"{resolved.name} with {tile}x{tile} compute tiles",
                compute_tile=int(tile))
    for model in timing_models:
        if model != resolved.hardware.timing_model:
            add(str(model), f"{resolved.name} under the {model!r} timing model",
                timing_model=str(model))
    for capacity in hbm_capacities:
        if capacity != resolved.hbm_capacity_bytes:
            suffix = ("hbm-unbounded" if capacity is None
                      else f"hbm{format_bytes(int(capacity))}")
            text = ("unbounded HBM" if capacity is None
                    else f"{format_bytes(int(capacity))}B of KV-cache HBM")
            add(suffix, f"{resolved.name} with {text}",
                hbm_capacity_bytes=None if capacity is None else int(capacity))
    return grid


# ---------------------------------------------------------------------------
# Shipped presets (Section 5.1 / 4.5)
# ---------------------------------------------------------------------------

#: the default evaluation hardware; HardwareConfig's field defaults *are* the
#: Section 5.1 values, and tests/api/test_platforms.py pins this equal to
#: repro.workloads.configs.sda_hardware() so the two definitions cannot drift
SDA = register_platform(Platform(
    name="sda",
    hardware=HardwareConfig(),
    description="Section 5.1 SDA: 64 B/cycle on-chip per memory unit, "
                "1024 B/cycle off-chip, 100-cycle off-chip latency, 16x16 tiles",
))

#: the high on-chip-bandwidth variant the Figure 8 validation sweep uses
SDA_HBM256 = register_platform(SDA.replace(
    "sda-hbm256", onchip_bandwidth=256.0,
    description="SDA with 256 B/cycle on-chip bandwidth (Figure 8 validation)",
))

#: the default hardware under the physical-tile-granular timing model
SDA_DETAILED = register_platform(SDA.replace(
    "sda-detailed", timing_model="detailed",
    description="SDA under the 'detailed' physical-tile timing model (Section 4.5)",
))

#: the SDA with a deliberately tiny KV-cache HBM budget: 128 KiB is a handful
#: of KV pages for the smoke-scale serving models (see repro.serve.memory), so
#: capacity cliffs, preemption and paged-vs-contiguous contrasts are all
#: reachable in smoke-sized runs.  Bandwidths and timing are unchanged —
#: contrast against "sda" isolates pure capacity effects.
SDA_HBM_SMALL = register_platform(SDA.replace(
    "sda-hbm-small", hbm_capacity_bytes=128 * 1024,
    description="SDA with a tiny 128 KiB KV-cache HBM budget "
                "(capacity-cliff studies at smoke scale)",
))
