"""Reference (HDL-substitute) simulation entry points.

``reference_simulate`` runs the *same* STeP program as the cycle-approximate
simulator but under the detailed timing model:

* higher-order operators are timed at physical-tile granularity (16x16x16 MAC
  tiles at an initiation interval of one, partial tiles padded),
* on-chip transfers move one 16x16 physical tile per cycle,
* off-chip accesses go through :class:`~repro.sim.hbm.BankedHBM` (64-byte
  bursts, per-bank row buffers).

Figure 8 compares the two models' cycle counts across the SwiGLU tile-size
sweep and reports their correlation; see
:mod:`repro.experiments.figure8`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.graph import Program
from ..core.stream import Token
from ..sim.executors.common import HardwareConfig
from ..sim.hbm import BankedHBM
from ..sim.runner import SimReport, simulate


def reference_hardware(onchip_bandwidth: float = 256.0, compute_tile: int = 16,
                       channel_latency: float = 1.0) -> HardwareConfig:
    """Hardware configuration of the Section 4.5 validation setup.

    The validation platform pairs 16x16 BF16 compute tiles (II = 1) with
    distributed memory units that read/write one tile per cycle; the on-chip
    memory bandwidth is configured as 256 bytes/cycle.
    """
    return HardwareConfig(
        onchip_bandwidth=onchip_bandwidth,
        offchip_bandwidth=1024.0,
        offchip_latency=120.0,
        compute_tile=compute_tile,
        channel_latency=channel_latency,
        timing_model="detailed",
    )


def reference_hbm(num_banks: int = 32, bus_bandwidth: float = 1024.0) -> BankedHBM:
    """An HBM2-like banked memory model (8-stack subsystem aggregate)."""
    return BankedHBM(num_banks=num_banks, bus_bandwidth=bus_bandwidth)


def reference_simulate(program: Program, inputs: Optional[Dict[str, Sequence[Token]]] = None,
                       hardware: Optional[HardwareConfig] = None,
                       hbm: Optional[BankedHBM] = None) -> SimReport:
    """Run ``program`` under the detailed reference timing model."""
    hardware = hardware or reference_hardware()
    hbm = hbm or reference_hbm(bus_bandwidth=hardware.offchip_bandwidth)
    return simulate(program, inputs=inputs, hardware=hardware, hbm=hbm)
