"""HDL-substitute reference simulator (paper Section 4.5, Figure 8).

The paper validates its cycle-approximate simulator against a cycle-accurate
Bluespec SystemVerilog model of a 16x16-tile fabric with a Ramulator-driven
HBM2 subsystem.  RTL is outside the scope of a pure-Python reproduction, so
this package provides the closest substitute: a second, independent timing
model of the *same* programs —

* compute units operate on 16x16 BF16 physical tiles with an initiation
  interval of one (STeP-level tiles are decomposed into physical tiles,
  including padding of partial tiles),
* on-chip memory units move one physical tile per cycle,
* off-chip accesses go through a banked, row-buffer-aware HBM model with
  64-byte bursts,

which is exactly the role the HDL model plays in Figure 8: an independent,
more detailed reference whose cycle counts the Roofline-based simulator should
track across the tile-size sweep.
"""

from .hierarchical import hierarchical_matmul_program, physical_tile_count
from .reference import reference_hardware, reference_simulate

__all__ = [
    "hierarchical_matmul_program",
    "physical_tile_count",
    "reference_hardware",
    "reference_simulate",
]
