"""Hierarchical tiling (paper Appendix B.2, Figure 18).

When mapping to the HDL model, STeP-level tiles are partitioned into smaller
physical tiles that match the fabric's 16x16 compute tile.  Figure 18 shows the
graph transformation for a matmul node: one operand is bufferized and
re-streamed once per row block of the other, physical tiles are multiplied, and
the partial products are re-accumulated over the shared dimension.

This module provides

* :func:`physical_tile_count` / :func:`matmul_mac_tiles` — how many physical
  tile operations one STeP-level operation decomposes into (used by the
  detailed timing model of the reference simulator),
* :func:`split_tile` — decompose a STeP-level tile into padded physical tiles,
* :func:`hierarchical_matmul_program` — an executable STeP program applying the
  Figure 18 transformation to ``C = A @ B`` at physical-tile granularity
  (Bufferize + Streamify + Zip + Accum(MatmulAccum)), checked against numpy in
  the test suite.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.dtypes import Tile, TileType
from ..core.graph import InputStream, Program
from ..core.shape import StreamShape
from ..core.stream import tokens_from_nested
from ..ops import Accum, Bufferize, Streamify, Zip
from ..ops.functions import MatmulAccum


def physical_tile_count(rows: int, cols: int, compute_tile: int = 16) -> int:
    """Number of ``compute_tile`` x ``compute_tile`` physical tiles covering a tile."""
    if rows <= 0 or cols <= 0:
        return 0
    return (-(-rows // compute_tile)) * (-(-cols // compute_tile))


def matmul_mac_tiles(m: int, k: int, n: int, compute_tile: int = 16) -> int:
    """Number of ``16x16x16`` MAC tiles needed for an ``m x k @ k x n`` product."""
    return (-(-m // compute_tile)) * (-(-k // compute_tile)) * (-(-n // compute_tile))


def split_tile(tile: Tile, tile_rows: int, tile_cols: int) -> List[List[Tile]]:
    """Split a STeP-level tile into a row-major grid of physical tiles (padding edges)."""
    grid: List[List[Tile]] = []
    for r0 in range(0, tile.rows, tile_rows):
        row: List[Tile] = []
        for c0 in range(0, tile.cols, tile_cols):
            rows = min(tile_rows, tile.rows - r0)
            cols = min(tile_cols, tile.cols - c0)
            if tile.has_data:
                block = np.zeros((tile_rows, tile_cols), dtype=tile.dtype.numpy_dtype)
                block[:rows, :cols] = tile.to_array()[r0:r0 + rows, c0:c0 + cols]
                row.append(Tile.from_array(block, tile.dtype))
            else:
                row.append(Tile.meta(tile_rows, tile_cols, tile.dtype))
        grid.append(row)
    return grid


def hierarchical_matmul_program(m: int, k: int, n_cols: int = 16, compute_tile: int = 16,
                                compute_bw: int = 512) -> Tuple[Program, str]:
    """The Figure 18 transformation of ``C = A @ B`` (single output column block).

    ``A`` is an ``m x k`` matrix supplied as a rank-1 stream of physical tiles
    (``m/16`` row blocks, each a group of ``k/16`` tiles); ``B`` is a
    ``k x n_cols`` matrix supplied as one group of ``k/16`` physical tiles.
    ``B`` is bufferized once and re-streamed for every row block of ``A``
    (Bufferize + Streamify with a static repeat count), the physical tiles are
    zipped and multiplied, and the partial products are accumulated over the
    shared ``k`` dimension — exactly the structure of Figure 18.

    Returns ``(program, output_handle_name)``; the output is a rank-0 stream of
    ``m/16`` physical result tiles.
    """
    if n_cols > compute_tile:
        raise ValueError("the demonstration transform keeps a single output column block")
    m_blocks = -(-m // compute_tile)
    k_blocks = -(-k // compute_tile)

    a_tiles = InputStream(StreamShape([m_blocks, k_blocks]),
                          TileType(compute_tile, compute_tile), name="a_tiles").stream
    b_tiles = InputStream(StreamShape([1, k_blocks]),
                          TileType(compute_tile, compute_tile), name="b_tiles").stream

    b_buffer = Bufferize(b_tiles, rank=1, name="buffer_b")
    b_replay = Streamify(b_buffer.output, count=m_blocks, name="stream_b")
    b_flat_shape_fix = b_replay  # [1, m_blocks, k_blocks] — matches A after promote below

    from ..ops import Flatten, Promote  # local import avoids a cycle at module load

    a_grouped = Promote(a_tiles, name="promote_a")          # [1, m_blocks, k_blocks]
    pairs = Zip(a_grouped.output, b_flat_shape_fix.output, name="zip_ab")
    result = Accum(pairs.output, MatmulAccum(), rank=1, compute_bw=compute_bw,
                   name="mac_accumulate")
    flat = Flatten(result.output, 0, 1, name="flatten_out")
    program = Program([flat.output], name="hierarchical_matmul")
    return program, flat.output.name


def hierarchical_matmul_inputs(a: np.ndarray, b: np.ndarray, compute_tile: int = 16) -> dict:
    """Input token streams for :func:`hierarchical_matmul_program`."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    a_grid = split_tile(Tile.from_array(a), compute_tile, compute_tile)
    b_grid = split_tile(Tile.from_array(b), compute_tile, compute_tile)
    # A: [m_blocks, k_blocks] — one group of k physical tiles per row block
    a_nested = a_grid
    # B: [1, k_blocks] — the k-dimension tiles of the single output column block
    b_nested = [[row[0] for row in b_grid]]
    return {
        "a_tiles": tokens_from_nested(a_nested, rank=1),
        "b_tiles": tokens_from_nested(b_nested, rank=1),
    }


def hierarchical_matmul_reference(a: np.ndarray, b: np.ndarray,
                                  compute_tile: int = 16) -> List[Tile]:
    """Reference: the physical result tiles (row blocks) of ``A @ B`` with padding."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    out = a @ b
    return [row[0] for row in split_tile(Tile.from_array(out), compute_tile, compute_tile)]
