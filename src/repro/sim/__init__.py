"""The STeP cycle-approximate simulator (paper Section 4.3).

The simulator follows the Dataflow Abstract Machine execution model the
paper's Rust backend is built on: every operator runs as an asynchronous
process with its own local clock, and processes communicate over
time-stamped FIFO channels.  Timing comes from

* a Roofline model for higher-order operators
  (``max(in_bytes/onchip_bw, flops/compute_bw, out_bytes/onchip_bw)``),
* an HBM node for off-chip memory operators, and
* per-channel transfer latency.

Running with ``timed=False`` turns the same machinery into a purely
functional reference interpreter.
"""

from .channel import Channel
from .engine import Engine, Process
from .hbm import BankedHBM, HBMModel
from .metrics import SimMetrics
from .runner import SimReport, simulate, run_functional

__all__ = [
    "Channel",
    "Engine",
    "Process",
    "HBMModel",
    "BankedHBM",
    "SimMetrics",
    "SimReport",
    "simulate",
    "run_functional",
]
