"""High-level entry points for running STeP programs on the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.graph import Program
from ..core.stream import Token, data_values
from .executors.common import HardwareConfig
from .hbm import HBMModel
from .lowering import LoweredProgram, lower
from .metrics import SimMetrics


@dataclass
class SimReport:
    """The result of one simulation run."""

    cycles: float
    metrics: SimMetrics
    outputs: Dict[str, List[Token]] = field(default_factory=dict)
    hardware: Optional[HardwareConfig] = None

    # -- convenience accessors ------------------------------------------------------
    @property
    def offchip_traffic(self) -> int:
        return self.metrics.offchip_traffic

    @property
    def onchip_memory(self) -> int:
        return self.metrics.onchip_memory

    @property
    def total_flops(self) -> int:
        return self.metrics.total_flops

    @property
    def allocated_compute(self) -> int:
        return self.metrics.allocated_compute

    @property
    def compute_utilization(self) -> float:
        return self.metrics.compute_utilization(self.cycles)

    @property
    def offchip_bw_utilization(self) -> float:
        return self.metrics.offchip_bw_utilization(self.cycles)

    def output_tokens(self, name: str) -> List[Token]:
        return self.outputs[name]

    def output_values(self, name: str) -> list:
        return data_values(self.outputs[name])

    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()


def simulate(program: Program, inputs: Optional[Dict[str, Sequence[Token]]] = None,
             hardware: Optional[HardwareConfig] = None, timed: bool = True,
             hbm: Optional[HBMModel] = None,
             input_rates: Optional[Dict[str, float]] = None) -> SimReport:
    """Simulate ``program`` and return a :class:`SimReport`.

    ``timed=True`` runs the cycle-approximate model (Section 4.3);
    ``timed=False`` executes the same graph functionally with all latencies
    collapsed to zero (useful as a reference interpreter).
    """
    hardware = hardware or HardwareConfig()
    lowered = lower(program, inputs=inputs, hardware=hardware, timed=timed, hbm=hbm,
                    input_rates=input_rates)
    metrics = lowered.run()
    outputs = {name: lowered.output_tokens(name) for name in lowered.sink_contexts}
    return SimReport(cycles=metrics.cycles, metrics=metrics, outputs=outputs,
                     hardware=hardware)


def run_functional(program: Program, inputs: Optional[Dict[str, Sequence[Token]]] = None,
                   hardware: Optional[HardwareConfig] = None) -> SimReport:
    """Run the program purely functionally (no timing)."""
    return simulate(program, inputs=inputs, hardware=hardware, timed=False)
