"""High-level entry points for running STeP programs on the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.graph import Program
from ..core.stream import Token, data_values
from .executors.common import HardwareConfig
from .hbm import HBMModel
from .lowering import lower
from .metrics import SimMetrics

#: the flat metric keys a serialized report carries — exactly the payload the
#: sweep result cache stores (see :func:`repro.sweep.tasks.report_metrics`)
SERIALIZED_METRIC_KEYS = (
    "cycles",
    "offchip_traffic_bytes",
    "onchip_memory_bytes",
    "total_flops",
    "allocated_compute_flops_per_cycle",
    "compute_utilization",
    "offchip_bw_utilization",
)


class _RestoredMetrics(SimMetrics):
    """Metrics restored from a flat payload: aggregates are stored, not derived.

    A restored report has no per-operator breakdown; its aggregate accessors
    return the serialized values verbatim so ``to_dict(from_dict(d)) == d``
    holds bit-for-bit.
    """

    def __init__(self, payload: Dict[str, float]):
        super().__init__()
        missing = [key for key in SERIALIZED_METRIC_KEYS if key not in payload]
        if missing:
            raise KeyError(f"restored report payload is missing {missing}")
        self._restored = {key: float(payload[key]) for key in SERIALIZED_METRIC_KEYS}
        self.cycles = self._restored["cycles"]

    @property
    def offchip_traffic(self):
        return self._restored["offchip_traffic_bytes"]

    @property
    def onchip_memory(self):
        return self._restored["onchip_memory_bytes"]

    @property
    def total_flops(self):
        return self._restored["total_flops"]

    @property
    def allocated_compute(self):
        return self._restored["allocated_compute_flops_per_cycle"]

    def compute_utilization(self, cycles: Optional[float] = None) -> float:
        return self._restored["compute_utilization"]

    def offchip_bw_utilization(self, cycles: Optional[float] = None) -> float:
        return self._restored["offchip_bw_utilization"]


@dataclass
class SimReport:
    """The result of one simulation run."""

    cycles: float
    metrics: SimMetrics
    outputs: Dict[str, List[Token]] = field(default_factory=dict)
    hardware: Optional[HardwareConfig] = None

    # -- convenience accessors ------------------------------------------------------
    @property
    def offchip_traffic(self) -> int:
        return self.metrics.offchip_traffic

    @property
    def onchip_memory(self) -> int:
        return self.metrics.onchip_memory

    @property
    def total_flops(self) -> int:
        return self.metrics.total_flops

    @property
    def allocated_compute(self) -> int:
        return self.metrics.allocated_compute

    @property
    def compute_utilization(self) -> float:
        return self.metrics.compute_utilization(self.cycles)

    @property
    def offchip_bw_utilization(self) -> float:
        return self.metrics.offchip_bw_utilization(self.cycles)

    def output_tokens(self, name: str) -> List[Token]:
        return self.outputs[name]

    def output_values(self, name: str) -> list:
        return data_values(self.outputs[name])

    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()

    # -- serialization (symmetric with the sweep cache's flat payloads) -------------
    def to_dict(self) -> Dict[str, float]:
        """The flat, JSON-able metric payload the sweep result cache stores."""
        return {
            "cycles": float(self.cycles),
            "offchip_traffic_bytes": float(self.offchip_traffic),
            "onchip_memory_bytes": float(self.onchip_memory),
            "total_flops": float(self.total_flops),
            "allocated_compute_flops_per_cycle": float(self.allocated_compute),
            "compute_utilization": float(self.compute_utilization),
            "offchip_bw_utilization": float(self.offchip_bw_utilization),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "SimReport":
        """Rebuild a report from :meth:`to_dict`'s payload.

        The restored report exposes the aggregate metrics bit-identically
        (``report.to_dict() == payload``); the per-operator breakdown, output
        tokens and hardware configuration are not serialized.
        """
        metrics = _RestoredMetrics(payload)
        return cls(cycles=metrics.cycles, metrics=metrics)


def simulate(program: Program, inputs: Optional[Dict[str, Sequence[Token]]] = None,
             hardware: Optional[HardwareConfig] = None, timed: bool = True,
             hbm: Optional[HBMModel] = None,
             input_rates: Optional[Dict[str, float]] = None) -> SimReport:
    """Simulate ``program`` and return a :class:`SimReport`.

    ``timed=True`` runs the cycle-approximate model (Section 4.3);
    ``timed=False`` executes the same graph functionally with all latencies
    collapsed to zero (useful as a reference interpreter).
    """
    hardware = hardware or HardwareConfig()
    lowered = lower(program, inputs=inputs, hardware=hardware, timed=timed, hbm=hbm,
                    input_rates=input_rates)
    metrics = lowered.run()
    outputs = {name: lowered.output_tokens(name) for name in lowered.sink_contexts}
    return SimReport(cycles=metrics.cycles, metrics=metrics, outputs=outputs,
                     hardware=hardware)


def run_functional(program: Program, inputs: Optional[Dict[str, Sequence[Token]]] = None,
                   hardware: Optional[HardwareConfig] = None) -> SimReport:
    """Run the program purely functionally (no timing)."""
    return simulate(program, inputs=inputs, hardware=hardware, timed=False)
