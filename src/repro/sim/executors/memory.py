"""Executors for the off-chip and on-chip memory operators.

Off-chip operators issue requests to the engine's HBM model (``("hbm", ...)``
effects), which serializes them on the shared off-chip bandwidth and records
traffic.  On-chip operators (Bufferize / Streamify) move tiles at the on-chip
memory bandwidth and account for their buffer footprints per Section 4.2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...core.dtypes import Address, BufferHandle, Tile, value_nbytes
from ...core.errors import SimulationError, StreamProtocolError
from ...core.stream import DONE, Data, Done, Stop, Token, stop_token
from ...ops.offchip import (LinearOffChipLoad, LinearOffChipStore, RandomOffChipLoad,
                            RandomOffChipStore)
from ...ops.onchip import Bufferize, Streamify
from ..channel import Channel
from .common import OpContext, OutputBuilder, push_all, push_tokens


# ---------------------------------------------------------------------------
# Off-chip operators
# ---------------------------------------------------------------------------

def _tile_from_underlying(op: LinearOffChipLoad, grid_row: int, grid_col: int) -> Tile:
    tr, tc = op.tile_shape
    if op.underlying is None:
        return _meta_tile(tr, tc, op.dtype)
    rows = slice(grid_row * tr, (grid_row + 1) * tr)
    cols = slice(grid_col * tc, (grid_col + 1) * tc)
    return Tile.from_array(np.asarray(op.underlying)[rows, cols], op.dtype)


def _linear_read(op: LinearOffChipLoad, builder: OutputBuilder, ctx: OpContext,
                 out_channels: Sequence[Channel]):
    """One affine read of the stored tensor: a nested sweep over shape_tiled.

    Each tile is fetched through the HBM model and pushed with the access's
    completion time, so downstream consumers see the memory latency while the
    load unit keeps issuing (pipelined requests).
    """
    grid_cols = op.in_mem_shape[1] // op.tile_shape[1]
    tile_bytes = op.tile_nbytes
    rows, cols = op.shape_tiled
    stride_r, stride_c = op.stride_tiled
    for i in range(rows):
        for j in range(cols):
            linear = i * stride_r + j * stride_c
            grid_row, grid_col = divmod(linear, grid_cols)
            grid_row %= max(1, op.in_mem_shape[0] // op.tile_shape[0])
            tile = _tile_from_underlying(op, grid_row, grid_col)
            yield ("hbm_push", tile_bytes, False, op.base_addr + linear * tile_bytes,
                   out_channels, builder.data(tile))
            ctx.record_element(0.0)
        builder.stop(1)
    builder.stop(2)


def linear_offchip_load_executor(op: LinearOffChipLoad, ins: Sequence[Channel],
                                 outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    builder = OutputBuilder()
    read_rank = len(op.shape_tiled)
    ctx.record_onchip(op.tile_nbytes * 2)  # double-buffered staging (Section 4.2)
    if op.has_ref:
        ref_channel = ins[0]
        while True:
            token = yield ("pop", ref_channel)
            if isinstance(token, Data):
                yield from _linear_read(op, builder, ctx, out_channels)
            elif isinstance(token, Stop):
                builder.stop(token.level + read_rank)
            elif isinstance(token, Done):
                yield push_tokens(out_channels, builder.done())
                return
    else:
        for _ in range(op.count):
            yield from _linear_read(op, builder, ctx, out_channels)
        yield push_tokens(out_channels, builder.done())


def linear_offchip_store_executor(op: LinearOffChipStore, ins: Sequence[Channel],
                                  outs: Sequence[Sequence[Channel]], ctx: OpContext):
    channel = ins[0]
    offset = 0
    while True:
        token = yield ("pop", channel)
        ctx.results.append(token)
        if isinstance(token, Data):
            nbytes = value_nbytes(token.value)
            yield ("hbm", nbytes, True, op.base_addr + offset)
            offset += nbytes
            ctx.record_element(0.0)
        elif isinstance(token, Done):
            return


def random_offchip_load_executor(op: RandomOffChipLoad, ins: Sequence[Channel],
                                 outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    builder = OutputBuilder()
    tile_bytes = op.tile_nbytes
    shift = 1 if op.tiles_per_access > 1 else 0
    ctx.record_onchip(tile_bytes * 2)
    raddr = ins[0]
    while True:
        token = yield ("pop", raddr)
        if isinstance(token, Data):
            address = _address_of(token.value)
            for t in range(op.tiles_per_access):
                tile = _random_tile(op, address + t)
                yield ("hbm_push", tile_bytes, False,
                       op.base_addr + (address + t) * tile_bytes,
                       out_channels, builder.data(tile))
                ctx.record_element(0.0)
            if shift:
                builder.stop(1)
        elif isinstance(token, Stop):
            tokens = builder.stop(token.level + shift)
            if shift == 0:
                # Address-stream stops pass through one-to-one; flush them
                # immediately so consumers (e.g. the per-request reduction in
                # dynamic-parallelization attention) observe request boundaries
                # as soon as the last tile of the request has been fetched.
                tokens = tokens + builder.flush()
            yield push_tokens(out_channels, tokens)
        elif isinstance(token, Done):
            yield push_tokens(out_channels, builder.done())
            return


_Selector = None


def _address_of(value) -> int:
    global _Selector
    if _Selector is None:  # deferred import: avoids a cycle at module load
        from ...core.dtypes import Selector as _SelectorCls
        _Selector = _SelectorCls

    if isinstance(value, Address):
        return value.value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, _Selector):
        # Configuration time-multiplexing feeds EagerMerge's selector output
        # straight into RandomOffChipLoad: the selected producer index is the
        # expert whose weights must be fetched (Figure 11).
        return int(value.indices[0])
    if isinstance(value, Tile):
        if value.has_data:
            return int(value.to_array().flat[0])
        raise SimulationError("address tiles must carry a payload")
    raise SimulationError(f"cannot interpret {value!r} as an off-chip address")


#: shared metadata-only tiles (interned per shape/dtype in core.dtypes)
_meta_tile = Tile.meta_shared


def _random_tile(op: RandomOffChipLoad, index: int) -> Tile:
    tr, tc = op.tile_shape
    if op.underlying is None:
        return _meta_tile(tr, tc, op.dtype)
    underlying = np.asarray(op.underlying)
    if underlying.ndim == 3:
        slot = underlying[index % underlying.shape[0]]
        return Tile.from_array(slot, op.dtype)
    # 2-D backing store: tiles are laid out row-major along the row axis
    rows = underlying.shape[0] // tr
    row = (index % max(1, rows)) * tr
    return Tile.from_array(underlying[row:row + tr, :tc], op.dtype)


def random_offchip_store_executor(op: RandomOffChipStore, ins: Sequence[Channel],
                                  outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    waddr, wdata = ins
    while True:
        addr_token = yield ("pop", waddr)
        if isinstance(addr_token, Done):
            yield push_all(out_channels, DONE)
            return
        if isinstance(addr_token, Stop):
            yield push_all(out_channels, addr_token)
            continue
        data_token = yield ("pop", wdata)
        while isinstance(data_token, Stop):
            data_token = yield ("pop", wdata)
        if not isinstance(data_token, Data):
            raise StreamProtocolError(
                f"{ctx.op_name}: write-data stream ended before the address stream")
        nbytes = value_nbytes(data_token.value)
        address = _address_of(addr_token.value)
        ctx.results.append((address, data_token.value))
        yield ("hbm", nbytes, True, op.base_addr + address)
        ctx.record_element(0.0)
        yield push_all(out_channels, Data(True))


# ---------------------------------------------------------------------------
# On-chip operators
# ---------------------------------------------------------------------------

def bufferize_executor(op: Bufferize, ins: Sequence[Channel],
                       outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    items: List[Token] = []
    item_bytes = 0
    max_input_tile = 0
    onchip_bw = ctx.hardware.onchip_bandwidth

    def finish_buffer():
        handle = BufferHandle(items, op.rank)
        # Section 4.2: |input dtype| + ||buffer|| * |input dtype| * 2 (double buffering)
        ctx.record_onchip(max_input_tile + 2 * item_bytes)
        ctx.record_buffer(item_bytes)
        return handle

    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            nbytes = value_nbytes(token.value)
            max_input_tile = max(max_input_tile, nbytes)
            item_bytes += nbytes
            items.append(token)
            cycles = max(1.0, nbytes / onchip_bw if onchip_bw > 0 else 0.0)
            yield ("tick", cycles)
            ctx.record_element(cycles)
        elif isinstance(token, Stop):
            if token.level >= op.rank:
                handle = finish_buffer()
                yield push_all(out_channels, Data(handle))
                if token.level > op.rank:
                    yield push_all(out_channels, stop_token(token.level - op.rank))
                items, item_bytes = [], 0
            else:
                items.append(token)
        elif isinstance(token, Done):
            if items:
                handle = finish_buffer()
                yield push_all(out_channels, Data(handle))
            yield push_all(out_channels, DONE)
            return


def _buffer_read_tokens(op: Streamify, handle: BufferHandle, builder: OutputBuilder) -> List[Token]:
    """Tokens for one read of a buffer (affine view or linear replay)."""
    tokens: List[Token] = []
    if op.out_shape is not None:
        values = list(handle.data_values)
        rows, cols = (op.out_shape + (1, 1))[:2] if len(op.out_shape) < 2 else op.out_shape[:2]
        stride = op.stride or (cols, 1)
        read_rank = len(op.out_shape)
        for i in range(rows):
            for j in range(cols):
                linear = (i * stride[0] + j * stride[1]) % max(1, len(values))
                tokens.extend(builder.data(values[linear]))
            builder.stop(1)
        builder.stop(read_rank)
        return tokens
    for item in handle.items:
        if isinstance(item, Data):
            tokens.extend(builder.data(item.value))
        elif isinstance(item, Stop):
            builder.stop(item.level)
    builder.stop(handle.rank)
    return tokens


def streamify_executor(op: Streamify, ins: Sequence[Channel],
                       outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    builder = OutputBuilder()
    onchip_bw = ctx.hardware.onchip_bandwidth
    read_rank = len(op.out_shape) if op.out_shape is not None else op.buffer_type.rank
    buffers = ins[0]

    def read_cost(handle: BufferHandle) -> float:
        return max(1.0, handle.nbytes / onchip_bw if onchip_bw > 0 else 0.0)

    if op.has_ref:
        ref = ins[1]
        extra = op.ref_extra_rank
        handle: Optional[BufferHandle] = None
        while True:
            token = yield ("pop", ref)
            if isinstance(token, Data):
                if handle is None:
                    buffer_token = yield ("pop", buffers)
                    while isinstance(buffer_token, Stop):
                        buffer_token = yield ("pop", buffers)
                    if isinstance(buffer_token, Done):
                        raise StreamProtocolError(
                            f"{ctx.op_name}: reference stream outlives the buffer stream")
                    handle = buffer_token.value
                cycles = read_cost(handle)
                ctx.record_element(cycles)
                yield ("tick_push_many", cycles, out_channels,
                       _buffer_read_tokens(op, handle, builder))
            elif isinstance(token, Stop):
                if token.level >= extra and extra > 0:
                    handle = None  # the next reference subtree reads the next buffer
                elif extra == 0:
                    handle = None
                builder.stop(token.level + read_rank)
            elif isinstance(token, Done):
                yield push_tokens(out_channels, builder.done())
                return
    else:
        while True:
            token = yield ("pop", buffers)
            if isinstance(token, Data):
                handle = token.value
                cycles = read_cost(handle)
                for _ in range(op.count):
                    ctx.record_element(cycles)
                    yield ("tick_push_many", cycles, out_channels,
                           _buffer_read_tokens(op, handle, builder))
                if op.count > 1:
                    builder.stop(read_rank + 1)
            elif isinstance(token, Stop):
                shift = read_rank + (1 if op.count > 1 else 0)
                builder.stop(token.level + shift)
            elif isinstance(token, Done):
                yield push_tokens(out_channels, builder.done())
                return
