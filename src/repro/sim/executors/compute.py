"""Executors for the higher-order operators: Map, Accum, Scan, FlatMap.

Each data element is charged the Roofline latency of Section 4.3 —
``max(in_bytes / onchip_bw, flops / compute_bw, out_bytes / onchip_bw)`` —
where the memory terms only apply when the operator's inputs/outputs actually
cross on-chip memory (determined during lowering).

Token movement uses the engine's batched effects: multi-input operators pop
one aligned token per input in a single ``pop_each`` round-trip, and output
runs are pushed with ``push_all``/``push_many``.
"""

from __future__ import annotations

from typing import List, Sequence

from ...core.dtypes import Tile, TupleValue, value_nbytes
from ...core.errors import StreamProtocolError
from ...core.stream import DONE, Data, Done, Stop, Token, stop_token
from ...ops.functions import Matmul, MatmulAccum
from ...ops.higher_order import Accum, FlatMap, Map, Scan
from ..channel import Channel
from .common import OpContext, OutputBuilder, matmul_onchip_bytes, push_all, push_tokens


def map_executor(op: Map, ins: Sequence[Channel], outs: Sequence[Sequence[Channel]],
                 ctx: OpContext):
    out_channels = outs[0] if outs else []
    compute_tile = ctx.hardware.compute_tile
    is_matmul = isinstance(op.fn, Matmul)
    single = ins[0] if len(ins) == 1 else None
    while True:
        if single is not None:
            first = yield ("pop", single)
            tokens = (first,)
        else:
            tokens = yield ("pop_each", ins)
            first = tokens[0]
        if isinstance(first, Done):
            yield push_all(out_channels, DONE)
            return
        if isinstance(first, Stop):
            levels = [t.level for t in tokens if isinstance(t, Stop)]
            if len(levels) != len(tokens):
                raise StreamProtocolError(
                    f"{ctx.op_name}: input streams desynchronized (stop vs data)")
            yield push_all(out_channels, stop_token(max(levels)))
            continue
        values = []
        for token in tokens:
            if not isinstance(token, Data):
                raise StreamProtocolError(
                    f"{ctx.op_name}: input streams desynchronized (data vs control)")
            values.append(token.value)
        result = op.fn(*values)
        flops = op.fn.flops(*values)
        in_bytes = sum(value_nbytes(v) for v in values)
        out_bytes = value_nbytes(result)
        cycles = ctx.roofline_cycles(in_bytes, flops, out_bytes, op.compute_bw)
        if is_matmul and isinstance(values[0], Tile) and isinstance(values[-1], Tile):
            ctx.record_onchip(matmul_onchip_bytes(values[0], values[-1], None, compute_tile))
        ctx.record_element(cycles, flops)
        yield ("tick_push_all", cycles, out_channels, Data(result))


def accum_executor(op: Accum, ins: Sequence[Channel], outs: Sequence[Sequence[Channel]],
                   ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    compute_tile = ctx.hardware.compute_tile
    is_matmul_accum = isinstance(op.fn, MatmulAccum)
    state = op.fn.init()
    saw_value = False
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            value = token.value
            flops = op.fn.flops(value, state)
            state = op.fn(value, state)
            in_bytes = value_nbytes(value)
            state_bytes = value_nbytes(state) if state is not None else 0
            cycles = ctx.roofline_cycles(in_bytes, flops, 0.0, op.compute_bw)
            if is_matmul_accum and isinstance(value, TupleValue):
                ctx.record_onchip(matmul_onchip_bytes(
                    value[0], value[1], state if isinstance(state, Tile) else None,
                    compute_tile))
            else:
                # Accum keeps its (possibly dynamically sized) accumulator on chip.
                ctx.record_onchip(state_bytes)
            yield ("tick", cycles)
            ctx.record_element(cycles, flops)
            saw_value = True
        elif isinstance(token, Stop):
            if token.level >= op.rank:
                if saw_value:
                    out_bytes = value_nbytes(state) if state is not None else 0
                    cycles = ctx.roofline_cycles(0.0, 0.0, out_bytes, op.compute_bw)
                    yield ("tick_push_all", cycles, out_channels, Data(state))
                if token.level > op.rank:
                    yield push_all(out_channels, stop_token(token.level - op.rank))
                state = op.fn.init()
                saw_value = False
            # stops below the reduction rank are internal to the group
        elif isinstance(token, Done):
            if saw_value:
                # streams that end without a trailing top-level stop
                yield push_all(out_channels, Data(state))
            yield push_all(out_channels, DONE)
            return


def scan_executor(op: Scan, ins: Sequence[Channel], outs: Sequence[Sequence[Channel]],
                  ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    state = op.fn.init()
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            value = token.value
            flops = op.fn.flops(value, state)
            state = op.fn(value, state)
            in_bytes = value_nbytes(value)
            out_bytes = value_nbytes(state) if state is not None else 0
            cycles = ctx.roofline_cycles(in_bytes, flops, out_bytes, op.compute_bw)
            ctx.record_onchip(out_bytes)
            ctx.record_element(cycles, flops)
            yield ("tick_push_all", cycles, out_channels, Data(state))
        elif isinstance(token, Stop):
            if token.level >= op.rank:
                state = op.fn.init()
            yield push_all(out_channels, token)
        elif isinstance(token, Done):
            yield push_all(out_channels, DONE)
            return


def _emit_expansion(builder: OutputBuilder, pieces, depth: int) -> List[Token]:
    """Serialize a (possibly nested) expansion produced by a FlatMap function.

    ``pieces`` is nested ``depth`` levels deep (``depth == 1`` means a flat list
    of values).  The caller closes the whole expansion with ``stop(rank)``.
    """
    tokens: List[Token] = []
    if depth <= 1:
        for value in pieces:
            tokens.extend(builder.data(value))
        return tokens
    for group in pieces:
        tokens.extend(_emit_expansion(builder, group, depth - 1))
        builder.stop(depth - 1)
    return tokens


def flatmap_executor(op: FlatMap, ins: Sequence[Channel], outs: Sequence[Sequence[Channel]],
                     ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    builder = OutputBuilder()
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            value = token.value
            pieces = op.fn(value)
            flops = op.fn.flops(value)
            in_bytes = value_nbytes(value)
            out_bytes = sum(value_nbytes(p) for p in _flatten_pieces(pieces))
            cycles = ctx.roofline_cycles(in_bytes, flops, out_bytes, op.compute_bw)
            ctx.record_element(cycles, flops)
            # Each input element expands into `rank` new innermost dimensions;
            # its expansion is closed by a stop of level `rank`.
            tokens = _emit_expansion(builder, pieces, op.rank)
            builder.stop(op.rank)
            yield ("tick_push_many", cycles, out_channels, tokens)
        elif isinstance(token, Stop):
            builder.stop(token.level + op.rank)
        elif isinstance(token, Done):
            yield push_tokens(out_channels, builder.done())
            return


def _flatten_pieces(pieces) -> List:
    if isinstance(pieces, (list, tuple)):
        out: List = []
        for piece in pieces:
            out.extend(_flatten_pieces(piece))
        return out
    return [pieces]
