"""Shared infrastructure for operator executors.

An *executor* is a generator implementing one operator's functional and timing
semantics against the engine's effect protocol (see :mod:`repro.sim.engine`).
Executors receive

* the operator instance (for its parameters),
* ``ins`` — one input :class:`~repro.sim.channel.Channel` per input port,
* ``outs`` — a list of channels per output port (an output port may feed
  several consumers, in which case tokens are broadcast, or none),
* an :class:`OpContext` carrying the hardware configuration, the metrics
  collector and lowering-derived facts (whether inputs/outputs touch on-chip
  memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ...core.dtypes import Tile, value_nbytes
from ...core.stream import DONE, Data, Token, stop_token
from ..channel import Channel
from ..metrics import SimMetrics


@dataclass
class HardwareConfig:
    """Hardware parameters of the simulated SDA (paper Sections 4.5 and 5.1)."""

    #: per-memory-unit on-chip bandwidth in bytes/cycle (64 in the evaluation)
    onchip_bandwidth: float = 64.0
    #: aggregate off-chip bandwidth in bytes/cycle (1024 in the evaluation)
    offchip_bandwidth: float = 1024.0
    #: fixed off-chip access latency in cycles
    offchip_latency: float = 100.0
    #: physical compute-tile edge (the fabric operates on 16x16 BF16 tiles)
    compute_tile: int = 16
    #: FIFO latency in cycles between adjacent operators
    channel_latency: float = 1.0
    #: default FIFO capacity (None = unbounded; see DESIGN.md)
    channel_capacity: Optional[int] = None
    #: "roofline" (Section 4.3, the cycle-approximate model) or "detailed"
    #: (physical-tile-granular timing used by the HDL-substitute reference)
    timing_model: str = "roofline"


@dataclass
class OpContext:
    """Per-operator context handed to its executor."""

    op_name: str
    metrics: SimMetrics
    hardware: HardwareConfig
    #: True when this operator's inputs are read from on-chip memory rather
    #: than arriving directly through FIFOs (charges the Roofline memory term)
    inputs_from_memory: bool = False
    #: True when this operator's outputs are written to on-chip memory
    outputs_to_memory: bool = False
    #: collected output tokens for program sinks (filled by collector/store executors)
    results: List[Token] = field(default_factory=list)

    # -- metric helpers ------------------------------------------------------------
    def record_element(self, cycles: float, flops: int = 0) -> None:
        self.metrics.record_element(self.op_name, cycles, flops)

    def record_onchip(self, nbytes: int) -> None:
        self.metrics.record_onchip(self.op_name, nbytes)

    def record_buffer(self, nbytes: int) -> None:
        self.metrics.record_buffer(self.op_name, nbytes)

    def roofline_cycles(self, in_bytes: float, flops: float, out_bytes: float,
                        compute_bw: float) -> float:
        """Per-element latency.

        In the default ``roofline`` timing model this is the Section 4.3
        equation.  The ``detailed`` model (used by the HDL-substitute reference
        simulator, Section 4.5) instead times the element at physical-tile
        granularity: compute is issued as 16x16x16 MAC tiles with an initiation
        interval of one per allocated tile engine, and on-chip transfers move
        one 16x16 physical tile per cycle, including the padding a real fabric
        would incur for partial tiles.
        """
        if self.hardware.timing_model == "detailed":
            return self._detailed_cycles(in_bytes, flops, out_bytes, compute_bw)
        best = 1.0
        if compute_bw > 0:
            term = flops / compute_bw
            if term > best:
                best = term
        onchip_bw = self.hardware.onchip_bandwidth
        if onchip_bw > 0:
            if self.inputs_from_memory:
                term = in_bytes / onchip_bw
                if term > best:
                    best = term
            if self.outputs_to_memory:
                term = out_bytes / onchip_bw
                if term > best:
                    best = term
        return best

    def _detailed_cycles(self, in_bytes: float, flops: float, out_bytes: float,
                         compute_bw: float) -> float:
        tile = self.hardware.compute_tile
        tile_bytes = tile * tile * 2  # BF16 physical tiles
        mac_tile_flops = 2 * tile * tile * tile
        tile_engines = max(1, int(compute_bw // (tile * tile * 2)))
        terms = [1.0]
        if flops > 0:
            mac_tiles = -(-int(flops) // mac_tile_flops)
            terms.append(mac_tiles / tile_engines)
        if self.inputs_from_memory and in_bytes > 0:
            terms.append(-(-int(in_bytes) // tile_bytes))
        if self.outputs_to_memory and out_bytes > 0:
            terms.append(-(-int(out_bytes) // tile_bytes))
        return float(max(terms))


class OutputBuilder:
    """Builds a well-formed output token sequence incrementally.

    The builder holds at most one pending stop token and merges adjacent stops
    into the highest level (the paper's absorption rule).  Methods return the
    list of tokens that became final, which the executor pushes to its output
    channels.
    """

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: Optional[int] = None

    def data(self, value) -> List[Token]:
        pending = self._pending
        if pending is None:
            return [Data(value)]
        self._pending = None
        return [stop_token(pending), Data(value)]

    def stop(self, level: int) -> List[Token]:
        if level >= 1:
            self._pending = level if self._pending is None else max(self._pending, level)
        return []

    def flush(self) -> List[Token]:
        if self._pending is None:
            return []
        level, self._pending = self._pending, None
        return [stop_token(level)]

    def done(self) -> List[Token]:
        return self.flush() + [DONE]

    @property
    def pending(self) -> Optional[int]:
        return self._pending


def push_all(channels: Sequence[Channel], token: Token) -> tuple:
    """The batched effect broadcasting ``token`` to every channel.

    Usage: ``yield push_all(outs, token)`` — one engine round-trip regardless
    of fan-out (previously a generator yielding one push per channel).
    """
    return ("push_all", channels, token)


def push_tokens(channels: Sequence[Channel], tokens: Sequence[Token]) -> tuple:
    """The batched effect pushing a token run to every channel (tokens outer).

    Usage: ``yield push_tokens(outs, tokens)``.  An empty run is a no-op
    effect, so callers may pass builder output unconditionally.
    """
    return ("push_many", channels, tokens)


def token_bytes(token: Token) -> int:
    """Byte size of a data token's payload (stop/done tokens are free)."""
    if isinstance(token, Data):
        return value_nbytes(token.value)
    return 0


def matmul_onchip_bytes(in_tile: Tile, weight_tile: Tile, out_tile: Optional[Tile],
                        compute_tile: int = 16) -> int:
    """Section 4.2 on-chip requirement for matmul Map/Accum operators.

    ``16 x in_tile_col + |weight tile| + |output tile|`` — the 16 factor mirrors
    the decomposition of STeP-level tiles into 16x16 hardware tiles; the output
    tile is included only for Accum (pass ``None`` otherwise).
    """
    total = compute_tile * in_tile.cols * in_tile.dtype.nbytes
    total += weight_tile.nbytes
    if out_tile is not None:
        total += out_tile.nbytes
    return total
