"""Executors for the shape operators: Flatten, Reshape, Promote, Expand, Repeat, Zip.

Shape operators only manipulate stop tokens; data values pass through
untouched (Reshape additionally inserts padding values and emits the padding
indicator stream).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core.dtypes import TupleValue
from ...core.errors import StreamProtocolError
from ...core.stream import DONE, Data, Done, Stop, stop_token
from ...ops.shape_ops import Expand, Flatten, Promote, Repeat, Reshape, Zip
from ..channel import Channel
from .common import OpContext, OutputBuilder, push_all, push_tokens


def flatten_executor(op: Flatten, ins: Sequence[Channel],
                     outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    span = op.max_level - op.min_level
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            yield push_all(out_channels, token)
        elif isinstance(token, Stop):
            level = token.level
            if level <= op.min_level:
                yield push_all(out_channels, token)
            elif level <= op.max_level:
                pass  # interior boundaries of the flattened range disappear
            else:
                yield push_all(out_channels, stop_token(level - span))
        elif isinstance(token, Done):
            yield push_all(out_channels, DONE)
            return


def reshape_executor(op: Reshape, ins: Sequence[Channel],
                     outs: Sequence[Sequence[Channel]], ctx: OpContext):
    data_outs = outs[0] if outs else []
    pad_outs = outs[1] if len(outs) > 1 else []
    channel = ins[0]
    data_builder = OutputBuilder()
    pad_builder = OutputBuilder()

    if op.level == 0:
        count = 0
        while True:
            token = yield ("pop", channel)
            if isinstance(token, Data):
                yield push_tokens(data_outs, data_builder.data(token.value))
                yield push_tokens(pad_outs, pad_builder.data(False))
                count += 1
                if count == op.chunk_size:
                    yield push_tokens(data_outs, data_builder.stop(1))
                    yield push_tokens(pad_outs, pad_builder.stop(1))
                    count = 0
            elif isinstance(token, (Stop, Done)):
                if count > 0:
                    while count < op.chunk_size:
                        yield push_tokens(data_outs, data_builder.data(op.pad))
                        yield push_tokens(pad_outs, pad_builder.data(True))
                        count += 1
                    count = 0
                    yield push_tokens(data_outs, data_builder.stop(1))
                    yield push_tokens(pad_outs, pad_builder.stop(1))
                if isinstance(token, Stop):
                    yield push_tokens(data_outs, data_builder.stop(token.level + 1))
                    yield push_tokens(pad_outs, pad_builder.stop(token.level + 1))
                else:
                    yield push_tokens(data_outs, data_builder.done())
                    yield push_tokens(pad_outs, pad_builder.done())
                    return
    else:
        groups = 0
        while True:
            token = yield ("pop", channel)
            if isinstance(token, Data):
                yield push_tokens(data_outs, data_builder.data(token.value))
                yield push_tokens(pad_outs, pad_builder.data(False))
            elif isinstance(token, Stop):
                if token.level < op.level:
                    yield push_tokens(data_outs, data_builder.stop(token.level))
                    yield push_tokens(pad_outs, pad_builder.stop(token.level))
                elif token.level == op.level:
                    groups += 1
                    if groups == op.chunk_size:
                        yield push_tokens(data_outs, data_builder.stop(op.level + 1))
                        yield push_tokens(pad_outs, pad_builder.stop(op.level + 1))
                        groups = 0
                    else:
                        yield push_tokens(data_outs, data_builder.stop(op.level))
                        yield push_tokens(pad_outs, pad_builder.stop(op.level))
                else:
                    groups = 0
                    yield push_tokens(data_outs, data_builder.stop(token.level + 1))
                    yield push_tokens(pad_outs, pad_builder.stop(token.level + 1))
            elif isinstance(token, Done):
                yield push_tokens(data_outs, data_builder.done())
                yield push_tokens(pad_outs, pad_builder.done())
                return


def promote_executor(op: Promote, ins: Sequence[Channel],
                     outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    held: Optional[int] = None
    saw_data = False
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            if held is not None:
                yield push_all(out_channels, stop_token(held))
                held = None
            saw_data = True
            yield push_all(out_channels, token)
        elif isinstance(token, Stop):
            if held is not None:
                yield push_all(out_channels, stop_token(held))
            held = token.level
        elif isinstance(token, Done):
            if held is not None:
                yield push_all(out_channels, stop_token(held + 1))
            elif saw_data:
                yield push_all(out_channels, stop_token(1))
            yield push_all(out_channels, DONE)
            return


def expand_executor(op: Expand, ins: Sequence[Channel],
                    outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    data_channel, ref_channel = ins
    current = None
    while True:
        token = yield ("pop", ref_channel)
        if isinstance(token, Data):
            if current is None:
                item = yield ("pop", data_channel)
                while isinstance(item, Stop):
                    item = yield ("pop", data_channel)
                if isinstance(item, Done):
                    raise StreamProtocolError(
                        f"{ctx.op_name}: input stream exhausted before the reference stream")
                current = item.value
            yield push_all(out_channels, Data(current))
        elif isinstance(token, Stop):
            if token.level >= op.rank:
                current = None
            yield push_all(out_channels, token)
        elif isinstance(token, Done):
            yield push_all(out_channels, DONE)
            return


def repeat_executor(op: Repeat, ins: Sequence[Channel],
                    outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    builder = OutputBuilder()
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            tokens = []
            for _ in range(op.count):
                tokens.extend(builder.data(token.value))
            builder.stop(1)
            yield push_tokens(out_channels, tokens)
        elif isinstance(token, Stop):
            builder.stop(token.level + 1)
        elif isinstance(token, Done):
            yield push_tokens(out_channels, builder.done())
            return


def zip_executor(op: Zip, ins: Sequence[Channel],
                 outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    while True:
        a, b = yield ("pop_each", ins)
        if isinstance(a, Done) or isinstance(b, Done):
            yield push_all(out_channels, DONE)
            return
        if isinstance(a, Stop) and isinstance(b, Stop):
            yield push_all(out_channels, stop_token(max(a.level, b.level)))
            continue
        if isinstance(a, Data) and isinstance(b, Data):
            yield push_all(out_channels, Data(TupleValue([a.value, b.value])))
            continue
        raise StreamProtocolError(
            f"{ctx.op_name}: zipped streams have mismatched structure ({a!r} vs {b!r})")
