"""Executors for the shape operators: Flatten, Reshape, Promote, Expand, Repeat, Zip.

Shape operators only manipulate stop tokens; data values pass through
untouched (Reshape additionally inserts padding values and emits the padding
indicator stream).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...core.dtypes import TupleValue
from ...core.errors import StreamProtocolError
from ...core.stream import Data, Done, Stop, Token
from ...ops.shape_ops import Expand, Flatten, Promote, Repeat, Reshape, Zip
from ..channel import Channel
from .common import OpContext, OutputBuilder, push_all, push_tokens


def flatten_executor(op: Flatten, ins: Sequence[Channel],
                     outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    span = op.max_level - op.min_level
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            yield from push_all(out_channels, token)
        elif isinstance(token, Stop):
            level = token.level
            if level <= op.min_level:
                yield from push_all(out_channels, token)
            elif level <= op.max_level:
                pass  # interior boundaries of the flattened range disappear
            else:
                yield from push_all(out_channels, Stop(level - span))
        elif isinstance(token, Done):
            yield from push_all(out_channels, Done())
            return


def reshape_executor(op: Reshape, ins: Sequence[Channel],
                     outs: Sequence[Sequence[Channel]], ctx: OpContext):
    data_outs = outs[0] if outs else []
    pad_outs = outs[1] if len(outs) > 1 else []
    channel = ins[0]
    data_builder = OutputBuilder()
    pad_builder = OutputBuilder()

    if op.level == 0:
        count = 0
        while True:
            token = yield ("pop", channel)
            if isinstance(token, Data):
                yield from push_tokens(data_outs, data_builder.data(token.value))
                yield from push_tokens(pad_outs, pad_builder.data(False))
                count += 1
                if count == op.chunk_size:
                    yield from push_tokens(data_outs, data_builder.stop(1))
                    yield from push_tokens(pad_outs, pad_builder.stop(1))
                    count = 0
            elif isinstance(token, (Stop, Done)):
                if count > 0:
                    while count < op.chunk_size:
                        yield from push_tokens(data_outs, data_builder.data(op.pad))
                        yield from push_tokens(pad_outs, pad_builder.data(True))
                        count += 1
                    count = 0
                    yield from push_tokens(data_outs, data_builder.stop(1))
                    yield from push_tokens(pad_outs, pad_builder.stop(1))
                if isinstance(token, Stop):
                    yield from push_tokens(data_outs, data_builder.stop(token.level + 1))
                    yield from push_tokens(pad_outs, pad_builder.stop(token.level + 1))
                else:
                    yield from push_tokens(data_outs, data_builder.done())
                    yield from push_tokens(pad_outs, pad_builder.done())
                    return
    else:
        groups = 0
        while True:
            token = yield ("pop", channel)
            if isinstance(token, Data):
                yield from push_tokens(data_outs, data_builder.data(token.value))
                yield from push_tokens(pad_outs, pad_builder.data(False))
            elif isinstance(token, Stop):
                if token.level < op.level:
                    yield from push_tokens(data_outs, data_builder.stop(token.level))
                    yield from push_tokens(pad_outs, pad_builder.stop(token.level))
                elif token.level == op.level:
                    groups += 1
                    if groups == op.chunk_size:
                        yield from push_tokens(data_outs, data_builder.stop(op.level + 1))
                        yield from push_tokens(pad_outs, pad_builder.stop(op.level + 1))
                        groups = 0
                    else:
                        yield from push_tokens(data_outs, data_builder.stop(op.level))
                        yield from push_tokens(pad_outs, pad_builder.stop(op.level))
                else:
                    groups = 0
                    yield from push_tokens(data_outs, data_builder.stop(token.level + 1))
                    yield from push_tokens(pad_outs, pad_builder.stop(token.level + 1))
            elif isinstance(token, Done):
                yield from push_tokens(data_outs, data_builder.done())
                yield from push_tokens(pad_outs, pad_builder.done())
                return


def promote_executor(op: Promote, ins: Sequence[Channel],
                     outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    held: Optional[int] = None
    saw_data = False
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            if held is not None:
                yield from push_all(out_channels, Stop(held))
                held = None
            saw_data = True
            yield from push_all(out_channels, token)
        elif isinstance(token, Stop):
            if held is not None:
                yield from push_all(out_channels, Stop(held))
            held = token.level
        elif isinstance(token, Done):
            if held is not None:
                yield from push_all(out_channels, Stop(held + 1))
            elif saw_data:
                yield from push_all(out_channels, Stop(1))
            yield from push_all(out_channels, Done())
            return


def expand_executor(op: Expand, ins: Sequence[Channel],
                    outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    data_channel, ref_channel = ins
    current = None
    while True:
        token = yield ("pop", ref_channel)
        if isinstance(token, Data):
            if current is None:
                item = yield ("pop", data_channel)
                while isinstance(item, Stop):
                    item = yield ("pop", data_channel)
                if isinstance(item, Done):
                    raise StreamProtocolError(
                        f"{ctx.op_name}: input stream exhausted before the reference stream")
                current = item.value
            yield from push_all(out_channels, Data(current))
        elif isinstance(token, Stop):
            if token.level >= op.rank:
                current = None
            yield from push_all(out_channels, token)
        elif isinstance(token, Done):
            yield from push_all(out_channels, Done())
            return


def repeat_executor(op: Repeat, ins: Sequence[Channel],
                    outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    channel = ins[0]
    builder = OutputBuilder()
    while True:
        token = yield ("pop", channel)
        if isinstance(token, Data):
            for _ in range(op.count):
                yield from push_tokens(out_channels, builder.data(token.value))
            yield from push_tokens(out_channels, builder.stop(1))
        elif isinstance(token, Stop):
            yield from push_tokens(out_channels, builder.stop(token.level + 1))
        elif isinstance(token, Done):
            yield from push_tokens(out_channels, builder.done())
            return


def zip_executor(op: Zip, ins: Sequence[Channel],
                 outs: Sequence[Sequence[Channel]], ctx: OpContext):
    out_channels = outs[0] if outs else []
    left, right = ins
    while True:
        a = yield ("pop", left)
        b = yield ("pop", right)
        if isinstance(a, Done) or isinstance(b, Done):
            yield from push_all(out_channels, Done())
            return
        if isinstance(a, Stop) and isinstance(b, Stop):
            yield from push_all(out_channels, Stop(max(a.level, b.level)))
            continue
        if isinstance(a, Data) and isinstance(b, Data):
            yield from push_all(out_channels, Data(TupleValue([a.value, b.value])))
            continue
        raise StreamProtocolError(
            f"{ctx.op_name}: zipped streams have mismatched structure ({a!r} vs {b!r})")
