"""Source and sink executors.

* :func:`input_source` feeds a pre-built token stream into the graph (the
  executor for :class:`~repro.core.graph.InputStream`).
* :func:`collector` drains a program output stream into ``ctx.results`` so the
  runner can return the produced tokens; collector processes are the engine's
  termination sinks.

Both move whole token runs per engine round-trip: an unpaced source pushes its
entire stream with one ``push_many`` effect, and the collector drains with
``pop_run`` batches.
"""

from __future__ import annotations

from typing import Sequence

from ...core.errors import StreamProtocolError
from ...core.stream import Data, Done, Token
from ..channel import Channel
from .common import OpContext, push_all, push_tokens

#: tokens drained per collector round-trip
_COLLECT_BATCH = 1024


def input_source(tokens: Sequence[Token], outs: Sequence[Sequence[Channel]], ctx: OpContext,
                 cycles_per_token: float = 0.0):
    """Push a pre-built token stream, optionally pacing it."""
    if not tokens or not isinstance(tokens[-1], Done):
        raise StreamProtocolError(
            f"input stream for {ctx.op_name} must end with Done")
    out_channels = outs[0] if outs else []
    if cycles_per_token:
        for token in tokens:
            if isinstance(token, Data):
                yield ("tick", cycles_per_token)
            yield push_all(out_channels, token)
    else:
        yield push_tokens(out_channels, list(tokens))
    ctx.record_element(0.0)


def collector(ins: Sequence[Channel], ctx: OpContext):
    """Drain one stream until Done, storing every token in ``ctx.results``."""
    channel = ins[0]
    results = ctx.results
    while True:
        run = yield ("pop_run", channel, _COLLECT_BATCH)
        for token in run:
            results.append(token)
            if isinstance(token, Done):
                return
