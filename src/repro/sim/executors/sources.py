"""Source and sink executors.

* :func:`input_source` feeds a pre-built token stream into the graph (the
  executor for :class:`~repro.core.graph.InputStream`).
* :func:`collector` drains a program output stream into ``ctx.results`` so the
  runner can return the produced tokens; collector processes are the engine's
  termination sinks.
"""

from __future__ import annotations

from typing import List, Sequence

from ...core.errors import StreamProtocolError
from ...core.stream import Data, Done, Stop, Token
from ..channel import Channel
from .common import OpContext, push_all, token_bytes


def input_source(tokens: Sequence[Token], outs: Sequence[Sequence[Channel]], ctx: OpContext,
                 cycles_per_token: float = 0.0):
    """Push a pre-built token stream, optionally pacing it."""
    if not tokens or not isinstance(tokens[-1], Done):
        raise StreamProtocolError(
            f"input stream for {ctx.op_name} must end with Done")
    out_channels = outs[0] if outs else []
    for token in tokens:
        if cycles_per_token and isinstance(token, Data):
            yield ("tick", cycles_per_token)
        yield from push_all(out_channels, token)
    ctx.record_element(0.0)


def collector(ins: Sequence[Channel], ctx: OpContext):
    """Drain one stream until Done, storing every token in ``ctx.results``."""
    channel = ins[0]
    while True:
        token = yield ("pop", channel)
        ctx.results.append(token)
        if isinstance(token, Done):
            break
