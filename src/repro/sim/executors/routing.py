"""Executors for the dynamic routing and merging operators.

Partition, Reassemble and EagerMerge move *chunks*: the data up to (and
including) the first stop token of level ``rank``.  Reassemble collects the
selected inputs of each selector element in arrival order (approximated by the
earliest-ready head token) without interleaving chunks; EagerMerge forwards
whichever input has a chunk available first and reports the origin of every
chunk on its selector output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...core.dtypes import Selector
from ...core.errors import StreamProtocolError
from ...core.stream import DONE, Data, Done, Stop, Token
from ...ops.routing import EagerMerge, Partition, Reassemble
from ..channel import Channel
from .common import OpContext, OutputBuilder, push_all, push_tokens


def _selected_indices(value, num_targets: int) -> List[int]:
    if isinstance(value, Selector):
        return list(value.indices)
    if isinstance(value, int):
        return [value]
    if isinstance(value, (list, tuple)):
        return [int(v) for v in value]
    raise StreamProtocolError(f"cannot interpret {value!r} as a selector over {num_targets}")


def partition_executor(op: Partition, ins: Sequence[Channel],
                       outs: Sequence[Sequence[Channel]], ctx: OpContext):
    data_channel, selector_channel = ins
    builders = [OutputBuilder() for _ in range(op.num_consumers)]
    input_done = False
    while True:
        token = yield ("pop", selector_channel)
        if isinstance(token, Done):
            for consumer, builder in enumerate(builders):
                yield push_tokens(outs[consumer], builder.done())
            return
        if isinstance(token, Stop):
            # the selector's outer structure is flattened into each branch's
            # fresh dynamic outer dimension
            continue
        targets = _selected_indices(token.value, op.num_consumers)
        # collect one chunk: everything up to the first stop of level >= rank
        chunk: List[Token] = []
        while not input_done:
            item = yield ("pop", data_channel)
            if isinstance(item, Done):
                input_done = True
                break
            if isinstance(item, Stop) and item.level >= op.rank:
                break
            chunk.append(item)
        if input_done and not chunk:
            # The routed stream is exhausted even though selectors keep coming.
            # This happens in dynamic parallelization (Figure 16), where the
            # availability feedback produces more selectors than there is work:
            # close every branch so downstream pipelines can finish.
            for consumer, builder in enumerate(builders):
                yield push_tokens(outs[consumer], builder.done())
            return
        ctx.record_element(1.0)
        yield ("tick", 1.0)
        for target in targets:
            builder = builders[target]
            tokens: List[Token] = []
            for item in chunk:
                if isinstance(item, Data):
                    tokens.extend(builder.data(item.value))
                elif isinstance(item, Stop):
                    builder.stop(item.level)
            builder.stop(op.rank)
            # Flush the chunk terminator immediately: the next token for this
            # branch may be arbitrarily far away (or never come), and downstream
            # pipelines — including the dynamic-parallelization feedback loop —
            # must observe the chunk boundary to make progress.
            tokens.extend(builder.flush())
            yield push_tokens(outs[target], tokens)


def _collect_chunk(channel: Channel, rank: int, first: Optional[Token] = None):
    """Pop one chunk (data up to the first stop >= rank) from ``channel``.

    Returns ``(items, finished)`` where ``finished`` is True when the stream's
    Done token was reached while collecting.
    """
    items: List[Token] = []
    token = first
    while True:
        if token is None:
            token = yield ("pop", channel)
        if isinstance(token, Done):
            return items, True
        if isinstance(token, Stop):
            if token.level >= rank and rank >= 1:
                return items, False
            if token.level < rank:
                items.append(token)
            # stops above the chunk rank that are not chunk terminators only
            # occur for rank == 0 streams; they carry no data and are dropped
        else:
            items.append(token)
            if rank == 0:
                return items, False
        token = None


def _emit_chunk(builder: OutputBuilder, items: Sequence[Token], rank: int) -> List[Token]:
    tokens: List[Token] = []
    for item in items:
        if isinstance(item, Data):
            tokens.extend(builder.data(item.value))
        elif isinstance(item, Stop):
            builder.stop(item.level)
    if rank >= 1:
        builder.stop(rank)
    return tokens


def reassemble_executor(op: Reassemble, ins: Sequence[Channel],
                        outs: Sequence[Sequence[Channel]], ctx: OpContext):
    data_channels = list(ins[:-1])
    selector_channel = ins[-1]
    out_channels = outs[0] if outs else []
    builder = OutputBuilder()
    while True:
        token = yield ("pop", selector_channel)
        if isinstance(token, Done):
            yield push_tokens(out_channels, builder.done())
            return
        if isinstance(token, Stop):
            builder.stop(token.level + op.rank + 1)
            continue
        remaining = _selected_indices(token.value, op.num_producers)
        while remaining:
            if len(remaining) == 1:
                index = remaining[0]
                first = None
            else:
                # collect from whichever selected input has data available first
                chans = [data_channels[i] for i in remaining]
                which, first = yield ("pop_any", chans)
                index = remaining[which]
            items, _ = yield from _collect_chunk(data_channels[index], op.rank, first)
            yield push_tokens(out_channels, _emit_chunk(builder, items, op.rank))
            remaining = [i for i in remaining if i != index]
        ctx.record_element(1.0)
        yield ("tick", 1.0)
        # after draining every selected input, the group closes one level up
        builder.stop(op.rank + 1)


def eager_merge_executor(op: EagerMerge, ins: Sequence[Channel],
                         outs: Sequence[Sequence[Channel]], ctx: OpContext):
    data_outs = outs[0] if outs else []
    selector_outs = outs[1] if len(outs) > 1 else []
    builder = OutputBuilder()
    live = list(range(op.num_producers))
    while live:
        chans = [ins[i] for i in live]
        which, first = yield ("pop_any", chans)
        index = live[which]
        if isinstance(first, Done):
            live.remove(index)
            continue
        if isinstance(first, Stop):
            # outer structure of the input streams is flattened away
            continue
        items, finished = yield from _collect_chunk(ins[index], op.rank, first)
        ctx.record_element(1.0)
        # As in Partition, chunk terminators are flushed eagerly so consumers
        # (e.g. the availability loop of dynamic parallelization) see them now.
        tokens = _emit_chunk(builder, items, op.rank) + builder.flush()
        yield ("tick_push_many", 1.0, data_outs, tokens)
        yield push_all(selector_outs, Data(Selector(index, op.num_producers)))
        if finished:
            live.remove(index)
    yield push_tokens(data_outs, builder.done())
    yield push_all(selector_outs, DONE)
