"""Executor registry: maps operator kinds to their simulator executors."""

from __future__ import annotations

from typing import Callable, Dict

from ...core.errors import SimulationError
from ...ops.base import Operator
from .common import HardwareConfig, OpContext, OutputBuilder, push_all, push_tokens
from . import compute, memory, routing, shape, sources

#: operator kind -> executor generator function(op, ins, outs, ctx)
EXECUTORS: Dict[str, Callable] = {
    "Map": compute.map_executor,
    "Accum": compute.accum_executor,
    "Scan": compute.scan_executor,
    "FlatMap": compute.flatmap_executor,
    "LinearOffChipLoad": memory.linear_offchip_load_executor,
    "LinearOffChipLoadRef": memory.linear_offchip_load_executor,
    "LinearOffChipStore": memory.linear_offchip_store_executor,
    "RandomOffChipLoad": memory.random_offchip_load_executor,
    "RandomOffChipStore": memory.random_offchip_store_executor,
    "Bufferize": memory.bufferize_executor,
    "Streamify": memory.streamify_executor,
    "Partition": routing.partition_executor,
    "Reassemble": routing.reassemble_executor,
    "EagerMerge": routing.eager_merge_executor,
    "Flatten": shape.flatten_executor,
    "Reshape": shape.reshape_executor,
    "Promote": shape.promote_executor,
    "Expand": shape.expand_executor,
    "Repeat": shape.repeat_executor,
    "Zip": shape.zip_executor,
}


def executor_for(op: Operator) -> Callable:
    """Look up the executor for an operator instance."""
    try:
        return EXECUTORS[op.kind]
    except KeyError:
        raise SimulationError(f"no executor registered for operator kind {op.kind!r}") from None


__all__ = [
    "EXECUTORS",
    "executor_for",
    "HardwareConfig",
    "OpContext",
    "OutputBuilder",
    "push_all",
    "push_tokens",
    "sources",
]
