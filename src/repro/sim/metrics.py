"""Simulation metrics (paper Sections 4.2, 5.1 and Figures 12/13).

The metrics the paper reports are: cycles, off-chip memory traffic, on-chip
memory requirement, allocated compute resources, compute-resource utilization
and off-chip memory-bandwidth utilization.  :class:`SimMetrics` accumulates
the per-operator observations the executors record and derives those
aggregates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class OperatorStats:
    """Per-operator counters recorded during simulation."""

    elements: int = 0
    flops: int = 0
    busy_cycles: float = 0.0
    offchip_bytes_read: int = 0
    offchip_bytes_written: int = 0
    onchip_bytes: int = 0          # §4.2 per-operator on-chip requirement (max over time)
    compute_bw: int = 0            # allocated FLOPs/cycle (0 for non-compute operators)
    max_buffer_bytes: int = 0      # largest single buffer materialized (Bufferize/Accum)

    @property
    def offchip_bytes(self) -> int:
        return self.offchip_bytes_read + self.offchip_bytes_written


class SimMetrics:
    """Aggregated metrics for one simulation run."""

    def __init__(self) -> None:
        self.per_op: Dict[str, OperatorStats] = defaultdict(OperatorStats)
        self.cycles: float = 0.0
        self.first_offchip_time: Optional[float] = None
        self.last_offchip_time: float = 0.0
        self.offchip_bandwidth: float = 0.0
        self.events: int = 0

    # -- recording (called by executors / the engine) -----------------------------
    def stats(self, op_name: str) -> OperatorStats:
        return self.per_op[op_name]

    def record_element(self, op_name: str, cycles: float, flops: int = 0) -> None:
        stats = self.per_op[op_name]
        stats.elements += 1
        stats.flops += flops
        stats.busy_cycles += cycles

    def record_offchip(self, op_name: str, nbytes: int, time: float,
                       is_write: bool = False) -> None:
        stats = self.per_op[op_name]
        if is_write:
            stats.offchip_bytes_written += nbytes
        else:
            stats.offchip_bytes_read += nbytes
        if self.first_offchip_time is None or time < self.first_offchip_time:
            self.first_offchip_time = time
        self.last_offchip_time = max(self.last_offchip_time, time)

    def record_onchip(self, op_name: str, nbytes: int) -> None:
        stats = self.per_op[op_name]
        stats.onchip_bytes = max(stats.onchip_bytes, int(nbytes))

    def record_buffer(self, op_name: str, nbytes: int) -> None:
        stats = self.per_op[op_name]
        stats.max_buffer_bytes = max(stats.max_buffer_bytes, int(nbytes))

    def record_compute_bw(self, op_name: str, compute_bw: int) -> None:
        self.per_op[op_name].compute_bw = int(compute_bw)

    # -- aggregates ----------------------------------------------------------------
    @property
    def offchip_traffic(self) -> int:
        """Total off-chip bytes moved (reads + writes)."""
        return sum(s.offchip_bytes for s in self.per_op.values())

    @property
    def offchip_traffic_read(self) -> int:
        return sum(s.offchip_bytes_read for s in self.per_op.values())

    @property
    def offchip_traffic_written(self) -> int:
        return sum(s.offchip_bytes_written for s in self.per_op.values())

    @property
    def onchip_memory(self) -> int:
        """Total on-chip memory requirement (sum of per-operator requirements)."""
        return sum(s.onchip_bytes for s in self.per_op.values())

    @property
    def total_flops(self) -> int:
        return sum(s.flops for s in self.per_op.values())

    @property
    def allocated_compute(self) -> int:
        """Sum of allocated compute bandwidth over compute operators (FLOPs/cycle)."""
        return sum(s.compute_bw for s in self.per_op.values())

    def compute_utilization(self, cycles: Optional[float] = None) -> float:
        """Achieved FLOPs / (cycles × allocated FLOPs per cycle)."""
        cycles = self.cycles if cycles is None else cycles
        allocated = self.allocated_compute
        if cycles <= 0 or allocated <= 0:
            return 0.0
        return self.total_flops / (cycles * allocated)

    def offchip_bw_utilization(self, cycles: Optional[float] = None) -> float:
        """Fraction of the off-chip bandwidth used over the whole run."""
        cycles = self.cycles if cycles is None else cycles
        if cycles <= 0 or self.offchip_bandwidth <= 0:
            return 0.0
        return min(1.0, self.offchip_traffic / (self.offchip_bandwidth * cycles))

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "offchip_traffic_bytes": float(self.offchip_traffic),
            "onchip_memory_bytes": float(self.onchip_memory),
            "total_flops": float(self.total_flops),
            "allocated_compute": float(self.allocated_compute),
            "compute_utilization": self.compute_utilization(),
            "offchip_bw_utilization": self.offchip_bw_utilization(),
        }
