"""Off-chip (HBM) memory timing models.

The paper's simulator drives off-chip timing with a node that emulates
Ramulator 2.0; the evaluation configures an HBM2 subsystem and an aggregate
off-chip bandwidth of 1024 bytes/cycle (Section 5.1).  We provide two models:

* :class:`HBMModel` — an aggregate bandwidth/latency model used by the
  cycle-approximate simulator.  Bandwidth is tracked with a *ledger* of
  per-window byte budgets, so requests presented out of order (processes run
  until they block, and their local clocks are not globally ordered) still
  contend only for the bandwidth of the cycles they actually overlap.
  Requests pipeline: the fixed access latency delays the data's arrival but
  does not stall the issuing unit.
* :class:`BankedHBM` — a banked model with per-bank row buffers and burst
  granularity, used by the HDL-substitute reference simulator
  (:mod:`repro.hdl`) so that the Figure 8 validation compares the Roofline
  abstraction against a more detailed memory system.

Both expose ``access(request_time, nbytes, ...) -> completion_time`` plus
``issue_done(completion)`` helpers used by the engine to decide how far the
issuing process's clock advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class BandwidthLedger:
    """Byte budgets per fixed-size time window.

    A request starting at ``time`` consumes budget from its window onward;
    earlier windows keep whatever budget they had, so a late-arriving request
    with an early timestamp is not penalized by requests that were *processed*
    earlier but logically happen later.
    """

    __slots__ = ("bandwidth", "window", "_used")

    def __init__(self, bandwidth: float, window: float = 64.0):
        self.bandwidth = float(bandwidth)
        self.window = float(window)
        self._used: Dict[int, float] = {}

    def reserve(self, time: float, nbytes: float) -> float:
        """Schedule ``nbytes`` starting no earlier than ``time``; returns finish time."""
        if nbytes <= 0 or self.bandwidth <= 0:
            return time
        capacity = self.bandwidth * self.window
        index = max(0, int(time // self.window))
        remaining = float(nbytes)
        finish = time
        first = True
        while remaining > 0:
            used = self._used.get(index, 0.0)
            free = capacity - used
            if first:
                # the request cannot use the part of its first window that lies
                # before its own start time
                elapsed = max(0.0, time - index * self.window)
                free = max(0.0, capacity - used - elapsed * self.bandwidth)
                first = False
            if free <= 0:
                index += 1
                continue
            take = min(free, remaining)
            self._used[index] = used + take
            remaining -= take
            finish = index * self.window + (self._used[index] / self.bandwidth)
            index += 1
        return max(finish, time)

    def reset(self) -> None:
        self._used.clear()


@dataclass
class HBMModel:
    """Aggregate off-chip memory model (bandwidth ledger + fixed access latency)."""

    bandwidth: float = 1024.0
    latency: float = 100.0
    #: ledger window in cycles (granularity of bandwidth accounting)
    window: float = 64.0
    total_bytes_read: int = field(default=0, init=False)
    total_bytes_written: int = field(default=0, init=False)
    total_requests: int = field(default=0, init=False)
    last_completion: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self._ledger = BandwidthLedger(self.bandwidth, self.window)

    def access(self, request_time: float, nbytes: int, is_write: bool = False) -> float:
        """Issue a request; returns the completion time (data available)."""
        if nbytes < 0:
            raise ValueError(f"negative request size {nbytes}")
        finish = self._ledger.reserve(request_time, nbytes)
        completion = finish + self.latency
        self.total_requests += 1
        if is_write:
            self.total_bytes_written += nbytes
        else:
            self.total_bytes_read += nbytes
        self.last_completion = max(self.last_completion, completion)
        return completion

    def issue_done(self, completion: float) -> float:
        """Time at which the issuing unit may issue its next request.

        The access latency pipelines with subsequent requests, so the issuer is
        only held back by the bandwidth-scheduled finish time.
        """
        return max(0.0, completion - self.latency)

    @property
    def total_bytes(self) -> int:
        return self.total_bytes_read + self.total_bytes_written

    def utilization(self, total_cycles: float) -> float:
        """Fraction of the peak bandwidth used over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.total_bytes / (self.bandwidth * total_cycles))

    def reset(self) -> None:
        self.total_bytes_read = 0
        self.total_bytes_written = 0
        self.total_requests = 0
        self.last_completion = 0.0
        self._ledger.reset()


@dataclass
class BankedHBM:
    """Banked HBM model with row buffers, used by the HDL-substitute simulator.

    Requests are split into bursts; each burst is steered to a bank by its
    address and pays a row-activation penalty on a row-buffer miss.  The
    channel data bus is shared through a bandwidth ledger, and per-bank service
    adds on top of the bus schedule.
    """

    num_banks: int = 32
    burst_bytes: int = 64
    row_bytes: int = 1024
    t_row_hit: float = 2.0
    t_row_miss: float = 18.0
    bus_bandwidth: float = 1024.0
    latency: float = 120.0
    window: float = 64.0

    def __post_init__(self) -> None:
        self._bus = BandwidthLedger(self.bus_bandwidth, self.window)
        self._bank_open_row: List[Optional[int]] = [None] * self.num_banks
        self.total_bytes_read = 0
        self.total_bytes_written = 0
        self.total_requests = 0
        self.row_hits = 0
        self.row_misses = 0

    #: kept for interface parity with HBMModel
    @property
    def bandwidth(self) -> float:
        return self.bus_bandwidth

    def access(self, request_time: float, nbytes: int, address: int = 0,
               is_write: bool = False) -> float:
        """Issue a request starting at ``address``; returns the completion time."""
        if nbytes <= 0:
            return request_time + self.latency
        bank_service = 0.0
        offset = 0
        while offset < nbytes:
            burst = min(self.burst_bytes, nbytes - offset)
            addr = address + offset
            bank = (addr // self.row_bytes) % self.num_banks
            row = addr // (self.row_bytes * self.num_banks)
            if self._bank_open_row[bank] == row:
                bank_service += self.t_row_hit
                self.row_hits += 1
            else:
                bank_service += self.t_row_miss
                self.row_misses += 1
                self._bank_open_row[bank] = row
            offset += burst
        # bank service across banks overlaps with bus transfer; we charge the
        # maximum of bus time and the average per-bank service time.
        bus_finish = self._bus.reserve(request_time, nbytes)
        service_finish = request_time + bank_service / max(1, self.num_banks // 4)
        completion = max(bus_finish, service_finish) + self.latency
        self.total_requests += 1
        if is_write:
            self.total_bytes_written += nbytes
        else:
            self.total_bytes_read += nbytes
        return completion

    def issue_done(self, completion: float) -> float:
        return max(0.0, completion - self.latency)

    @property
    def total_bytes(self) -> int:
        return self.total_bytes_read + self.total_bytes_written

    def utilization(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.total_bytes / (self.bus_bandwidth * total_cycles))

    def reset(self) -> None:
        self.__post_init__()
