"""The simulation engine: a timed Kahn-process-network executor.

Every STeP operator becomes a :class:`Process` wrapping a Python generator
(its *executor*).  Executors interact with the world only by yielding effect
tuples, which the engine services synchronously:

====================  =====================================================
``("pop", ch)``        pop one token from ``ch`` (blocks while empty); the
                       process clock advances to the token's ready time.
``("pop_any", chs)``   pop from whichever channel has the earliest-ready
                       head token (blocks while all are empty); returns
                       ``(index, token)``.
``("peek", ch)``       like pop but leaves the token in place.
``("push", ch, tok)``  append a token (blocks while the channel is full).
``("tick", cycles)``   advance the process clock by ``cycles``.
``("hbm", nbytes, is_write, addr)``  issue an off-chip memory request; the
                       process clock advances to its completion time.
``("time",)``          returns the current process clock.
====================  =====================================================

Processes run until they block; pushes and pops wake the relevant waiters, so
scheduling work is proportional to the number of tokens moved.  With
``timed=False`` all latencies collapse to zero and the engine doubles as a
functional reference interpreter.

This mirrors the execution model of the Dataflow Abstract Machine framework
underlying the paper's Rust simulator: asynchronous blocks with local clocks
communicating over time-stamped FIFOs.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Callable, Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import DeadlockError, SimulationError
from .channel import Channel
from .hbm import BankedHBM, HBMModel
from .metrics import SimMetrics


class ProcessState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


class Process:
    """A simulated asynchronous dataflow block."""

    __slots__ = ("name", "generator", "state", "local_time", "pending_effect",
                 "pending_send", "blocked_on", "was_backpressured", "is_sink")

    def __init__(self, name: str, generator: Generator, is_sink: bool = False):
        self.name = name
        self.generator = generator
        self.state = ProcessState.RUNNABLE
        self.local_time: float = 0.0
        #: effect to retry when the process is woken up
        self.pending_effect: Optional[tuple] = None
        #: value to send into the generator on the next resume
        self.pending_send = None
        #: channels this process is currently blocked on (for diagnostics/wakeup)
        self.blocked_on: List[Channel] = []
        self.was_backpressured = False
        self.is_sink = is_sink

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Process({self.name}, {self.state.value}, t={self.local_time:.1f})"


class Engine:
    """Schedules processes, services effects and tracks global metrics.

    Scheduling is *time ordered*: runnable processes are kept in a priority
    queue keyed by their local clock, and a process only runs until its clock
    exceeds the earliest other runnable process by ``time_slack`` cycles before
    being rescheduled.  This keeps the shared-resource models (the HBM
    bandwidth ledger, EagerMerge arrival order, the dynamic-parallelization
    availability loop) seeing events approximately in timestamp order even
    though each process is a run-until-blocked coroutine.
    """

    def __init__(self, timed: bool = True, hbm: Optional[HBMModel] = None,
                 metrics: Optional[SimMetrics] = None, max_events: int = 200_000_000,
                 time_slack: float = 200.0):
        self.timed = timed
        self.hbm = hbm if hbm is not None else HBMModel()
        self.metrics = metrics if metrics is not None else SimMetrics()
        self.metrics.offchip_bandwidth = getattr(self.hbm, "bandwidth",
                                                 getattr(self.hbm, "bus_bandwidth", 0.0))
        self.processes: List[Process] = []
        self.channels: List[Channel] = []
        #: priority queue of (local_time, sequence, process)
        self._runnable: List[Tuple[float, int, Process]] = []
        self._queue_seq = 0
        #: channel -> processes waiting for data on it
        self._data_waiters: Dict[int, List[Process]] = {}
        #: channel -> processes waiting for space on it
        self._space_waiters: Dict[int, List[Process]] = {}
        self.max_events = max_events
        self.time_slack = float(time_slack)
        self._events = 0

    # -- construction --------------------------------------------------------------
    def add_channel(self, name: str = "", capacity: Optional[int] = None,
                    latency: float = 1.0) -> Channel:
        channel = Channel(name=name, capacity=capacity,
                          latency=latency if self.timed else 0.0)
        self.channels.append(channel)
        return channel

    def add_process(self, name: str, generator: Generator, is_sink: bool = False) -> Process:
        process = Process(name, generator, is_sink=is_sink)
        self.processes.append(process)
        self._enqueue(process)
        return process

    def _enqueue(self, process: Process) -> None:
        self._queue_seq += 1
        heapq.heappush(self._runnable, (process.local_time, self._queue_seq, process))

    # -- main loop -------------------------------------------------------------------
    def run(self) -> SimMetrics:
        """Run until every sink process finishes (or every process finishes)."""
        sinks = [p for p in self.processes if p.is_sink]
        while self._runnable:
            if sinks and all(p.state is ProcessState.DONE for p in sinks):
                break
            _, _, process = heapq.heappop(self._runnable)
            if process.state is ProcessState.DONE:
                continue
            process.state = ProcessState.RUNNABLE
            horizon = float("inf")
            if self.timed and self._runnable:
                horizon = self._runnable[0][0] + self.time_slack
            self._advance(process, horizon)

        if sinks and not all(p.state is ProcessState.DONE for p in sinks):
            blocked = [f"{p.name} blocked on {[c.name for c in p.blocked_on]}"
                       for p in self.processes if p.state is ProcessState.BLOCKED]
            raise DeadlockError(
                "simulation deadlocked before all sinks completed", blocked=blocked)

        self.metrics.cycles = self.total_cycles()
        self.metrics.events = self._events
        return self.metrics

    def total_cycles(self) -> float:
        """Total execution time: the latest local clock across all processes."""
        if not self.processes:
            return 0.0
        return max(p.local_time for p in self.processes)

    # -- process advancement ------------------------------------------------------------
    def _advance(self, process: Process, horizon: float = float("inf")) -> None:
        """Run ``process`` until it blocks, finishes or overruns ``horizon``."""
        generator = process.generator
        while True:
            if process.local_time > horizon and process.state is ProcessState.RUNNABLE:
                # yield the CPU back to earlier-in-time processes
                self._enqueue(process)
                return
            self._events += 1
            if self._events > self.max_events:
                raise SimulationError(
                    f"exceeded the event budget ({self.max_events}); "
                    f"likely a livelock in the program graph")
            effect = process.pending_effect
            if effect is None:
                try:
                    effect = generator.send(process.pending_send)
                except StopIteration:
                    process.state = ProcessState.DONE
                    process.pending_send = None
                    return
                process.pending_send = None
            else:
                process.pending_effect = None

            handled, result = self._apply_effect(process, effect)
            if not handled:
                # the effect blocked; it was stored for retry and the process
                # was registered as a waiter.
                return
            process.pending_send = result

    def _apply_effect(self, process: Process, effect: tuple) -> Tuple[bool, object]:
        kind = effect[0]
        if kind == "push":
            return self._do_push(process, effect[1], effect[2])
        if kind == "push_at":
            return self._do_push(process, effect[1], effect[2], at_time=effect[3])
        if kind == "pop":
            return self._do_pop(process, effect[1])
        if kind == "pop_any":
            return self._do_pop_any(process, effect[1])
        if kind == "peek":
            return self._do_peek(process, effect[1])
        if kind == "tick":
            if self.timed:
                process.local_time += float(effect[1])
            return True, None
        if kind == "hbm":
            return self._do_hbm(process, *effect[1:])
        if kind == "time":
            return True, process.local_time
        raise SimulationError(f"unknown effect {effect!r} from process {process.name}")

    # -- effect implementations -----------------------------------------------------------
    def _do_push(self, process: Process, channel: Channel, token,
                 at_time: Optional[float] = None) -> Tuple[bool, object]:
        if channel.full:
            effect = ("push", channel, token) if at_time is None else \
                ("push_at", channel, token, at_time)
            self._block(process, effect, [channel], space=True)
            return False, None
        if process.was_backpressured:
            process.local_time = max(process.local_time, channel.last_pop_time)
            process.was_backpressured = False
        push_time = process.local_time
        if at_time is not None and self.timed:
            push_time = max(push_time, float(at_time))
        channel.push(token, push_time)
        self._wake_data_waiters(channel)
        return True, None

    def _do_pop(self, process: Process, channel: Channel) -> Tuple[bool, object]:
        if channel.empty:
            self._block(process, ("pop", channel), [channel], space=False)
            return False, None
        ready, token = channel.pop(process.local_time)
        if self.timed:
            process.local_time = max(process.local_time, ready)
        self._wake_space_waiters(channel)
        return True, token

    def _do_peek(self, process: Process, channel: Channel) -> Tuple[bool, object]:
        if channel.empty:
            self._block(process, ("peek", channel), [channel], space=False)
            return False, None
        ready, token = channel.queue[0]
        if self.timed:
            process.local_time = max(process.local_time, ready)
        return True, token

    def _do_pop_any(self, process: Process, channels: Sequence[Channel]) -> Tuple[bool, object]:
        best_index = -1
        best_ready = None
        for index, channel in enumerate(channels):
            head = channel.head_ready_time()
            if head is None:
                continue
            if best_ready is None or head < best_ready:
                best_ready = head
                best_index = index
        if best_index < 0:
            self._block(process, ("pop_any", list(channels)), list(channels), space=False)
            return False, None
        channel = channels[best_index]
        ready, token = channel.pop(process.local_time)
        if self.timed:
            process.local_time = max(process.local_time, ready)
        self._wake_space_waiters(channel)
        return True, (best_index, token)

    def _do_hbm(self, process: Process, nbytes: int, is_write: bool = False,
                address: int = 0) -> Tuple[bool, object]:
        """Issue an off-chip request.

        The issuing process's clock advances only to the bandwidth-scheduled
        finish time (requests pipeline through the access latency); the full
        completion time is returned so load executors can stamp the fetched
        data with it (via the ``push_at`` effect).
        """
        request_time = process.local_time
        if isinstance(self.hbm, BankedHBM):
            completion = self.hbm.access(request_time, nbytes, address=address,
                                         is_write=is_write)
        else:
            completion = self.hbm.access(request_time, nbytes, is_write=is_write)
        if self.timed:
            process.local_time = max(process.local_time, self.hbm.issue_done(completion))
        else:
            completion = request_time
        self.metrics.record_offchip(process.name, nbytes, request_time, is_write=is_write)
        return True, completion

    # -- blocking / wake-up ------------------------------------------------------------------
    def _block(self, process: Process, effect: tuple, channels: List[Channel],
               space: bool) -> None:
        process.pending_effect = effect
        process.state = ProcessState.BLOCKED
        process.blocked_on = channels
        if space:
            process.was_backpressured = True
        waiters = self._space_waiters if space else self._data_waiters
        for channel in channels:
            queue = waiters.setdefault(channel.channel_id, [])
            if process not in queue:
                queue.append(process)

    def _wake(self, process: Process) -> None:
        if process.state is ProcessState.BLOCKED:
            process.state = ProcessState.RUNNABLE
            process.blocked_on = []
            self._enqueue(process)

    def _wake_data_waiters(self, channel: Channel) -> None:
        waiters = self._data_waiters.pop(channel.channel_id, None)
        if waiters:
            for process in waiters:
                self._wake(process)

    def _wake_space_waiters(self, channel: Channel) -> None:
        waiters = self._space_waiters.pop(channel.channel_id, None)
        if waiters:
            for process in waiters:
                self._wake(process)
