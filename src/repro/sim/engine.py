"""The simulation engine: a timed Kahn-process-network executor.

Every STeP operator becomes a :class:`Process` wrapping a Python generator
(its *executor*).  Executors interact with the world only by yielding effect
tuples, which the engine services synchronously:

====================  =====================================================
``("pop", ch)``        pop one token from ``ch`` (blocks while empty); the
                       process clock advances to the token's ready time.
``("pop_any", chs)``   pop from whichever channel has the earliest-ready
                       head token (blocks while all are empty); returns
                       ``(index, token)``.
``("pop_each", chs)``  pop one token from every channel, in order (blocks
                       on each empty channel); returns the token list.
``("pop_run", ch, n)`` pop up to ``n`` immediately available tokens
                       (blocks while empty); returns a non-empty list.
``("peek", ch)``       like pop but leaves the token in place.
``("push", ch, tok)``  append a token (blocks while the channel is full).
``("push_all", chs, tok)``      broadcast one token to every channel.
``("push_many", chs, toks)``    broadcast a token run to every channel
                                (tokens outer, channels inner).
``("push_many_at", chs, toks, t)``  like push_many with an explicit
                                visibility timestamp (cf. ``push_at``).
``("tick", cycles)``   advance the process clock by ``cycles``.
``("hbm", nbytes, is_write, addr)``  issue an off-chip memory request; the
                       process clock advances to its completion time.
``("time",)``          returns the current process clock.
====================  =====================================================

Processes run until they block; pushes and pops wake the relevant waiters, so
scheduling work is proportional to the number of tokens moved.  The batched
effects (``push_many`` / ``pop_each`` / ``pop_run``) move whole token runs per
engine round-trip while preserving the exact per-token semantics of their
scalar counterparts: the handlers apply the same clock updates, backpressure
bookkeeping and ``time_slack`` horizon checks at the same points a sequence of
scalar effects would, so simulated timing is bit-identical.  With
``timed=False`` all latencies collapse to zero and the engine doubles as a
functional reference interpreter.

This mirrors the execution model of the Dataflow Abstract Machine framework
underlying the paper's Rust simulator: asynchronous blocks with local clocks
communicating over time-stamped FIFOs.
"""

from __future__ import annotations

import enum
from heapq import heappop, heappush
from typing import Generator, List, Optional, Sequence, Tuple

from ..core.errors import DeadlockError, SimulationError
from .channel import Channel
from .hbm import BankedHBM, HBMModel
from .metrics import SimMetrics

_INF = float("inf")

#: sentinel returned by effect handlers when the process cannot continue now:
#: either it blocked (the effect was stored for retry and the process was
#: registered as a waiter) or a batched effect overran the horizon (the
#: remainder was stored and the process re-enqueued).  Any other return value
#: is the effect's result, sent into the generator on the next resume.
_SUSPEND = object()


class ProcessState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


class Process:
    """A simulated asynchronous dataflow block."""

    __slots__ = ("name", "generator", "state", "local_time", "pending_effect",
                 "pending_send", "blocked_on", "was_backpressured", "is_sink")

    def __init__(self, name: str, generator: Generator, is_sink: bool = False):
        self.name = name
        self.generator = generator
        self.state = ProcessState.RUNNABLE
        self.local_time: float = 0.0
        #: effect to retry when the process is woken up
        self.pending_effect: Optional[tuple] = None
        #: value to send into the generator on the next resume
        self.pending_send = None
        #: channels this process is currently blocked on (for diagnostics/wakeup)
        self.blocked_on: List[Channel] = []
        self.was_backpressured = False
        self.is_sink = is_sink

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Process({self.name}, {self.state.value}, t={self.local_time:.1f})"


class Engine:
    """Schedules processes, services effects and tracks global metrics.

    Scheduling is *time ordered*: runnable processes are kept in a priority
    queue keyed by their local clock, and a process only runs until its clock
    exceeds the earliest other runnable process by ``time_slack`` cycles before
    being rescheduled.  This keeps the shared-resource models (the HBM
    bandwidth ledger, EagerMerge arrival order, the dynamic-parallelization
    availability loop) seeing events approximately in timestamp order even
    though each process is a run-until-blocked coroutine.
    """

    def __init__(self, timed: bool = True, hbm: Optional[HBMModel] = None,
                 metrics: Optional[SimMetrics] = None, max_events: int = 200_000_000,
                 time_slack: float = 200.0):
        self.timed = timed
        self.hbm = hbm if hbm is not None else HBMModel()
        self.metrics = metrics if metrics is not None else SimMetrics()
        self.metrics.offchip_bandwidth = getattr(self.hbm, "bandwidth",
                                                 getattr(self.hbm, "bus_bandwidth", 0.0))
        self.processes: List[Process] = []
        self.channels: List[Channel] = []
        #: priority queue of (local_time, sequence, process)
        self._runnable: List[Tuple[float, int, Process]] = []
        self._queue_seq = 0
        self.max_events = max_events
        self.time_slack = float(time_slack)
        self._events = 0
        self._sinks_pending = 0
        #: effect kind -> bound handler(process, effect, horizon); handlers
        #: return the effect result, or _SUSPEND when the process parked
        self._handlers = {
            "push": self._do_push,
            "push_at": self._do_push_at,
            "push_all": self._do_push_all,
            "push_many": self._do_push_many,
            "push_many_at": self._do_push_many_at,
            "push_run": self._do_push_run,       # internal resume of batched pushes
            "tick_push_all": self._do_tick_push_all,
            "tick_push_many": self._do_tick_push_many,
            "hbm_push": self._do_hbm_push,
            "pop": self._do_pop,
            "pop_any": self._do_pop_any,
            "pop_each": self._do_pop_each,
            "pop_each_run": self._do_pop_each_run,  # internal resume of pop_each
            "pop_run": self._do_pop_run,
            "peek": self._do_peek,
            "hbm": self._do_hbm,
            "time": self._do_time,
        }

    # -- construction --------------------------------------------------------------
    def add_channel(self, name: str = "", capacity: Optional[int] = None,
                    latency: float = 1.0) -> Channel:
        channel = Channel(name=name, capacity=capacity,
                          latency=latency if self.timed else 0.0)
        self.channels.append(channel)
        return channel

    def add_process(self, name: str, generator: Generator, is_sink: bool = False) -> Process:
        process = Process(name, generator, is_sink=is_sink)
        self.processes.append(process)
        self._enqueue(process)
        return process

    def _enqueue(self, process: Process) -> None:
        self._queue_seq += 1
        heappush(self._runnable, (process.local_time, self._queue_seq, process))

    # -- main loop -------------------------------------------------------------------
    def run(self) -> SimMetrics:
        """Run until every sink process finishes (or every process finishes)."""
        sinks = [p for p in self.processes if p.is_sink]
        self._sinks_pending = sum(1 for p in sinks if p.state is not ProcessState.DONE)
        runnable = self._runnable
        timed = self.timed
        slack = self.time_slack
        track_sinks = bool(sinks)
        while runnable:
            if track_sinks and not self._sinks_pending:
                break
            process = heappop(runnable)[2]
            if process.state is ProcessState.DONE:
                continue
            process.state = ProcessState.RUNNABLE
            if timed and runnable:
                horizon = runnable[0][0] + slack
            else:
                horizon = _INF
            self._advance(process, horizon)

        if sinks and not all(p.state is ProcessState.DONE for p in sinks):
            blocked = [f"{p.name} blocked on {[c.name for c in p.blocked_on]}"
                       for p in self.processes if p.state is ProcessState.BLOCKED]
            raise DeadlockError(
                "simulation deadlocked before all sinks completed", blocked=blocked)

        self.metrics.cycles = self.total_cycles()
        self.metrics.events = self._events
        return self.metrics

    def total_cycles(self) -> float:
        """Total execution time: the latest local clock across all processes."""
        if not self.processes:
            return 0.0
        return max(p.local_time for p in self.processes)

    # -- process advancement ------------------------------------------------------------
    def _advance(self, process: Process, horizon: float = _INF) -> None:
        """Run ``process`` until it blocks, finishes or overruns ``horizon``."""
        generator = process.generator
        send = generator.send
        handlers = self._handlers
        timed = self.timed
        max_events = self.max_events
        events = self._events
        runnable_state = ProcessState.RUNNABLE
        while True:
            if process.local_time > horizon and process.state is runnable_state:
                # yield the CPU back to earlier-in-time processes
                self._events = events
                self._enqueue(process)
                return
            events += 1
            if events > max_events:
                self._events = events
                raise SimulationError(
                    f"exceeded the event budget ({self.max_events}); "
                    f"likely a livelock in the program graph")
            effect = process.pending_effect
            if effect is None:
                try:
                    effect = send(process.pending_send)
                except StopIteration:
                    process.state = ProcessState.DONE
                    process.pending_send = None
                    if process.is_sink:
                        self._sinks_pending -= 1
                    self._events = events
                    return
                process.pending_send = None
            else:
                process.pending_effect = None

            kind = effect[0]
            if kind == "tick":
                if timed:
                    process.local_time += float(effect[1])
                process.pending_send = None
                continue
            try:
                handler = handlers[kind]
            except KeyError:
                self._events = events
                raise SimulationError(
                    f"unknown effect {effect!r} from process {process.name}") from None
            result = handler(process, effect, horizon)
            if result is _SUSPEND:
                self._events = events
                return
            process.pending_send = result

    # -- scalar effect implementations --------------------------------------------------
    def _do_push(self, process: Process, effect: tuple, horizon: float):
        channel = effect[1]
        if channel.capacity is not None and len(channel.queue) >= channel.capacity:
            self._block(process, effect, (channel,), space=True)
            return _SUSPEND
        if process.was_backpressured:
            if channel.last_pop_time > process.local_time:
                process.local_time = channel.last_pop_time
            process.was_backpressured = False
        queue = channel.queue
        queue.append((process.local_time + channel.latency, effect[2]))
        channel.total_pushed += 1
        if len(queue) > channel.max_occupancy:
            channel.max_occupancy = len(queue)
        if channel.data_waiters:
            self._wake_waiters(channel.data_waiters)
        return None

    def _do_push_at(self, process: Process, effect: tuple, horizon: float):
        channel = effect[1]
        if channel.full:
            self._block(process, effect, (channel,), space=True)
            return _SUSPEND
        if process.was_backpressured:
            if channel.last_pop_time > process.local_time:
                process.local_time = channel.last_pop_time
            process.was_backpressured = False
        push_time = process.local_time
        if self.timed:
            at_time = float(effect[3])
            if at_time > push_time:
                push_time = at_time
        queue = channel.queue
        queue.append((push_time + channel.latency, effect[2]))
        channel.total_pushed += 1
        if len(queue) > channel.max_occupancy:
            channel.max_occupancy = len(queue)
        if channel.data_waiters:
            self._wake_waiters(channel.data_waiters)
        return None

    def _do_pop(self, process: Process, effect: tuple, horizon: float):
        channel = effect[1]
        queue = channel.queue
        if not queue:
            self._block(process, effect, (channel,), space=False)
            return _SUSPEND
        ready, token = queue.popleft()
        channel.total_popped += 1
        local = process.local_time
        if ready > local:
            channel.last_pop_time = ready
            if self.timed:
                process.local_time = ready
        else:
            channel.last_pop_time = local
        if channel.space_waiters:
            self._wake_waiters(channel.space_waiters)
        return token

    def _do_peek(self, process: Process, effect: tuple, horizon: float):
        channel = effect[1]
        if not channel.queue:
            self._block(process, effect, (channel,), space=False)
            return _SUSPEND
        ready, token = channel.queue[0]
        if self.timed and ready > process.local_time:
            process.local_time = ready
        return token

    def _do_pop_any(self, process: Process, effect: tuple, horizon: float):
        channels = effect[1]
        best_index = -1
        best_ready = None
        for index, channel in enumerate(channels):
            queue = channel.queue
            if not queue:
                continue
            head = queue[0][0]
            if best_ready is None or head < best_ready:
                best_ready = head
                best_index = index
        if best_index < 0:
            self._block(process, ("pop_any", list(channels)), list(channels), space=False)
            return _SUSPEND
        channel = channels[best_index]
        ready, token = channel.pop(process.local_time)
        if self.timed and ready > process.local_time:
            process.local_time = ready
        if channel.space_waiters:
            self._wake_waiters(channel.space_waiters)
        return (best_index, token)

    def _do_hbm(self, process: Process, effect: tuple, horizon: float):
        """Issue an off-chip request.

        The issuing process's clock advances only to the bandwidth-scheduled
        finish time (requests pipeline through the access latency); the full
        completion time is returned so load executors can stamp the fetched
        data with it (via the ``push_at`` effect).
        """
        nbytes = effect[1]
        is_write = effect[2] if len(effect) > 2 else False
        address = effect[3] if len(effect) > 3 else 0
        return self._hbm_access(process, nbytes, is_write, address)

    def _hbm_access(self, process: Process, nbytes: int, is_write: bool,
                    address: int) -> float:
        """Issue one off-chip request and advance the issuer's clock."""
        request_time = process.local_time
        if isinstance(self.hbm, BankedHBM):
            completion = self.hbm.access(request_time, nbytes, address=address,
                                         is_write=is_write)
        else:
            completion = self.hbm.access(request_time, nbytes, is_write=is_write)
        if self.timed:
            issue_done = self.hbm.issue_done(completion)
            if issue_done > process.local_time:
                process.local_time = issue_done
        else:
            completion = request_time
        self.metrics.record_offchip(process.name, nbytes, request_time, is_write=is_write)
        return completion

    def _do_time(self, process: Process, effect: tuple, horizon: float):
        return process.local_time

    # -- batched effect implementations --------------------------------------------------
    # Each batched handler services a run of scalar-equivalent operations in one
    # engine round-trip.  Equivalence with the scalar effects requires replaying
    # the scalar scheduler behaviour exactly: block at the same element a scalar
    # sequence would block at (storing the remainder for retry), and re-check the
    # time_slack horizon at every point the scalar loop would (i.e. after any
    # operation that advanced the process clock), suspending the remainder when
    # it is overrun.

    def _do_push_all(self, process: Process, effect: tuple, horizon: float):
        # ("push_all", channels, token): broadcast one token
        return self._push_run(process, effect[1], (effect[2],), 0, None, horizon, None)

    def _do_push_many(self, process: Process, effect: tuple, horizon: float):
        # ("push_many", channels, tokens): broadcast a run (tokens outer)
        return self._push_run(process, effect[1], effect[2], 0, None, horizon, None)

    def _do_push_many_at(self, process: Process, effect: tuple, horizon: float):
        # ("push_many_at", channels, tokens, at_time)
        return self._push_run(process, effect[1], effect[2], 0, effect[3], horizon, None)

    def _do_push_run(self, process: Process, effect: tuple, horizon: float):
        # internal resume: ("push_run", channels, tokens, k, at_time, final)
        return self._push_run(process, effect[1], effect[2], effect[3], effect[4],
                              horizon, effect[5])

    def _do_tick_push_all(self, process: Process, effect: tuple, horizon: float):
        # ("tick_push_all", cycles, channels, token): advance the clock, then
        # broadcast — one round-trip for the scalar tick-then-push pair.
        if self.timed:
            process.local_time += float(effect[1])
            if process.local_time > horizon:
                # the scalar sequence would be rescheduled between the tick and
                # the push: park the push for the next turn
                process.pending_effect = ("push_run", effect[2], (effect[3],), 0, None, None)
                self._enqueue(process)
                return _SUSPEND
        return self._push_run(process, effect[2], (effect[3],), 0, None, horizon, None)

    def _do_tick_push_many(self, process: Process, effect: tuple, horizon: float):
        # ("tick_push_many", cycles, channels, tokens)
        if self.timed:
            process.local_time += float(effect[1])
            if process.local_time > horizon:
                process.pending_effect = ("push_run", effect[2], effect[3], 0, None, None)
                self._enqueue(process)
                return _SUSPEND
        return self._push_run(process, effect[2], effect[3], 0, None, horizon, None)

    def _do_hbm_push(self, process: Process, effect: tuple, horizon: float):
        # ("hbm_push", nbytes, is_write, address, channels, tokens): issue the
        # off-chip request, then push the tokens stamped with its completion
        # time (the scalar hbm-then-push_many_at pair); returns the completion.
        completion = self._hbm_access(process, effect[1], effect[2], effect[3])
        if self.timed and process.local_time > horizon:
            process.pending_effect = ("push_run", effect[4], effect[5], 0,
                                      completion, completion)
            self._enqueue(process)
            return _SUSPEND
        return self._push_run(process, effect[4], effect[5], 0, completion,
                              horizon, completion)

    def _push_run(self, process: Process, channels: Sequence[Channel],
                  tokens: Sequence, k: int, at_time: Optional[float], horizon: float,
                  final):
        """Service a run of pushes; ``final`` is the result once the run completes."""
        nchan = len(channels)
        if nchan == 1:
            # fast path: nearly every push run targets a single channel, whose
            # attributes are loop-invariant (no pops can interleave mid-run)
            channel = channels[0]
            queue = channel.queue
            capacity = channel.capacity
            latency = channel.latency
            timed = self.timed
            ntok = len(tokens)
            while k < ntok:
                if capacity is not None and len(queue) >= capacity:
                    if len(queue) > channel.max_occupancy:
                        channel.max_occupancy = len(queue)
                    self._block(process, ("push_run", channels, tokens, k, at_time, final),
                                (channel,), space=True)
                    return _SUSPEND
                bumped = process.was_backpressured
                if bumped:
                    if channel.last_pop_time > process.local_time:
                        process.local_time = channel.last_pop_time
                    process.was_backpressured = False
                push_time = process.local_time
                if at_time is not None and timed and at_time > push_time:
                    push_time = at_time
                queue.append((push_time + latency, tokens[k]))
                channel.total_pushed += 1
                k += 1
                if channel.data_waiters:
                    self._wake_waiters(channel.data_waiters)
                # only a backpressure bump can move the clock inside a push run,
                # so this is the only point the scalar loop's horizon check fires
                if bumped and k < ntok and process.local_time > horizon:
                    if len(queue) > channel.max_occupancy:
                        channel.max_occupancy = len(queue)
                    process.pending_effect = ("push_run", channels, tokens, k,
                                              at_time, final)
                    self._enqueue(process)
                    return _SUSPEND
            if len(queue) > channel.max_occupancy:
                channel.max_occupancy = len(queue)
            return final

        total = len(tokens) * nchan
        timed = self.timed
        while k < total:
            channel = channels[k % nchan]
            if channel.capacity is not None and len(channel.queue) >= channel.capacity:
                self._block(process, ("push_run", channels, tokens, k, at_time, final),
                            (channel,), space=True)
                return _SUSPEND
            bumped = process.was_backpressured
            if bumped:
                if channel.last_pop_time > process.local_time:
                    process.local_time = channel.last_pop_time
                process.was_backpressured = False
            push_time = process.local_time
            if at_time is not None and timed and at_time > push_time:
                push_time = at_time
            queue = channel.queue
            queue.append((push_time + channel.latency, tokens[k // nchan]))
            channel.total_pushed += 1
            if len(queue) > channel.max_occupancy:
                channel.max_occupancy = len(queue)
            if channel.data_waiters:
                self._wake_waiters(channel.data_waiters)
            k += 1
            # only a backpressure bump can move the clock inside a push run, so
            # this is the only point the scalar loop's horizon check could fire
            if bumped and k < total and process.local_time > horizon:
                process.pending_effect = ("push_run", channels, tokens, k, at_time, final)
                self._enqueue(process)
                return _SUSPEND
        return final

    def _do_pop_each(self, process: Process, effect: tuple, horizon: float):
        # ("pop_each", channels): one token from every channel, in order
        return self._pop_each(process, effect[1], 0, [], horizon)

    def _do_pop_each_run(self, process: Process, effect: tuple, horizon: float):
        # internal resume: ("pop_each_run", channels, index, collected)
        return self._pop_each(process, effect[1], effect[2], effect[3], horizon)

    def _pop_each(self, process: Process, channels: Sequence[Channel], index: int,
                  collected: list, horizon: float):
        timed = self.timed
        n = len(channels)
        while index < n:
            channel = channels[index]
            if not channel.queue:
                self._block(process, ("pop_each_run", channels, index, collected),
                            (channel,), space=False)
                return _SUSPEND
            ready, token = channel.queue.popleft()
            channel.total_popped += 1
            local = process.local_time
            if ready > local:
                channel.last_pop_time = ready
                if timed:
                    process.local_time = ready
            else:
                channel.last_pop_time = local
            if channel.space_waiters:
                self._wake_waiters(channel.space_waiters)
            collected.append(token)
            index += 1
            if index < n and process.local_time > horizon:
                process.pending_effect = ("pop_each_run", channels, index, collected)
                self._enqueue(process)
                return _SUSPEND
        return collected

    def _do_pop_run(self, process: Process, effect: tuple, horizon: float):
        # ("pop_run", channel, limit): up to `limit` immediately available tokens.
        # Returns a partial run at the horizon — the consumer re-yields and the
        # top-of-loop check reschedules, exactly like a scalar pop sequence.
        channel = effect[1]
        queue = channel.queue
        if not queue:
            self._block(process, effect, (channel,), space=False)
            return _SUSPEND
        limit = effect[2]
        timed = self.timed
        tokens = []
        while queue and len(tokens) < limit:
            ready, token = queue.popleft()
            channel.total_popped += 1
            local = process.local_time
            if ready > local:
                channel.last_pop_time = ready
                if timed:
                    process.local_time = ready
            else:
                channel.last_pop_time = local
            if channel.space_waiters:
                self._wake_waiters(channel.space_waiters)
            tokens.append(token)
            if process.local_time > horizon:
                break
        return tokens

    # -- blocking / wake-up ------------------------------------------------------------------
    def _block(self, process: Process, effect: tuple, channels: Sequence[Channel],
               space: bool) -> None:
        process.pending_effect = effect
        process.state = ProcessState.BLOCKED
        process.blocked_on = list(channels)
        if space:
            process.was_backpressured = True
            for channel in channels:
                waiters = channel.space_waiters
                if process not in waiters:
                    waiters.append(process)
        else:
            for channel in channels:
                waiters = channel.data_waiters
                if process not in waiters:
                    waiters.append(process)

    def _wake_waiters(self, waiters: List[Process]) -> None:
        """Wake every process registered on ``waiters`` (a channel's list)."""
        pending = waiters[:]
        waiters.clear()
        blocked_state = ProcessState.BLOCKED
        for process in pending:
            if process.state is blocked_state:
                process.state = ProcessState.RUNNABLE
                process.blocked_on = []
                self._enqueue(process)
