"""Lowering a STeP program graph onto the simulation engine.

Lowering creates one engine process per operator, one channel per
producer-consumer edge (output ports with several consumers broadcast to one
channel per consumer), attaches collector processes to the program's sink
handles and wires every off-chip operator to the shared HBM model.

It also derives, per operator, whether its inputs are read from on-chip memory
and whether its outputs are written to on-chip memory: those facts select the
memory terms of the Roofline latency equation (Section 4.3, last sentence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import GraphError
from ..core.graph import InputStream, OperatorBase, Program
from ..core.stream import Token
from .channel import Channel
from .engine import Engine
from .executors import executor_for
from .executors.common import HardwareConfig, OpContext
from .executors import sources
from .hbm import HBMModel
from .metrics import SimMetrics

#: operator kinds whose outputs come from (on- or off-chip) memory units
_MEMORY_PRODUCERS = {
    "LinearOffChipLoad", "LinearOffChipLoadRef", "RandomOffChipLoad",
    "Bufferize", "Streamify",
}
#: operator kinds whose inputs land in memory units
_MEMORY_CONSUMERS = {
    "LinearOffChipStore", "RandomOffChipStore", "Bufferize",
}
#: operator kinds that allocate compute bandwidth
_COMPUTE_KINDS = {"Map", "Accum", "Scan", "FlatMap"}


class LoweredProgram:
    """The result of lowering: an engine ready to run plus bookkeeping."""

    def __init__(self, engine: Engine, program: Program,
                 contexts: Dict[str, OpContext],
                 sink_contexts: Dict[str, OpContext]):
        self.engine = engine
        self.program = program
        self.contexts = contexts
        #: collector name -> context holding the collected output tokens
        self.sink_contexts = sink_contexts

    def run(self) -> SimMetrics:
        return self.engine.run()

    def output_tokens(self, name: str) -> List[Token]:
        ctx = self.sink_contexts.get(name)
        if ctx is None:
            raise GraphError(
                f"no collected output named {name!r}; available: {sorted(self.sink_contexts)}")
        return list(ctx.results)


def lower(program: Program, inputs: Optional[Dict[str, Sequence[Token]]] = None,
          hardware: Optional[HardwareConfig] = None, timed: bool = True,
          hbm: Optional[HBMModel] = None, metrics: Optional[SimMetrics] = None,
          input_rates: Optional[Dict[str, float]] = None) -> LoweredProgram:
    """Lower ``program`` onto an :class:`Engine`.

    Parameters
    ----------
    inputs:
        Token streams for every :class:`InputStream` node, keyed by node name.
    hardware:
        Hardware configuration (bandwidths, latencies).
    timed:
        ``False`` turns the engine into a functional interpreter.
    hbm:
        Off-chip memory model; defaults to an :class:`HBMModel` built from the
        hardware configuration.
    input_rates:
        Optional cycles-per-token pacing for specific input streams.
    """
    hardware = hardware or HardwareConfig()
    inputs = inputs or {}
    input_rates = input_rates or {}
    if hbm is None:
        hbm = HBMModel(bandwidth=hardware.offchip_bandwidth, latency=hardware.offchip_latency)
    engine = Engine(timed=timed, hbm=hbm, metrics=metrics)

    # -- channels -------------------------------------------------------------------
    # consumer-side: op name -> list of channels, one per input port
    in_channels: Dict[int, List[Channel]] = {}
    # producer-side: (producer node id, port) -> list of channels (fan-out)
    out_channels: Dict[Tuple[int, int], List[Channel]] = {}
    for op in program.operators:
        out_channels.update({(op.node_id, port): [] for port in range(len(op.outputs))})

    #: producer handle id -> consumer operator kinds (one pass over the edges,
    #: replacing per-operator O(V*E) consumers_of scans during context setup)
    consumer_kinds: Dict[int, List[str]] = {}
    for handle, consumer, port in program.edges():
        consumer_kinds.setdefault(id(handle), []).append(consumer.kind)
        channel = engine.add_channel(
            name=f"{handle.name}->{consumer.name}.in{port}",
            capacity=hardware.channel_capacity,
            latency=hardware.channel_latency)
        in_channels.setdefault(consumer.node_id, [None] * len(consumer.inputs))
        in_channels[consumer.node_id][port] = channel
        out_channels[(handle.producer.node_id, handle.port)].append(channel)

    # -- collectors for program sink handles -------------------------------------------
    sink_contexts: Dict[str, OpContext] = {}
    collector_specs: List[Tuple[str, Channel]] = []
    for handle in program.sink_handles:
        channel = engine.add_channel(name=f"{handle.name}->collect",
                                     capacity=hardware.channel_capacity,
                                     latency=hardware.channel_latency)
        out_channels[(handle.producer.node_id, handle.port)].append(channel)
        collector_specs.append((handle.name, channel))

    # -- processes ---------------------------------------------------------------------
    contexts: Dict[str, OpContext] = {}
    for op in program.operators:
        ctx = OpContext(
            op_name=op.name,
            metrics=engine.metrics,
            hardware=hardware,
            inputs_from_memory=_inputs_from_memory(op),
            outputs_to_memory=_outputs_to_memory(op, consumer_kinds),
        )
        contexts[op.name] = ctx
        ins = in_channels.get(op.node_id, [])
        outs = [out_channels[(op.node_id, port)] for port in range(len(op.outputs))]

        if isinstance(op, InputStream):
            tokens = inputs.get(op.name)
            if tokens is None:
                raise GraphError(
                    f"missing input tokens for input stream {op.name!r}; "
                    f"provided: {sorted(inputs)}")
            generator = sources.input_source(tokens, outs, ctx,
                                             cycles_per_token=input_rates.get(op.name, 0.0))
            engine.add_process(op.name, generator)
            continue

        if op.kind in _COMPUTE_KINDS:
            engine.metrics.record_compute_bw(op.name, getattr(op, "compute_bw", 0))

        executor = executor_for(op)
        generator = executor(op, ins, outs, ctx)
        is_sink = op.kind in ("LinearOffChipStore", "RandomOffChipStore") and not any(
            out_channels[(op.node_id, port)] for port in range(len(op.outputs)))
        engine.add_process(op.name, generator, is_sink=is_sink)
        if op.kind in ("LinearOffChipStore", "RandomOffChipStore"):
            sink_contexts.setdefault(op.name, ctx)

    for name, channel in collector_specs:
        ctx = OpContext(op_name=f"collect:{name}", metrics=engine.metrics, hardware=hardware)
        sink_contexts[name] = ctx
        engine.add_process(f"collect:{name}", sources.collector([channel], ctx), is_sink=True)

    return LoweredProgram(engine, program, contexts, sink_contexts)


def _inputs_from_memory(op: OperatorBase) -> bool:
    return any(handle.producer.kind in _MEMORY_PRODUCERS for handle in op.inputs)


def _outputs_to_memory(op: OperatorBase, consumer_kinds: Dict[int, List[str]]) -> bool:
    for handle in op.outputs:
        for kind in consumer_kinds.get(id(handle), ()):
            if kind in _MEMORY_CONSUMERS:
                return True
    return False
