"""Time-stamped FIFO channels connecting simulator processes.

A channel carries STeP stream tokens.  Every element is stamped with the time
it becomes visible to the consumer (producer local time + channel latency);
popping an element advances the consumer's clock to at least that time.
Channels may be bounded, in which case a full channel back-pressures the
producer until the consumer pops (the slot "frees" at the consumer's pop
time), mirroring hardware FIFO behaviour.

The waiter lists live directly on the channel (rather than in engine-side
dictionaries keyed by channel id) so the engine's per-push/per-pop wakeup
check is a plain attribute load on the hot path.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..core.stream import Token

_channel_ids = itertools.count()


class Channel:
    """A FIFO of ``(ready_time, token)`` entries with optional capacity."""

    __slots__ = ("channel_id", "name", "capacity", "latency", "queue",
                 "last_pop_time", "total_pushed", "total_popped", "closed",
                 "max_occupancy", "data_waiters", "space_waiters")

    def __init__(self, name: str = "", capacity: Optional[int] = None, latency: float = 1.0):
        self.channel_id = next(_channel_ids)
        self.name = name or f"chan{self.channel_id}"
        #: maximum number of in-flight elements; ``None`` means unbounded
        self.capacity = capacity
        #: cycles between a push and the element becoming poppable
        self.latency = float(latency)
        self.queue: Deque[Tuple[float, Token]] = deque()
        #: the consumer-side time of the most recent pop (used to time-stamp
        #: the unblocking of a back-pressured producer)
        self.last_pop_time: float = 0.0
        self.total_pushed = 0
        self.total_popped = 0
        self.closed = False
        self.max_occupancy = 0
        #: engine processes waiting for data / space on this channel
        self.data_waiters: List = []
        self.space_waiters: List = []

    # -- queries -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.queue)

    @property
    def empty(self) -> bool:
        return not self.queue

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.queue) >= self.capacity

    def head_ready_time(self) -> Optional[float]:
        if not self.queue:
            return None
        return self.queue[0][0]

    # -- operations --------------------------------------------------------------
    def push(self, token: Token, time: float) -> None:
        """Append a token that becomes visible at ``time + latency``."""
        queue = self.queue
        queue.append((time + self.latency, token))
        self.total_pushed += 1
        if len(queue) > self.max_occupancy:
            self.max_occupancy = len(queue)

    def pop(self, time: float) -> Tuple[float, Token]:
        """Remove the head element; returns ``(visible_time, token)``."""
        entry = self.queue.popleft()
        self.total_popped += 1
        ready = entry[0]
        self.last_pop_time = ready if ready > time else time
        return entry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Channel({self.name}, occ={len(self.queue)}, "
                f"pushed={self.total_pushed}, popped={self.total_popped})")
