"""Figure 14 — dynamic parallelization versus static interleaved parallelization.

Decode attention at batch 64 across batches with low / medium / high KV-cache
length variance; dynamic parallelization's speedup over static interleaved
parallelization grows with the variance (1.14-1.26x at low variance,
1.47-1.57x at high variance in the paper).

Each (variance class, trace) combination is one
:class:`~repro.api.AttentionWorkload` carrying its own KV-length list; the two
strategies are the scenario's schedule grid, so the whole figure is a single
:class:`~repro.api.Scenario` cross product.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api import AttentionWorkload, Scenario, Schedule
from ..api import run as run_scenario
from ..data.kv_traces import VarianceClass
from ..schedules import parallelization
from ..sweep import SweepRunner, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, geomean, platform, kv_batches, qwen_model

_VARIANCES = (VarianceClass.LOW, VarianceClass.MEDIUM, VarianceClass.HIGH)
_STRATEGIES = ("interleave", "dynamic")


def strategy_schedules(strategies=_STRATEGIES, coarse_chunk: int = 16) -> Dict[str, Schedule]:
    """One schedule per attention work-distribution strategy."""
    return {s: Schedule(name=s, parallelization=parallelization(
                s, num_regions=4, coarse_chunk=coarse_chunk))
            for s in strategies}


def scenario(scale: ExperimentScale, batches=None) -> Scenario:
    """The Figure 14 (variance trace × strategy) grid as one scenario.

    ``batches`` lets a caller that already generated the KV-trace batches
    (:func:`repro.experiments.common.kv_batches`) share them.
    """
    model = qwen_model(scale)
    batch = scale.attention_batch
    if batches is None:
        batches = kv_batches(scale, batch)
    workloads = {
        f"{variance.value}/{sample}": AttentionWorkload(
            model=model, batch=batch, lengths=list(trace), kv_tile_rows=64)
        for variance in _VARIANCES
        for sample, trace in enumerate(batches[variance])
    }
    return Scenario(
        name=f"figure14-{scale.name}",
        workloads=workloads,
        schedules=strategy_schedules(),
        platforms=platform(scale),
        seed=scale.seed,
        description="dynamic vs static interleaved attention parallelization",
    )


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the Figure 14 series (speedup vs static interleaved per variance class)."""
    batches = kv_batches(scale, scale.attention_batch)
    result = run_scenario(scenario(scale, batches=batches), runner=resolve_runner(runner))

    rows: List[dict] = []
    per_class: Dict[str, float] = {}
    for variance in _VARIANCES:
        speedups = []
        for sample, trace in enumerate(batches[variance]):
            cell = result.for_workload(f"{variance.value}/{sample}")
            interleave = cell["interleave"]["cycles"]
            dynamic = cell["dynamic"]["cycles"]
            speedups.append(interleave / dynamic)
            rows.append({
                "variance": variance.value,
                "kv_std": trace.std,
                "interleave_cycles": interleave,
                "dynamic_cycles": dynamic,
                "speedup": interleave / dynamic,
            })
        per_class[variance.value] = geomean(speedups)
    return {"rows": rows, "speedup_by_variance": per_class}
