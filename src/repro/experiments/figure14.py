"""Figure 14 — dynamic parallelization versus static interleaved parallelization.

Decode attention at batch 64 across batches with low / medium / high KV-cache
length variance; dynamic parallelization's speedup over static interleaved
parallelization grows with the variance (1.14-1.26x at low variance,
1.47-1.57x at high variance in the paper).
"""

from __future__ import annotations

from typing import Dict, List

from ..data.kv_traces import VarianceClass
from ..sim import simulate
from ..workloads.attention import AttentionConfig, build_attention_layer
from .common import DEFAULT_SCALE, ExperimentScale, geomean, hardware, kv_batches, qwen_model


def _simulate_strategy(model, batch: int, strategy: str, lengths, scale: ExperimentScale,
                       coarse_chunk: int = 16) -> float:
    config = AttentionConfig(model=model, batch=batch, strategy=strategy,
                             kv_tile_rows=64, coarse_chunk=coarse_chunk)
    program = build_attention_layer(config)
    report = simulate(program.program, program.inputs(list(lengths)), hardware=hardware(scale))
    return report.cycles


def run(scale: ExperimentScale = DEFAULT_SCALE) -> Dict[str, object]:
    """Regenerate the Figure 14 series (speedup vs static interleaved per variance class)."""
    model = qwen_model(scale)
    batch = scale.attention_batch
    batches = kv_batches(scale, batch)
    rows: List[dict] = []
    per_class: Dict[str, float] = {}
    for variance in (VarianceClass.LOW, VarianceClass.MEDIUM, VarianceClass.HIGH):
        speedups = []
        for trace in batches[variance]:
            interleave = _simulate_strategy(model, batch, "interleave", trace, scale)
            dynamic = _simulate_strategy(model, batch, "dynamic", trace, scale)
            speedups.append(interleave / dynamic)
            rows.append({
                "variance": variance.value,
                "kv_std": trace.std,
                "interleave_cycles": interleave,
                "dynamic_cycles": dynamic,
                "speedup": interleave / dynamic,
            })
        per_class[variance.value] = geomean(speedups)
    return {"rows": rows, "speedup_by_variance": per_class}
