"""Figure 14 — dynamic parallelization versus static interleaved parallelization.

Decode attention at batch 64 across batches with low / medium / high KV-cache
length variance; dynamic parallelization's speedup over static interleaved
parallelization grows with the variance (1.14-1.26x at low variance,
1.47-1.57x at high variance in the paper).

Each (variance class, trace, strategy) combination carries its own KV-length
list, so the grid is expressed as a zip-mode :class:`SweepSpec` over the
``attention_layer`` task.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data.kv_traces import VarianceClass
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, geomean, hardware, kv_batches, qwen_model

_VARIANCES = (VarianceClass.LOW, VarianceClass.MEDIUM, VarianceClass.HIGH)
_STRATEGIES = ("interleave", "dynamic")


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the Figure 14 series (speedup vs static interleaved per variance class)."""
    model = qwen_model(scale)
    batch = scale.attention_batch
    batches = kv_batches(scale, batch)

    labels: List[tuple] = []
    lengths_axis: List[list] = []
    strategy_axis: List[str] = []
    for variance in _VARIANCES:
        for sample, trace in enumerate(batches[variance]):
            for strategy in _STRATEGIES:
                labels.append((variance, sample, strategy))
                lengths_axis.append(list(trace))
                strategy_axis.append(strategy)

    spec = SweepSpec(
        name=f"fig14-{model.name}-b{batch}",
        task="attention_layer",
        base={"model": model, "batch": batch, "kv_tile_rows": 64,
              "coarse_chunk": 16, "hardware": hardware(scale)},
        axes={"lengths": lengths_axis, "strategy": strategy_axis},
        mode="zip",
        seed=scale.seed,
    )
    results = resolve_runner(runner).run(spec)
    cycles = {label: result["cycles"] for label, result in zip(labels, results)}

    rows: List[dict] = []
    per_class: Dict[str, float] = {}
    for variance in _VARIANCES:
        speedups = []
        for sample, trace in enumerate(batches[variance]):
            interleave = cycles[(variance, sample, "interleave")]
            dynamic = cycles[(variance, sample, "dynamic")]
            speedups.append(interleave / dynamic)
            rows.append({
                "variance": variance.value,
                "kv_std": trace.std,
                "interleave_cycles": interleave,
                "dynamic_cycles": dynamic,
                "speedup": interleave / dynamic,
            })
        per_class[variance.value] = geomean(speedups)
    return {"rows": rows, "speedup_by_variance": per_class}
