"""Figure 17 — end-to-end Qwen3-30B-A3B and Mixtral-8x7B results.

Three schedules are compared per model: a memory-matched static schedule, a
performance-matched static schedule, and the dynamic schedule (dynamic tiling,
dynamic parallelization, plus configuration time-multiplexing for the
many-expert model).  The reported quantities are speedup over the static
schedules, on-chip memory and allocated compute.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data.kv_traces import VarianceClass
from ..workloads.configs import ModelConfig
from ..workloads.model import default_schedules, evaluate_end_to_end
from .common import (DEFAULT_SCALE, ExperimentScale, hardware, kv_batches, mixtral_model,
                     moe_routing, qwen_model)


def _evaluate_model(model: ModelConfig, scale: ExperimentScale) -> List[dict]:
    batch = scale.attention_batch
    kv_lengths = list(kv_batches(scale, batch)[VarianceClass.MEDIUM][0])
    assignments = moe_routing(model, batch, scale)
    hw = hardware(scale)
    static_mem_tile = min(scale.moe_tiles_small_batch)
    static_perf_tile = max(t for t in scale.moe_tiles_small_batch if t <= batch)
    schedules = default_schedules(model, static_mem_tile=static_mem_tile,
                                  static_perf_tile=static_perf_tile)
    num_layers = scale.end_to_end_layers or model.num_layers
    rows = []
    for name, schedule in schedules.items():
        result = evaluate_end_to_end(model, schedule, batch, kv_lengths, assignments,
                                     num_layers=num_layers, hardware=hw)
        rows.append({
            "model": model.name,
            "schedule": name,
            "total_cycles": result.total_cycles,
            "onchip_memory_bytes": result.onchip_memory,
            "allocated_compute_flops_per_cycle": result.allocated_compute,
            "total_traffic_bytes": result.total_traffic,
            "layer_breakdown_cycles": dict(result.breakdown.cycles),
        })
    return rows


def summarize(rows: List[dict]) -> dict:
    by_schedule = {row["schedule"]: row for row in rows}
    dynamic = by_schedule["dynamic"]
    static_mem = by_schedule["static_mem"]
    static_perf = by_schedule["static_perf"]
    return {
        "speedup_vs_static_mem": static_mem["total_cycles"] / dynamic["total_cycles"],
        "speedup_vs_static_perf": static_perf["total_cycles"] / dynamic["total_cycles"],
        "memory_saving_vs_static_perf":
            1.0 - dynamic["onchip_memory_bytes"] / static_perf["onchip_memory_bytes"],
        "compute_saving_vs_static":
            1.0 - (dynamic["allocated_compute_flops_per_cycle"]
                   / static_mem["allocated_compute_flops_per_cycle"]),
    }


def run(scale: ExperimentScale = DEFAULT_SCALE) -> Dict[str, object]:
    """Regenerate the Figure 17 comparison for both models."""
    results: Dict[str, object] = {"per_model": {}}
    for model in (mixtral_model(scale), qwen_model(scale)):
        rows = _evaluate_model(model, scale)
        results["per_model"][model.name] = {"rows": rows, "summary": summarize(rows)}
    return results
