"""Figure 17 — end-to-end Qwen3-30B-A3B and Mixtral-8x7B results.

Three schedules are compared per model: a memory-matched static schedule, a
performance-matched static schedule, and the dynamic schedule (dynamic tiling,
dynamic parallelization, plus configuration time-multiplexing for the
many-expert model).  The reported quantities are speedup over the static
schedules, on-chip memory and allocated compute.

Each model is one :class:`~repro.api.DecoderWorkload` scenario whose schedule
grid is :func:`repro.workloads.model.default_schedules` (the schedules depend
on the model's expert pool, so the two models are separate scenarios).
Running through :func:`repro.api.run` gives the end-to-end evaluation result
caching and pooled execution, which the hand-wired version never had.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api import DecoderWorkload, Scenario
from ..api import run as run_scenario
from ..data.kv_traces import VarianceClass
from ..sweep import SweepRunner, resolve_runner
from ..workloads.configs import ModelConfig
from ..workloads.model import default_schedules
from .common import (DEFAULT_SCALE, ExperimentScale, platform, kv_batches, mixtral_model,
                     moe_routing, qwen_model)


def scenario(model: ModelConfig, scale: ExperimentScale) -> Scenario:
    """The Figure 17 schedule comparison for one model."""
    batch = scale.attention_batch
    kv_lengths = list(kv_batches(scale, batch)[VarianceClass.MEDIUM][0])
    assignments = [list(a) for a in moe_routing(model, batch, scale)]
    static_mem_tile = min(scale.moe_tiles_small_batch)
    static_perf_tile = max(t for t in scale.moe_tiles_small_batch if t <= batch)
    workload = DecoderWorkload(model=model, batch=batch, kv_lengths=kv_lengths,
                               assignments=assignments,
                               num_layers=scale.end_to_end_layers or model.num_layers)
    return Scenario(
        name=f"figure17-{model.name}-{scale.name}",
        workloads={model.name: workload},
        schedules=default_schedules(model, static_mem_tile=static_mem_tile,
                                    static_perf_tile=static_perf_tile),
        platforms=platform(scale),
        seed=scale.seed,
        description="end-to-end decoder: dynamic vs matched static schedules",
    )


def _evaluate_model(model: ModelConfig, scale: ExperimentScale,
                    runner: Optional[SweepRunner] = None) -> List[dict]:
    result = run_scenario(scenario(model, scale), runner=resolve_runner(runner))
    rows = []
    for row in result.rows:
        breakdown = {key[len("layer_"):-len("_cycles")]: value
                     for key, value in row.metrics.items()
                     if key.startswith("layer_") and key.endswith("_cycles")}
        rows.append({
            "model": model.name,
            "schedule": row.schedule,
            "total_cycles": row["cycles"],
            "onchip_memory_bytes": row["onchip_memory_bytes"],
            "allocated_compute_flops_per_cycle": row["allocated_compute_flops_per_cycle"],
            "total_traffic_bytes": row["offchip_traffic_bytes"],
            "layer_breakdown_cycles": breakdown,
        })
    return rows


def summarize(rows: List[dict]) -> dict:
    by_schedule = {row["schedule"]: row for row in rows}
    dynamic = by_schedule["dynamic"]
    static_mem = by_schedule["static_mem"]
    static_perf = by_schedule["static_perf"]
    return {
        "speedup_vs_static_mem": static_mem["total_cycles"] / dynamic["total_cycles"],
        "speedup_vs_static_perf": static_perf["total_cycles"] / dynamic["total_cycles"],
        "memory_saving_vs_static_perf":
            1.0 - dynamic["onchip_memory_bytes"] / static_perf["onchip_memory_bytes"],
        "compute_saving_vs_static":
            1.0 - (dynamic["allocated_compute_flops_per_cycle"]
                   / static_mem["allocated_compute_flops_per_cycle"]),
    }


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the Figure 17 comparison for both models."""
    results: Dict[str, object] = {"per_model": {}}
    for model in (mixtral_model(scale), qwen_model(scale)):
        rows = _evaluate_model(model, scale, runner=runner)
        results["per_model"][model.name] = {"rows": rows, "summary": summarize(rows)}
    return results
