"""Registered experiment specs for the figure experiments.

Importing this module (``repro.api.experiment`` does it lazily on first name
resolution) registers every figure as an experiment, so
``repro.api.experiment("figure15")`` — and the bare CLI id,
``experiment("15")`` — resolves to a JSON-serializable
:class:`~repro.api.ExperimentSpec`:

* grid-shaped figures (12/13/14/15) register **scenario** payloads built from
  their module's ``scenario(scale)`` factory — the exact grid the figure
  runs, addressable and serializable without the post-processing wrapper,
* figures with bespoke composition (1, 8, 17, 19, 20, 21) register **figure**
  payloads: a declarative reference to the native entry point plus its scale,
* figures 9/10 need no entry here — they are registered scenarios
  (:mod:`repro.api.library`) and resolve through the scenario registry,
* ``"serve-latency"`` / ``"fleet-latency"`` / ``"memory-pressure"`` /
  ``"policy-shootout"`` register their **sweep** payloads in
  :mod:`repro.experiments.serve_latency` /
  :mod:`repro.experiments.fleet_latency` /
  :mod:`repro.experiments.memory_pressure` /
  :mod:`repro.experiments.policy_shootout`.

Factories take ``scale`` (a preset name or an
:class:`~repro.experiments.common.ExperimentScale`) plus the underlying
scenario factory's keyword overrides.
"""

from __future__ import annotations

from ..api.experiment import ExperimentSpec, register_experiment
from ..serialize import to_jsonable
from . import capacity  # noqa: F401  (registers the capacity experiment)
from . import fleet_latency  # noqa: F401  (registers the fleet-latency experiment)
from . import memory_pressure  # noqa: F401  (registers the memory-pressure experiment)
from . import policy_shootout  # noqa: F401  (registers the policy-shootout experiment)
from . import serve_latency  # noqa: F401  (registers the serve-latency experiment)
from . import figure12_13, figure14, figure15
from .common import resolve_scale


def _register_scenario_figure(name: str, description: str, build) -> None:
    @register_experiment(name, description)
    def factory(scale="default", **overrides) -> ExperimentSpec:
        return ExperimentSpec(name=name, description=description,
                              scenario=build(resolve_scale(scale), **overrides))


def _register_native_figure(name: str, figure_id: str, description: str) -> None:
    @register_experiment(name, description)
    def factory(scale="default") -> ExperimentSpec:
        return ExperimentSpec(name=name, description=description, figure=figure_id,
                              params={"scale": to_jsonable(scale)})


_register_scenario_figure(
    "figure12", "configuration time-multiplexing region sweep (utilization view)",
    figure12_13.scenario)
_register_scenario_figure(
    "figure13", "configuration time-multiplexing region sweep (resource view)",
    figure12_13.scenario)
_register_scenario_figure(
    "figure14", "dynamic vs static interleaved attention parallelization",
    figure14.scenario)
_register_scenario_figure(
    "figure15", "dynamic vs static coarse parallelization across batch sizes",
    figure15.scenario)

_register_native_figure(
    "figure1", "1", "effective HBM bandwidth of GPUs vs the SDA (roofline model)")
_register_native_figure(
    "figure8", "8", "cycle-approximate vs HDL-substitute simulator validation")
_register_native_figure(
    "figure17", "17", "end-to-end decoder: dynamic vs matched static schedules")
_register_native_figure(
    "figure19", "19", "off-chip traffic vs on-chip memory Pareto (small batch)")
_register_native_figure(
    "figure20", "20", "off-chip traffic vs on-chip memory Pareto (large batch)")
_register_native_figure(
    "figure21", "21", "parallelization-strategy ablation across variance/batch classes")
