"""Experiment harness: one module per figure of the paper's evaluation.

Every module exposes a ``run(scale)`` function returning plain-Python row
dictionaries (the same rows the paper plots) plus the headline numbers the
paper quotes, so the benchmark suite and the CLI runner
(``python -m repro.experiments.runner``) share one implementation.
"""

from .common import ExperimentScale, DEFAULT_SCALE, SMOKE_SCALE

__all__ = ["ExperimentScale", "DEFAULT_SCALE", "SMOKE_SCALE"]
