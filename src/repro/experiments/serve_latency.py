"""Serving latency versus offered load — the open-loop serving experiment.

Sweeps a ladder of Poisson arrival rates (``scale.serve_rates``, requests per
million cycles) under the static and the dynamic schedule and reports, per
rate, the TTFT / TPOT / e2e percentiles, goodput and mean queue depth of a
continuous-batching server simulated on the dataflow engine
(:mod:`repro.serve`).  The curve shows the classic serving picture: flat
latency while the server keeps up, then a queueing knee and goodput plateau
once the offered load crosses the engine's service capacity — and how much
further the dynamic schedule pushes that knee.

The whole study is **one** declarative record: :func:`spec` builds the
schedules × rates × caps grid as a single cartesian
:class:`~repro.sweep.SweepSpec` over the ``"serve"`` task
(:func:`repro.serve.sweep.serve_latency_spec`), registered as the
``"serve-latency"`` experiment — ``repro.api.experiment("serve-latency")``
returns it as a JSON-serializable :class:`~repro.api.ExperimentSpec` and
:func:`run` post-processes the same grid into the latency-vs-load curve.
Points are cached and pool-parallel like every figure sweep; the traffic seed
is shared by every point (rates change the inter-arrival *scale*, not the
random stream), and the whole experiment is deterministic — the same scale
and seed reproduce every metric bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api.experiment import ExperimentSpec, register_experiment
from ..serve.library import SMOKE_LENGTHS, _serve_model, serve_schedules
from ..serve.sweep import serve_latency_spec
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, platform, resolve_scale

#: the per-rate metrics each row of the curve reports, per schedule
_ROW_METRICS = ("ttft_p50", "ttft_p95", "tpot_p50", "e2e_p95", "goodput_rpmc",
                "queue_queued_mean")


def spec(scale: ExperimentScale = DEFAULT_SCALE, **overrides) -> SweepSpec:
    """The latency-vs-load grid (schedules × rates × caps) as one spec.

    ``overrides`` forward to :func:`repro.serve.sweep.serve_latency_spec`
    (``rates``, ``batch_caps``, ``num_requests``, ``seed``, ``platform`` …).
    """
    scale = resolve_scale(scale)
    model = _serve_model(scale.model_scale, max_experts=scale.serve_max_experts)
    kwargs = dict(rates=scale.serve_rates, batch_caps=(scale.serve_batch_cap,),
                  num_requests=scale.serve_requests, seed=scale.seed,
                  platform=platform(scale), num_layers=scale.serve_layers,
                  name=f"serve-latency-{scale.name}", **SMOKE_LENGTHS)
    kwargs.update(overrides)
    return serve_latency_spec(model, serve_schedules(), **kwargs)


@register_experiment("serve-latency",
                     "serving latency vs offered load (continuous batching, "
                     "static vs dynamic schedule)")
def _serve_latency_experiment(scale="default", **overrides) -> ExperimentSpec:
    return ExperimentSpec(
        name="serve-latency",
        description="serving latency vs offered load (continuous batching, "
                    "static vs dynamic schedule)",
        sweep=spec(resolve_scale(scale), **overrides))


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the latency-vs-load curve at the given experiment scale."""
    runner = resolve_runner(runner)
    grid = spec(scale)
    metrics = runner.metrics(grid)

    # the grid is schedule-major (see serve_latency_spec); one slice per
    # schedule covers its rates × caps block
    labels = list(serve_schedules())
    block = len(metrics) // len(labels)
    per_schedule: Dict[str, List[Dict[str, float]]] = {
        label: metrics[i * block:(i + 1) * block] for i, label in enumerate(labels)}

    rows: List[Dict[str, float]] = []
    for i, rate in enumerate(scale.serve_rates):
        row: Dict[str, float] = {"rate": float(rate)}
        for label, series in per_schedule.items():
            for key in _ROW_METRICS:
                row[f"{label}_{key}"] = series[i][key]
        rows.append(row)

    dynamic = per_schedule["dynamic"]
    light, peak = dynamic[0], dynamic[-1]
    return {
        "rows": rows,
        "batch_cap": scale.serve_batch_cap,
        "num_requests": scale.serve_requests,
        # the goodput plateau: the engine's measured service capacity
        "peak_goodput_rpmc": max(m["goodput_rpmc"] for m in dynamic),
        # tail-latency inflation between the lightest and heaviest load point
        "overload_ttft_inflation": (peak["ttft_p95"] / light["ttft_p95"]
                                    if light["ttft_p95"] > 0 else 0.0),
        # dynamic-vs-static tail latency at the heaviest load point
        "dynamic_ttft_p95_speedup": (
            per_schedule["static"][-1]["ttft_p95"] / peak["ttft_p95"]
            if peak["ttft_p95"] > 0 else 0.0),
    }
