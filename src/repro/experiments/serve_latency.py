"""Serving latency versus offered load — the open-loop serving experiment.

Sweeps a ladder of Poisson arrival rates (``scale.serve_rates``, requests per
million cycles) under the static and the dynamic schedule and reports, per
rate, the TTFT / TPOT / e2e percentiles, goodput and mean queue depth of a
continuous-batching server simulated on the dataflow engine
(:mod:`repro.serve`).  The curve shows the classic serving picture: flat
latency while the server keeps up, then a queueing knee and goodput plateau
once the offered load crosses the engine's service capacity — and how much
further the dynamic schedule pushes that knee.

The sweep executes through the ``"serve"`` task
(:func:`repro.serve.sweep.latency_load_spec`), so points are cached and
pool-parallel like every figure sweep.  The traffic seed is shared by every
point: rates change the inter-arrival *scale*, not the random stream, which
keeps the curve comparable across load levels, and the whole experiment is
deterministic — the same scale and seed reproduce every metric bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..serve.library import SMOKE_LENGTHS, _serve_model, serve_schedules
from ..serve.sweep import latency_load_spec
from ..sweep import SweepRunner, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, hardware

#: the per-rate metrics each row of the curve reports, per schedule
_ROW_METRICS = ("ttft_p50", "ttft_p95", "tpot_p50", "e2e_p95", "goodput_rpmc",
                "queue_queued_mean")


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the latency-vs-load curve at the given experiment scale."""
    runner = resolve_runner(runner)
    model = _serve_model(scale.model_scale, max_experts=scale.serve_max_experts)
    hw = hardware(scale)

    per_schedule: Dict[str, List[Dict[str, float]]] = {}
    for label, schedule in serve_schedules().items():
        spec = latency_load_spec(
            model, schedule, rates=scale.serve_rates,
            batch_caps=(scale.serve_batch_cap,),
            num_requests=scale.serve_requests, seed=scale.seed, hardware=hw,
            num_layers=scale.serve_layers, name=f"serve-latency-{label}-{scale.name}",
            **SMOKE_LENGTHS)
        per_schedule[label] = runner.metrics(spec)

    rows: List[Dict[str, float]] = []
    for i, rate in enumerate(scale.serve_rates):
        row: Dict[str, float] = {"rate": float(rate)}
        for label, metrics in per_schedule.items():
            for key in _ROW_METRICS:
                row[f"{label}_{key}"] = metrics[i][key]
        rows.append(row)

    dynamic = per_schedule["dynamic"]
    light, peak = dynamic[0], dynamic[-1]
    return {
        "rows": rows,
        "batch_cap": scale.serve_batch_cap,
        "num_requests": scale.serve_requests,
        # the goodput plateau: the engine's measured service capacity
        "peak_goodput_rpmc": max(m["goodput_rpmc"] for m in dynamic),
        # tail-latency inflation between the lightest and heaviest load point
        "overload_ttft_inflation": (peak["ttft_p95"] / light["ttft_p95"]
                                    if light["ttft_p95"] > 0 else 0.0),
        # dynamic-vs-static tail latency at the heaviest load point
        "dynamic_ttft_p95_speedup": (
            per_schedule["static"][-1]["ttft_p95"] / peak["ttft_p95"]
            if peak["ttft_p95"] > 0 else 0.0),
    }
