"""Plain-text reporting helpers for the experiment harness."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                 floatfmt: str = ".1f") -> str:
    """Render row dictionaries as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(columns[i]), max(len(line[i]) for line in table))
              for i in range(len(columns))]
    header = "  ".join(columns[i].ljust(widths[i]) for i in range(len(columns)))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
                     for line in table)
    return "\n".join([header, separator, body])


def print_rows(title: str, rows: Sequence[Mapping], summary: Mapping | None = None) -> None:
    """Print a titled result table (and optional summary) — the benchmark output."""
    print(f"\n=== {title} ===")
    print(format_table(rows))
    if summary:
        print(format_summary(summary, title="summary"))


def format_summary(summary: Mapping, title: str = "summary") -> str:
    """Render a flat summary dictionary as ``key: value`` lines."""
    lines = [f"[{title}]"]
    for key, value in summary.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.3f}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
