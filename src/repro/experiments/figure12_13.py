"""Figures 12 and 13 — configuration time-multiplexing.

The Qwen3-30B-A3B MoE layer (batch 64) is swept over the number of configured
parallel regions (from one region per expert down to 4 regions sharing the
whole expert pool) under static (tile = 32) and dynamic tiling.  Figure 12
reports compute-resource utilization and cycles; Figure 13 additionally
reports on-chip memory, allocated compute and off-chip-bandwidth utilization.
The headline claims are a ~2.5-2.6x utilization improvement at small
performance overhead, with large compute/memory savings.

The (tiling × regions) grid is one :class:`~repro.api.Scenario`: the unified
:class:`~repro.schedules.Schedule` composes the tiling decision with the
time-multiplexing descriptor, so every grid cell is a plain schedule value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..api import MoEWorkload, Scenario, Schedule
from ..api import run as run_scenario
from ..schedules import (dynamic_tiling, parallelization, static_tiling,
                         time_multiplexing)
from ..sweep import SweepRunner, resolve_runner
from ..workloads.configs import ModelConfig
from .common import DEFAULT_SCALE, ExperimentScale, platform, moe_routing, qwen_model


def region_schedule(model: ModelConfig, tile_rows: Optional[int],
                    num_regions: Optional[int]) -> Schedule:
    """One grid cell: a tiling decision plus an expert-region mapping."""
    tiling = dynamic_tiling() if tile_rows is None else static_tiling(tile_rows)
    timemux = None if num_regions is None else \
        time_multiplexing(model.num_experts, num_regions)
    label = "dynamic" if tile_rows is None else f"tile{tile_rows}"
    regions = "spatial" if num_regions is None else f"r{num_regions}"
    return Schedule(name=f"{label}-{regions}", tiling=tiling, timemux=timemux,
                    parallelization=parallelization("interleave"))


def scenario(scale: ExperimentScale, static_tile: int = 32) -> Scenario:
    """The Figure 12/13 (tiling × parallel regions) grid as one scenario."""
    model = qwen_model(scale)
    regions = [r for r in scale.timemux_regions
               if r is None or model.num_experts % r == 0]
    static_tile = min(static_tile, max(scale.moe_batch // 2, 1))
    schedules = {}
    for tile_rows in (static_tile, None):
        for num_regions in regions:
            schedule = region_schedule(model, tile_rows, num_regions)
            schedules[schedule.name] = schedule
    workload = MoEWorkload(
        model=model, batch=scale.moe_batch,
        assignments=[list(a) for a in moe_routing(model, scale.moe_batch, scale)],
        combine_output=False)
    return Scenario(
        name=f"figure12_13-{scale.name}",
        workloads={model.name: workload},
        schedules=schedules,
        platforms=platform(scale),
        seed=scale.seed,
        description="configuration time-multiplexing region sweep",
    )


def summarize(rows: Sequence[dict]) -> dict:
    """Utilization gain, overhead and resource savings versus the fully spatial mapping."""
    baseline = max(rows, key=lambda r: r["parallel_regions"])
    best_util = max(rows, key=lambda r: r["compute_utilization"])
    # the paper quotes savings at the point of comparable performance: pick the
    # smallest region count whose slowdown stays within 10%
    comparable = [r for r in rows
                  if r["cycles"] <= baseline["cycles"] * 1.10 and r is not baseline]
    saving_point = min(comparable, key=lambda r: r["parallel_regions"]) if comparable \
        else best_util
    return {
        "baseline_regions": baseline["parallel_regions"],
        "utilization_gain": (best_util["compute_utilization"]
                             / max(baseline["compute_utilization"], 1e-12)),
        "utilization_gain_regions": best_util["parallel_regions"],
        "overhead_at_best_utilization": best_util["cycles"] / baseline["cycles"] - 1.0,
        "compute_saving_fraction": 1.0 - (saving_point["allocated_compute_flops_per_cycle"]
                                          / baseline["allocated_compute_flops_per_cycle"]),
        "memory_saving_fraction": 1.0 - (saving_point["onchip_memory_bytes"]
                                         / baseline["onchip_memory_bytes"]),
        "saving_point_regions": saving_point["parallel_regions"],
        "saving_point_overhead": saving_point["cycles"] / baseline["cycles"] - 1.0,
    }


def run(scale: ExperimentScale = DEFAULT_SCALE, static_tile: int = 32,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate Figures 12 and 13."""
    model = qwen_model(scale)
    sc = scenario(scale, static_tile=static_tile)
    result = run_scenario(sc, runner=resolve_runner(runner))
    by_tiling: Dict[str, List[dict]] = {"static": [], "dynamic": []}
    for row in result.rows:
        schedule = sc.schedules[row.schedule]
        tile_rows = schedule.moe_tile_rows
        num_regions = schedule.moe_num_regions
        effective_regions = num_regions if num_regions is not None else model.num_experts
        by_tiling["dynamic" if tile_rows is None else "static"].append({
            "model": model.name,
            "tiling": "dynamic" if tile_rows is None else f"tile={tile_rows}",
            "parallel_regions": effective_regions,
            "experts_per_region": model.num_experts // effective_regions,
            "cycles": row["cycles"],
            "compute_utilization": row["compute_utilization"],
            "allocated_compute_flops_per_cycle": row["allocated_compute_flops_per_cycle"],
            "onchip_memory_bytes": row["onchip_memory_bytes"],
            "offchip_bw_utilization": row["offchip_bw_utilization"],
            "total_flops": row["total_flops"],
        })
    return {
        "static": {"rows": by_tiling["static"], "summary": summarize(by_tiling["static"])},
        "dynamic": {"rows": by_tiling["dynamic"],
                    "summary": summarize(by_tiling["dynamic"])},
    }
