"""Figures 12 and 13 — configuration time-multiplexing.

The Qwen3-30B-A3B MoE layer (batch 64) is swept over the number of configured
parallel regions (from one region per expert down to 4 regions sharing the
whole expert pool) under static (tile = 32) and dynamic tiling.  Figure 12
reports compute-resource utilization and cycles; Figure 13 additionally
reports on-chip memory, allocated compute and off-chip-bandwidth utilization.
The headline claims are a ~2.5-2.6x utilization improvement at small
performance overhead, with large compute/memory savings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sweep import SweepRunner, SweepSpec, resolve_runner
from ..workloads.configs import ModelConfig
from .common import DEFAULT_SCALE, ExperimentScale, hardware, moe_routing, qwen_model


def region_sweep_spec(model: ModelConfig, batch: int, tile_rows: Optional[int],
                      regions: Sequence[Optional[int]],
                      scale: ExperimentScale) -> SweepSpec:
    """The time-multiplexing region sweep as a sweep grid."""
    assignments = [list(a) for a in moe_routing(model, batch, scale)]
    tiling = "dynamic" if tile_rows is None else f"tile{tile_rows}"
    return SweepSpec(
        name=f"fig12_13-{model.name}-b{batch}-{tiling}",
        task="moe_layer",
        base={"model": model, "batch": batch, "assignments": assignments,
              "tile_rows": tile_rows, "combine_output": False,
              "hardware": hardware(scale)},
        axes={"num_regions": list(regions)},
        seed=scale.seed,
    )


def sweep_regions(model: ModelConfig, batch: int, tile_rows: Optional[int],
                  regions: Sequence[Optional[int]], scale: ExperimentScale,
                  runner: Optional[SweepRunner] = None) -> List[dict]:
    """Simulate the MoE layer for every parallel-region count."""
    spec = region_sweep_spec(model, batch, tile_rows, regions, scale)
    rows: List[dict] = []
    for result in resolve_runner(runner).run(spec):
        num_regions = result.point.kwargs()["num_regions"]
        effective_regions = num_regions if num_regions is not None else model.num_experts
        rows.append({
            "model": model.name,
            "tiling": "dynamic" if tile_rows is None else f"tile={tile_rows}",
            "parallel_regions": effective_regions,
            "experts_per_region": model.num_experts // effective_regions,
            "cycles": result["cycles"],
            "compute_utilization": result["compute_utilization"],
            "allocated_compute_flops_per_cycle": result["allocated_compute_flops_per_cycle"],
            "onchip_memory_bytes": result["onchip_memory_bytes"],
            "offchip_bw_utilization": result["offchip_bw_utilization"],
            "total_flops": result["total_flops"],
        })
    return rows


def summarize(rows: Sequence[dict]) -> dict:
    """Utilization gain, overhead and resource savings versus the fully spatial mapping."""
    baseline = max(rows, key=lambda r: r["parallel_regions"])
    best_util = max(rows, key=lambda r: r["compute_utilization"])
    # the paper quotes savings at the point of comparable performance: pick the
    # smallest region count whose slowdown stays within 10%
    comparable = [r for r in rows
                  if r["cycles"] <= baseline["cycles"] * 1.10 and r is not baseline]
    saving_point = min(comparable, key=lambda r: r["parallel_regions"]) if comparable \
        else best_util
    return {
        "baseline_regions": baseline["parallel_regions"],
        "utilization_gain": (best_util["compute_utilization"]
                             / max(baseline["compute_utilization"], 1e-12)),
        "utilization_gain_regions": best_util["parallel_regions"],
        "overhead_at_best_utilization": best_util["cycles"] / baseline["cycles"] - 1.0,
        "compute_saving_fraction": 1.0 - (saving_point["allocated_compute_flops_per_cycle"]
                                          / baseline["allocated_compute_flops_per_cycle"]),
        "memory_saving_fraction": 1.0 - (saving_point["onchip_memory_bytes"]
                                         / baseline["onchip_memory_bytes"]),
        "saving_point_regions": saving_point["parallel_regions"],
        "saving_point_overhead": saving_point["cycles"] / baseline["cycles"] - 1.0,
    }


def run(scale: ExperimentScale = DEFAULT_SCALE, static_tile: int = 32,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate Figures 12 and 13."""
    model = qwen_model(scale)
    regions = [r for r in scale.timemux_regions
               if r is None or model.num_experts % r == 0]
    static_tile = min(static_tile, max(scale.moe_batch // 2, 1))
    static_rows = sweep_regions(model, scale.moe_batch, static_tile, regions, scale,
                                runner=runner)
    dynamic_rows = sweep_regions(model, scale.moe_batch, None, regions, scale,
                                 runner=runner)
    return {
        "static": {"rows": static_rows, "summary": summarize(static_rows)},
        "dynamic": {"rows": dynamic_rows, "summary": summarize(dynamic_rows)},
    }
