"""Figure 21 — parallelization-strategy ablation (Appendix B.5).

Normalized performance of static coarse-grained, static interleaved and
dynamic parallelization across KV-length variance classes and batch classes
(B=16, B=64 and the pipelined B=64+16 micro-batch case).  The paper reports
geometric-mean slowdowns of 1.85x (coarse) and 1.36x (interleave) relative to
dynamic parallelization.

Every (variance, batch class, sample, batch, strategy) simulation carries its
own KV-length list, so the full ablation grid is expressed as one zip-mode
:class:`SweepSpec` over the ``attention_layer`` task and aggregated afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data.kv_traces import VarianceClass
from ..sweep import SweepRunner, SweepSpec, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, geomean, hardware, kv_batches, qwen_model

_STRATEGIES = ("coarse", "interleave", "dynamic")


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the Figure 21 ablation grid."""
    model = qwen_model(scale)
    hw = hardware(scale)
    big = scale.attention_batch
    small = max(4, big // 4)
    batch_classes = {f"B={small}": [small], f"B={big}": [big],
                     f"B={big}+{small}": [big, small]}

    big_batches = kv_batches(scale, big)
    small_batches = kv_batches(scale, small)

    # enumerate every simulation of the grid, then run it as one zip sweep
    labels: List[tuple] = []
    batch_axis: List[int] = []
    strategy_axis: List[str] = []
    lengths_axis: List[list] = []
    variances = (VarianceClass.HIGH, VarianceClass.MEDIUM, VarianceClass.LOW)
    for variance in variances:
        samples = min(len(big_batches[variance]), len(small_batches[variance]))
        for class_name, batch_sizes in batch_classes.items():
            for sample in range(samples):
                for batch in batch_sizes:
                    source = big_batches if batch == big else small_batches
                    for strategy in _STRATEGIES:
                        labels.append((variance, class_name, sample, batch, strategy))
                        batch_axis.append(batch)
                        strategy_axis.append(strategy)
                        lengths_axis.append(list(source[variance][sample])[:batch])

    spec = SweepSpec(
        name=f"fig21-{model.name}",
        task="attention_layer",
        base={"model": model, "kv_tile_rows": 64, "coarse_chunk": 16, "hardware": hw},
        axes={"batch": batch_axis, "strategy": strategy_axis, "lengths": lengths_axis},
        mode="zip",
        seed=scale.seed,
    )
    results = resolve_runner(runner).run(spec)
    cycles = {label: result["cycles"] for label, result in zip(labels, results)}

    rows: List[dict] = []
    normalized: Dict[str, List[float]] = {s: [] for s in _STRATEGIES}
    for variance in variances:
        samples = min(len(big_batches[variance]), len(small_batches[variance]))
        for class_name, batch_sizes in batch_classes.items():
            per_strategy: Dict[str, List[float]] = {s: [] for s in _STRATEGIES}
            for sample in range(samples):
                for strategy in _STRATEGIES:
                    per_strategy[strategy].append(sum(
                        cycles[(variance, class_name, sample, batch, strategy)]
                        for batch in batch_sizes))
            means = {s: geomean(per_strategy[s]) for s in _STRATEGIES}
            for strategy in _STRATEGIES:
                ratio = means[strategy] / means["dynamic"]
                normalized[strategy].append(ratio)
                rows.append({
                    "variance": variance.value,
                    "batch_class": class_name,
                    "strategy": strategy,
                    "cycles": means[strategy],
                    "normalized_to_dynamic": ratio,
                })
    return {
        "rows": rows,
        "geomean_normalized": {s: geomean(normalized[s]) for s in _STRATEGIES},
    }
