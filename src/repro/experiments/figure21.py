"""Figure 21 — parallelization-strategy ablation (Appendix B.5).

Normalized performance of static coarse-grained, static interleaved and
dynamic parallelization across KV-length variance classes and batch classes
(B=16, B=64 and the pipelined B=64+16 micro-batch case).  The paper reports
geometric-mean slowdowns of 1.85x (coarse) and 1.36x (interleave) relative to
dynamic parallelization.
"""

from __future__ import annotations

from typing import Dict, List

from ..data.kv_traces import VarianceClass
from ..sim import simulate
from ..workloads.attention import AttentionConfig, build_attention_layer
from .common import DEFAULT_SCALE, ExperimentScale, geomean, hardware, kv_batches, qwen_model

_STRATEGIES = ("coarse", "interleave", "dynamic")


def _cycles(model, batch, strategy, lengths, hw) -> float:
    config = AttentionConfig(model=model, batch=batch, strategy=strategy,
                             kv_tile_rows=64, coarse_chunk=16)
    program = build_attention_layer(config)
    return simulate(program.program, program.inputs(list(lengths)), hardware=hw).cycles


def run(scale: ExperimentScale = DEFAULT_SCALE) -> Dict[str, object]:
    """Regenerate the Figure 21 ablation grid."""
    model = qwen_model(scale)
    hw = hardware(scale)
    big = scale.attention_batch
    small = max(4, big // 4)
    batch_classes = {f"B={small}": [small], f"B={big}": [big],
                     f"B={big}+{small}": [big, small]}
    rows: List[dict] = []
    normalized: Dict[str, List[float]] = {s: [] for s in _STRATEGIES}

    big_batches = kv_batches(scale, big)
    small_batches = kv_batches(scale, small)

    for variance in (VarianceClass.HIGH, VarianceClass.MEDIUM, VarianceClass.LOW):
        for class_name, batch_sizes in batch_classes.items():
            per_strategy: Dict[str, List[float]] = {s: [] for s in _STRATEGIES}
            samples = min(len(big_batches[variance]), len(small_batches[variance]))
            for sample in range(samples):
                totals = {s: 0.0 for s in _STRATEGIES}
                for batch in batch_sizes:
                    source = big_batches if batch == big else small_batches
                    lengths = list(source[variance][sample])[:batch]
                    for strategy in _STRATEGIES:
                        totals[strategy] += _cycles(model, batch, strategy, lengths, hw)
                for strategy in _STRATEGIES:
                    per_strategy[strategy].append(totals[strategy])
            means = {s: geomean(per_strategy[s]) for s in _STRATEGIES}
            for strategy in _STRATEGIES:
                ratio = means[strategy] / means["dynamic"]
                normalized[strategy].append(ratio)
                rows.append({
                    "variance": variance.value,
                    "batch_class": class_name,
                    "strategy": strategy,
                    "cycles": means[strategy],
                    "normalized_to_dynamic": ratio,
                })
    return {
        "rows": rows,
        "geomean_normalized": {s: geomean(normalized[s]) for s in _STRATEGIES},
    }
