"""Figure 21 — parallelization-strategy ablation (Appendix B.5).

Normalized performance of static coarse-grained, static interleaved and
dynamic parallelization across KV-length variance classes and batch classes
(B=16, B=64 and the pipelined B=64+16 micro-batch case).  The paper reports
geometric-mean slowdowns of 1.85x (coarse) and 1.36x (interleave) relative to
dynamic parallelization.

Every unique (variance, sample, batch) simulation is one
:class:`~repro.api.AttentionWorkload`, the three strategies are the schedule
grid, and the overlapping batch classes are aggregated afterwards — the
scenario cross product naturally deduplicates the simulations the old zip
grid repeated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..api import AttentionWorkload, Scenario
from ..api import run as run_scenario
from ..data.kv_traces import VarianceClass
from ..sweep import SweepRunner, resolve_runner
from .common import DEFAULT_SCALE, ExperimentScale, geomean, platform, kv_batches, qwen_model
from .figure14 import strategy_schedules

_STRATEGIES = ("coarse", "interleave", "dynamic")


def run(scale: ExperimentScale = DEFAULT_SCALE,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate the Figure 21 ablation grid."""
    model = qwen_model(scale)
    big = scale.attention_batch
    small = max(4, big // 4)
    batch_classes = {f"B={small}": [small], f"B={big}": [big],
                     f"B={big}+{small}": [big, small]}

    big_batches = kv_batches(scale, big)
    small_batches = kv_batches(scale, small)
    variances = (VarianceClass.HIGH, VarianceClass.MEDIUM, VarianceClass.LOW)

    # one workload per unique (variance, sample, batch) simulation; the batch
    # classes below reuse these cells
    workloads: Dict[str, AttentionWorkload] = {}
    for variance in variances:
        samples = min(len(big_batches[variance]), len(small_batches[variance]))
        for sample in range(samples):
            for batch in (small, big):
                source = big_batches if batch == big else small_batches
                workloads[f"{variance.value}/{sample}/b{batch}"] = AttentionWorkload(
                    model=model, batch=batch,
                    lengths=list(source[variance][sample])[:batch], kv_tile_rows=64)

    sc = Scenario(
        name=f"figure21-{scale.name}",
        workloads=workloads,
        schedules=strategy_schedules(_STRATEGIES),
        platforms=platform(scale),
        seed=scale.seed,
        description="parallelization-strategy ablation across variance/batch classes",
    )
    result = run_scenario(sc, runner=resolve_runner(runner))

    def cycles(variance, sample, batch, strategy) -> float:
        return result[(f"{variance.value}/{sample}/b{batch}", strategy)]["cycles"]

    rows: List[dict] = []
    normalized: Dict[str, List[float]] = {s: [] for s in _STRATEGIES}
    for variance in variances:
        samples = min(len(big_batches[variance]), len(small_batches[variance]))
        for class_name, class_batches in batch_classes.items():
            per_strategy: Dict[str, List[float]] = {s: [] for s in _STRATEGIES}
            for sample in range(samples):
                for strategy in _STRATEGIES:
                    per_strategy[strategy].append(sum(
                        cycles(variance, sample, batch, strategy)
                        for batch in class_batches))
            means = {s: geomean(per_strategy[s]) for s in _STRATEGIES}
            for strategy in _STRATEGIES:
                ratio = means[strategy] / means["dynamic"]
                normalized[strategy].append(ratio)
                rows.append({
                    "variance": variance.value,
                    "batch_class": class_name,
                    "strategy": strategy,
                    "cycles": means[strategy],
                    "normalized_to_dynamic": ratio,
                })
    return {
        "rows": rows,
        "geomean_normalized": {s: geomean(normalized[s]) for s in _STRATEGIES},
    }
