"""Figure 8 — validation of the cycle-approximate simulator.

The SwiGLU layer is swept over (batch tile, hidden, intermediate tile) sizes;
for every point we run both the cycle-approximate STeP simulator (Roofline
timing + aggregate HBM) and the HDL-substitute reference simulator
(physical-tile timing + banked HBM) on the *same* program, and report cycle
counts, off-chip traffic and the Pearson correlation between the two cycle
series (the paper reports 0.99 against its Bluespec model).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..hdl.reference import reference_simulate
from ..platforms import get_platform
from ..sim import simulate
from ..workloads.swiglu import (SwiGLUConfig, SwiGLUTiling, build_swiglu_layer,
                                default_figure8_tilings)
from .common import DEFAULT_SCALE, ExperimentScale


def run(scale: ExperimentScale = DEFAULT_SCALE,
        config: Optional[SwiGLUConfig] = None,
        tilings: Optional[Sequence[SwiGLUTiling]] = None) -> Dict[str, object]:
    """Regenerate the Figure 8 sweep."""
    config = config or SwiGLUConfig()
    tilings = list(tilings) if tilings is not None else default_figure8_tilings(config)
    if scale.name == "smoke":
        tilings = [t for t in tilings if t.intermediate_tile in (16, 64, 256)]

    # the registered high on-chip-bandwidth preset (was an ad-hoc
    # sda_hardware(onchip_bandwidth=256.0) before platforms were first-class)
    hardware = get_platform("sda-hbm256").hardware
    rows: List[dict] = []
    for tiling in tilings:
        program = build_swiglu_layer(config, tiling)
        step_report = simulate(program, hardware=hardware)
        reference_program = build_swiglu_layer(config, tiling)
        hdl_report = reference_simulate(reference_program)
        rows.append({
            "tiling": tiling.label(),
            "batch_tile": tiling.batch_tile,
            "intermediate_tile": tiling.intermediate_tile,
            "step_cycles": step_report.cycles,
            "hdl_cycles": hdl_report.cycles,
            "step_traffic_bytes": step_report.offchip_traffic,
            "hdl_traffic_bytes": hdl_report.offchip_traffic,
        })

    step_series = np.array([row["step_cycles"] for row in rows])
    hdl_series = np.array([row["hdl_cycles"] for row in rows])
    correlation = float(np.corrcoef(step_series, hdl_series)[0, 1]) if len(rows) > 1 else 1.0
    traffic_match = all(row["step_traffic_bytes"] == row["hdl_traffic_bytes"] for row in rows)
    return {
        "rows": rows,
        "pearson_correlation": correlation,
        "traffic_identical": traffic_match,
    }
