"""Shared experiment configuration.

The paper's experiments run full-size Qwen3-30B-A3B / Mixtral-8x7B layers on a
Rust simulator for hours; this pure-Python reproduction runs *scaled* model
dimensions (see :func:`repro.workloads.configs.scaled_config`) that preserve
the structural parameters driving every result — expert counts, top-k routing,
trace skew, tiling structure, parallel-region counts — while keeping each
simulated design point in the seconds range.  :class:`ExperimentScale` bundles
those knobs; ``DEFAULT_SCALE`` is used by the benchmark harness and
``SMOKE_SCALE`` by the fast integration tests.  EXPERIMENTS.md records which
scale was used for each regenerated figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..data.expert_routing import generate_routing_trace, representative_iteration
from ..data.kv_traces import VarianceClass, make_batches_by_variance
from ..platforms import Platform, get_platform
from ..workloads.configs import MIXTRAL_8X7B, QWEN3_30B_A3B, ModelConfig, scaled_config
from ..sim.executors.common import HardwareConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared by all experiments."""

    name: str
    #: divisor applied to hidden / intermediate / head dimensions
    model_scale: int = 16
    #: reduce the expert pool (None keeps the model's full expert count)
    max_experts: Optional[int] = None
    #: MoE batch size for the Figure 9 / 12 / 13 experiments
    moe_batch: int = 64
    #: MoE batch size for the Figure 10 experiment ("large batch"; the paper
    #: uses 1024 — the default scale uses 512 to keep the pure-Python sweep fast)
    moe_large_batch: int = 512
    #: attention batch size (Figures 14, 21)
    attention_batch: int = 64
    #: number of batch sizes swept by the Figure 15 batch sweep
    batch_sweep_points: int = 8
    #: static tile sweeps
    moe_tiles_small_batch: Tuple[int, ...] = (8, 16, 32, 64)
    moe_tiles_large_batch: Tuple[int, ...] = (16, 64, 256, 512)
    #: time-multiplexing region sweep (None = fully spatial baseline)
    timemux_regions: Tuple[Optional[int], ...] = (None, 64, 32, 16, 8, 4)
    #: KV-trace batches sampled per variance class
    traces_per_class: int = 3
    #: decoder layers evaluated end to end (None = the model's full layer count)
    end_to_end_layers: Optional[int] = None
    #: arrival-rate ladder (requests per Mcycle) for the serving load curve
    serve_rates: Tuple[float, ...] = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0)
    #: requests per serving trace
    serve_requests: int = 48
    #: continuous-batching cap of the serving experiment
    serve_batch_cap: int = 4
    #: decoder layers per serving step (the step-latency multiplier)
    serve_layers: int = 2
    #: expert-pool cap for the serving model (None keeps the full pool; the
    #: serving default caps even at full scale because every scheduler step
    #: simulates the MoE, unlike the one-shot figure experiments)
    serve_max_experts: Optional[int] = 16
    #: replica counts swept by the fleet-latency experiment
    fleet_replicas: Tuple[int, ...] = (1, 2, 4)
    #: routing policies swept by the fleet-latency experiment
    fleet_routings: Tuple[str, ...] = ("round-robin", "least-loaded", "least-kv")
    #: one-time cold-start cost charged per fleet replica (cycles)
    fleet_warmup_cycles: float = 0.0
    #: HBM budgets (in KV pages of ``kv_tile_rows`` rows) swept by the
    #: memory-pressure experiment; ``None`` is the unbounded baseline
    memory_capacity_pages: Tuple[Optional[int], ...] = (None, 8, 4)
    #: TTFT budget (cycles) the memory-pressure experiment's strict goodput
    #: counts against (requests over budget complete but aren't "good")
    memory_ttft_slo: float = 150_000.0
    #: scheduling-policy presets compared by the policy-shootout experiment
    #: (see :func:`repro.serve.serve_policy_names`)
    policy_names: Tuple[str, ...] = ("default", "chunked-prefill",
                                     "prefill-decode", "priority",
                                     "slo-preempt")
    #: platforms the policy shootout runs on (unbounded + capacity-bounded,
    #: so policies are compared both with and without memory pressure)
    policy_platforms: Tuple[str, ...] = ("sda", "sda-hbm-small")
    #: tail-TTFT budget (cycles) the policy shootout's SLO attainment
    #: counts against
    policy_ttft_slo: float = 100_000.0
    #: platforms the capacity experiment probes for max sustainable load
    capacity_platforms: Tuple[str, ...] = ("sda", "sda-hbm-small")
    #: TTFT budget (cycles) the capacity experiment reports attainment against
    capacity_ttft_slo: float = 150_000.0
    #: SLO-attainment fraction a rate must clear to count as sustainable
    capacity_attainment: float = 0.9
    #: registered trace generator shaping the capacity experiment's traffic
    capacity_generator: str = "heavy-tail"
    seed: int = 0


DEFAULT_SCALE = ExperimentScale(name="default")

#: a much smaller configuration used by the integration tests
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    model_scale=32,
    max_experts=16,
    moe_batch=16,
    moe_large_batch=64,
    attention_batch=16,
    batch_sweep_points=4,
    moe_tiles_small_batch=(4, 8, 16),
    moe_tiles_large_batch=(8, 32),
    timemux_regions=(None, 8, 4),
    traces_per_class=1,
    end_to_end_layers=2,
    serve_rates=(40.0, 160.0, 640.0),
    serve_requests=12,
    fleet_replicas=(1, 2),
    fleet_routings=("round-robin", "least-loaded"),
    memory_ttft_slo=50_000.0,
    policy_names=("default", "chunked-prefill", "slo-preempt"),
    policy_ttft_slo=50_000.0,
    capacity_ttft_slo=50_000.0,
)


def qwen_model(scale: ExperimentScale) -> ModelConfig:
    """The Qwen3-30B-A3B-like configuration at the experiment scale."""
    model = scaled_config(QWEN3_30B_A3B, scale=scale.model_scale)
    return _cap_experts(model, scale)


def mixtral_model(scale: ExperimentScale) -> ModelConfig:
    """The Mixtral-8x7B-like configuration at the experiment scale."""
    model = scaled_config(MIXTRAL_8X7B, scale=scale.model_scale * 2)
    return _cap_experts(model, scale)


def _cap_experts(model: ModelConfig, scale: ExperimentScale) -> ModelConfig:
    from ..workloads.configs import cap_experts

    return cap_experts(model, scale.max_experts)


def platform(scale: ExperimentScale) -> Platform:
    """The evaluation platform (Section 5.1): the registered ``"sda"`` preset."""
    return get_platform("sda")


def hardware(scale: ExperimentScale) -> HardwareConfig:
    """The evaluation hardware configuration (Section 5.1)."""
    return platform(scale).hardware


def resolve_scale(value) -> ExperimentScale:
    """An :class:`ExperimentScale` from a preset name or a scale object."""
    if isinstance(value, ExperimentScale):
        return value
    if value == "default":
        return DEFAULT_SCALE
    if value == "smoke":
        return SMOKE_SCALE
    raise ConfigError(f"unknown experiment scale {value!r}; "
                      f"expected 'default', 'smoke' or an ExperimentScale")


def moe_routing(model: ModelConfig, batch: int, scale: ExperimentScale) -> Sequence[Sequence[int]]:
    """A representative expert-routing iteration for the MoE experiments."""
    trace = generate_routing_trace(model, batch_size=batch, num_iterations=8,
                                   seed=scale.seed)
    return representative_iteration(trace)


def kv_batches(scale: ExperimentScale, batch: Optional[int] = None
               ) -> Dict[VarianceClass, list]:
    """KV-length batches per variance class for the attention experiments."""
    return make_batches_by_variance(batch_size=batch or scale.attention_batch,
                                    samples_per_class=scale.traces_per_class,
                                    seed=scale.seed)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (used by the Figure 21 summary)."""
    values = [float(v) for v in values if v > 0]
    if not values:
        return 0.0
    return float(np.exp(np.mean(np.log(values))))
