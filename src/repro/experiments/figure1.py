"""Figure 1 — effective HBM bandwidth of GPUs versus the SN40L SDA.

A background figure: the effective bandwidth each platform sustains on
Llama-3.1 token generation, derived with Roofline modelling from the fraction
of peak throughput reported by prior work.  Reproduced analytically from
:mod:`repro.analysis.roofline`.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.roofline import figure1_rows
from .common import DEFAULT_SCALE, ExperimentScale


def run(scale: ExperimentScale = DEFAULT_SCALE) -> Dict[str, object]:
    """Regenerate the Figure 1 series."""
    rows = figure1_rows()
    # headline claims of Section 2.2: GPUs sustain less than half of peak HBM
    # bandwidth; the SDA sustains most of it.
    gpu_fractions = [r["fraction_of_peak"] for r in rows if r["platform"] == "8xH100"]
    sda_fractions = [r["fraction_of_peak"] for r in rows if r["platform"].startswith("SN40L")]
    return {
        "rows": rows,
        "gpu_max_fraction": max(gpu_fractions),
        "sda_min_fraction": min(sda_fractions),
    }
