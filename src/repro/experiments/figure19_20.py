"""Figures 19 and 20 — off-chip traffic versus on-chip memory Pareto curves.

The same tile-size sweeps as Figures 9/10, plotted as off-chip traffic against
on-chip memory (Appendix B.4): the performance trends of Figures 9/10 follow
the traffic trends because the layer is memory bound.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sweep import SweepRunner
from .common import DEFAULT_SCALE, ExperimentScale
from . import figure9_10


def run(scale: ExperimentScale = DEFAULT_SCALE, large_batch: bool = False,
        runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Regenerate Figure 19 (``large_batch=False``) or Figure 20 (``True``)."""
    base = figure9_10.run(scale, large_batch=large_batch, runner=runner)
    results: Dict[str, object] = {"figure": "20" if large_batch else "19", "per_model": {}}
    for model_name, payload in base["per_model"].items():
        rows = [
            {
                "model": row["model"],
                "tiling": row["tiling"],
                "tile_rows": row["tile_rows"],
                "offchip_traffic_bytes": row["offchip_traffic_bytes"],
                "onchip_memory_bytes": row["onchip_memory_bytes"],
            }
            for row in payload["rows"]
        ]
        results["per_model"][model_name] = {
            "rows": rows,
            "summary": payload["traffic_summary"],
        }
    return results
